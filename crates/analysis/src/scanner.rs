//! A hand-rolled Rust source scanner, plus the workspace call graph.
//!
//! The lint driver must not depend on `syn` or any external parser (the
//! workspace builds offline), and the rules it enforces are lexical: "does
//! this *code* call `.unwrap()`", "is this `unsafe` block preceded by a
//! `// SAFETY:` comment". So the scanner's first job is exactly that: split
//! a source file into **code text** and **comment text**, line by line, with
//! string/char-literal contents blanked out of the code channel so that a
//! pattern occurring inside a literal or a comment never triggers a rule.
//!
//! Handled: line comments, nested block comments, string literals with
//! escapes, raw strings (`r"…"`, `r#"…"#`, any number of `#`s, with `b`
//! prefixes), char literals (distinguished from lifetimes), and `//` inside
//! strings. Not handled (not needed for lexical rules): macro token trees,
//! doc-comment semantics beyond their text.
//!
//! The second half of this module is the **call graph** the interprocedural
//! lock-order pass runs over: [`CallTarget`] classifies how a call site
//! names its callee (`self.f(…)`, `Type::f(…)`, bare `f(…)`, or a method on
//! some other receiver), [`impl_owner`] recovers the `Self` type of an
//! `impl` block header, and [`CallGraph`] resolves call targets against the
//! function definitions collected from a set of scanned files and computes
//! the strongly connected components of the resulting graph in bottom-up
//! (callees-first) order — the order in which
//! [`lockgraph::interproc`](crate::lockgraph::interproc) propagates lock
//! summaries. Resolution is deliberately conservative: a target that cannot
//! be matched to exactly one in-scope definition stays unresolved, so the
//! interprocedural pass can under-approximate but never invent a chain.

/// One source file, split into a code channel and a comment channel.
#[derive(Debug)]
pub struct ScannedFile {
    /// Source lines with comments removed and literal contents blanked
    /// (replaced by spaces, so column positions survive).
    pub code: Vec<String>,
    /// Comment text per line (contents of `//…` and `/*…*/` landing on the
    /// line), concatenated. Empty string when the line has no comment.
    pub comments: Vec<String>,
}

impl ScannedFile {
    /// Number of lines in the file.
    pub fn n_lines(&self) -> usize {
        self.code.len()
    }
}

#[derive(PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested depth.
    BlockComment(usize),
    Str,
    /// Number of `#`s that close it.
    RawStr(usize),
}

/// Scan `src` into per-line code and comment channels.
pub fn scan(src: &str) -> ScannedFile {
    let mut code: Vec<String> = Vec::new();
    let mut comments: Vec<String> = Vec::new();
    let mut code_line = String::new();
    let mut comment_line = String::new();
    let mut state = State::Code;

    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            code.push(std::mem::take(&mut code_line));
            comments.push(std::mem::take(&mut comment_line));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    code_line.push(' ');
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = State::Str;
                    code_line.push('"');
                    i += 1;
                    continue;
                }
                // Raw (byte) strings: r"…", r#"…"#, br"…", br#"…"#…
                if (c == 'r' || c == 'b') && !prev_is_ident(&code_line) {
                    let mut j = i;
                    if chars.get(j) == Some(&'b') && chars.get(j + 1) == Some(&'r') {
                        j += 1;
                    }
                    if chars.get(j) == Some(&'r') {
                        let mut hashes = 0usize;
                        let mut k = j + 1;
                        while chars.get(k) == Some(&'#') {
                            hashes += 1;
                            k += 1;
                        }
                        if chars.get(k) == Some(&'"') {
                            state = State::RawStr(hashes);
                            for _ in i..=k {
                                code_line.push(' ');
                            }
                            i = k + 1;
                            continue;
                        }
                    }
                }
                // Char literal vs lifetime: 'x' or '\n' is a literal; 'a in
                // generics has no closing quote right after one element.
                if c == '\'' {
                    if chars.get(i + 1) == Some(&'\\') {
                        // Escaped char literal: the char after the backslash
                        // is consumed unconditionally (it may be `'`), then
                        // skip to the closing quote (covers `\u{…}`).
                        let mut k = i + 3;
                        while k < chars.len() && chars[k] != '\'' && chars[k] != '\n' {
                            k += 1;
                        }
                        for _ in i..=k.min(chars.len() - 1) {
                            code_line.push(' ');
                        }
                        i = (k + 1).min(chars.len());
                        continue;
                    }
                    if chars.get(i + 2) == Some(&'\'') {
                        code_line.push_str("   ");
                        i += 3;
                        continue;
                    }
                    // A lifetime — keep the tick as code.
                    code_line.push('\'');
                    i += 1;
                    continue;
                }
                code_line.push(c);
                i += 1;
            }
            State::LineComment => {
                comment_line.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    comment_line.push_str("/*");
                    i += 2;
                } else {
                    comment_line.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code_line.push_str("  ");
                    i += 2; // skip the escaped char (incl. \" and \\)
                } else if c == '"' {
                    state = State::Code;
                    code_line.push('"');
                    i += 1;
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    // Closing needs `"` + `#` * hashes.
                    let closes = (1..=hashes).all(|h| chars.get(i + h) == Some(&'#'));
                    if closes {
                        state = State::Code;
                        for _ in 0..=hashes {
                            code_line.push(' ');
                        }
                        i += 1 + hashes;
                        continue;
                    }
                }
                code_line.push(' ');
                i += 1;
            }
        }
    }
    if !code_line.is_empty() || !comment_line.is_empty() {
        code.push(code_line);
        comments.push(comment_line);
    }
    ScannedFile { code, comments }
}

/// Was the previous code char part of an identifier? (So `for r in…` is not
/// mistaken for a raw-string prefix when followed by `"`.)
fn prev_is_ident(code_line: &str) -> bool {
    code_line.chars().next_back().is_some_and(|p| p.is_alphanumeric() || p == '_')
}

/// Per-line flags marking `#[cfg(test)] mod … { … }` regions, so rules can
/// exempt inline unit tests. Brace counting happens on the code channel
/// (comments and literals already stripped), which makes it exact enough.
pub fn test_regions(file: &ScannedFile) -> Vec<bool> {
    let n = file.n_lines();
    let mut in_test = vec![false; n];
    let mut i = 0usize;
    while i < n {
        if file.code[i].contains("cfg(test)") {
            // Find the opening brace of the mod (same or later line).
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < n {
                in_test[j] = true;
                for c in file.code[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

// ---------------------------------------------------------------------------
// Call graph
// ---------------------------------------------------------------------------

/// How a call site names its callee, as recovered from the code channel.
///
/// The variants carry decreasing amounts of resolvable information:
/// `self.f(…)` pins the callee to the caller's `impl` owner, `Type::f(…)`
/// pins it to a named type, a bare `f(…)` can only be a free function, and a
/// method call on any other receiver (`v.record_push(…)`, `vec.push(…)`)
/// carries no type information at all — [`CallGraph::resolve`] deliberately
/// refuses to resolve those rather than guess by method name alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// `self.name(…)` or `Self::name(…)` — a method on the caller's owner.
    SelfMethod(String),
    /// `Type::name(…)` — an associated function of a named type.
    Qualified {
        /// Last path segment of the type (`fmt::Display::f` → `Display`).
        ty: String,
        /// The function name.
        name: String,
    },
    /// `name(…)` with no receiver or path — a free function (or a closure /
    /// tuple constructor; resolution sorts that out by lookup failure).
    Bare(String),
    /// `recv.name(…)` where the receiver is not `self` — never resolved.
    Method(String),
}

impl CallTarget {
    /// The callee name, regardless of qualification.
    pub fn name(&self) -> &str {
        match self {
            CallTarget::SelfMethod(n)
            | CallTarget::Qualified { name: n, .. }
            | CallTarget::Bare(n)
            | CallTarget::Method(n) => n,
        }
    }
}

/// Parse a call token at the head of `rest` (the code channel from the
/// current position onward). `stmt` is the statement text accumulated
/// *before* this position; its tail decides the qualifier (`self.`, `Ty::`,
/// some other receiver, or nothing). Returns `None` when `rest` does not
/// start with `ident(`.
///
/// Macros (`ident!(…)`) and turbofish calls (`ident::<T>(…)`) are not
/// treated as calls; paths passed as values (`map(Self::helper)`) are not
/// followed by `(` and are likewise skipped. Both are conservative misses.
pub fn parse_call(rest: &str, stmt: &str) -> Option<CallTarget> {
    let first = rest.chars().next()?;
    if !(first.is_ascii_alphabetic() || first == '_') {
        return None;
    }
    let end = rest
        .char_indices()
        .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '_'))
        .map(|(i, _)| i)
        .unwrap_or(rest.len());
    if !rest[end..].starts_with('(') {
        return None;
    }
    let name = rest[..end].to_string();
    let head = stmt.trim_end();
    if let Some(path_head) = head.strip_suffix("::") {
        let ty = trailing_path_segment(path_head);
        if ty.is_empty() {
            // `::foo(` — an absolute path; treat as a free function.
            return Some(CallTarget::Bare(name));
        }
        if ty == "Self" {
            return Some(CallTarget::SelfMethod(name));
        }
        return Some(CallTarget::Qualified { ty, name });
    }
    if let Some(recv_head) = head.strip_suffix('.') {
        let recv = trailing_path_segment(recv_head);
        if recv == "self" {
            return Some(CallTarget::SelfMethod(name));
        }
        return Some(CallTarget::Method(name));
    }
    Some(CallTarget::Bare(name))
}

/// The trailing identifier of `s` (empty when `s` ends with a non-ident
/// char, e.g. a `)` from a chained call).
fn trailing_path_segment(s: &str) -> String {
    let tail: String = s.chars().rev().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
    tail.chars().rev().collect()
}

/// Extract the `Self` type name from an `impl` block header: the type after
/// `for` in a trait impl, the inherent type otherwise; generics and paths
/// are stripped to the last plain segment. Returns `None` when the header is
/// not an impl (e.g. an `impl Trait` return type inside an `fn` header).
pub fn impl_owner(header: &str) -> Option<String> {
    // Find the `impl` keyword with identifier boundaries on both sides.
    let bytes = header.as_bytes();
    let mut at = None;
    let mut from = 0usize;
    while let Some(pos) = header[from..].find("impl") {
        let i = from + pos;
        let before_ok = i == 0 || !(bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
        let after = i + 4;
        let after_ok = after >= header.len() || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
        if before_ok && after_ok {
            at = Some(after);
            break;
        }
        from = i + 4;
    }
    let mut rest = header[at?..].trim_start();
    // Skip the generic parameter list, if any.
    if rest.starts_with('<') {
        let mut depth = 0i64;
        let mut cut = rest.len();
        for (i, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = rest[cut..].trim_start();
    }
    // A trait impl names the Self type after a top-level `for`.
    let mut depth = 0i64;
    let mut prev_ident = false;
    let mut idx = 0usize;
    let chars: Vec<char> = rest.chars().collect();
    while idx < chars.len() {
        match chars[idx] {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            'f' if depth == 0 && !prev_ident => {
                let is_for = rest[idx..].starts_with("for")
                    && !chars.get(idx + 3).is_some_and(|c| c.is_ascii_alphanumeric() || *c == '_');
                if is_for {
                    rest = rest[idx + 3..].trim_start();
                    break;
                }
            }
            _ => {}
        }
        prev_ident = chars[idx].is_ascii_alphanumeric() || chars[idx] == '_';
        idx += 1;
    }
    // `rest` now starts at the Self type: take its leading path, then the
    // last segment, shorn of generics.
    let path_end = rest
        .char_indices()
        .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '_' || *c == ':'))
        .map(|(i, _)| i)
        .unwrap_or(rest.len());
    let path = rest[..path_end].trim_end_matches(':');
    let seg = path.rsplit("::").next().unwrap_or(path);
    if seg.is_empty() || seg.chars().next().is_some_and(|c| c.is_ascii_lowercase()) {
        // `impl` followed by nothing useful (or a keyword) — not an owner.
        return None;
    }
    Some(seg.to_string())
}

/// A function definition node in the workspace call graph.
#[derive(Debug, Clone)]
pub struct CallGraphNode {
    /// Index of the file (in the caller-supplied file list) defining it.
    pub file: usize,
    /// The function name.
    pub name: String,
    /// The `impl` owner type, or `None` for a free function.
    pub owner: Option<String>,
    /// 0-based line of the definition.
    pub line: usize,
}

/// The resolved workspace call graph: nodes are function definitions, edges
/// are call sites whose [`CallTarget`] matched exactly one definition.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Function definitions, indexed by node id.
    pub nodes: Vec<CallGraphNode>,
    /// `out[n]` lists `(callee, call_site_id)` edges out of node `n`; the
    /// call-site id is whatever the caller passed to [`CallGraph::add_call`].
    pub out: Vec<Vec<(usize, usize)>>,
}

impl CallGraph {
    /// Build an edgeless graph over `nodes`.
    pub fn new(nodes: Vec<CallGraphNode>) -> Self {
        let out = vec![Vec::new(); nodes.len()];
        CallGraph { nodes, out }
    }

    /// Resolve `target`, as seen from `caller`, to a node id.
    ///
    /// Rules (all require a *unique* match, else `None`):
    /// - `SelfMethod` matches a node whose owner equals the caller's owner;
    /// - `Qualified` matches a node whose owner equals the named type;
    /// - `Bare` matches a free function (same-file definitions win when the
    ///   name is defined in several files);
    /// - `Method` never resolves — the receiver's type is unknown, and e.g.
    ///   `v.record_push(…)` must not resolve to `ParameterServer::push`.
    pub fn resolve(&self, caller: usize, target: &CallTarget) -> Option<usize> {
        let matches: Vec<usize> = match target {
            CallTarget::Method(_) => return None,
            CallTarget::SelfMethod(name) => {
                let owner = self.nodes[caller].owner.as_ref()?;
                self.find(|n| n.name == *name && n.owner.as_ref() == Some(owner))
            }
            CallTarget::Qualified { ty, name } => {
                self.find(|n| n.name == *name && n.owner.as_deref() == Some(ty.as_str()))
            }
            CallTarget::Bare(name) => {
                let all = self.find(|n| n.name == *name && n.owner.is_none());
                if all.len() > 1 {
                    let file = self.nodes[caller].file;
                    let local: Vec<usize> = all.iter().copied().filter(|&n| self.nodes[n].file == file).collect();
                    if local.len() == 1 {
                        return Some(local[0]);
                    }
                }
                all
            }
        };
        if matches.len() == 1 {
            Some(matches[0])
        } else {
            None
        }
    }

    fn find(&self, pred: impl Fn(&CallGraphNode) -> bool) -> Vec<usize> {
        self.nodes.iter().enumerate().filter(|(_, n)| pred(n)).map(|(i, _)| i).collect()
    }

    /// Record a resolved call edge `caller → callee` tagged with an opaque
    /// call-site id (used by the lock pass to recover held-lock sets).
    pub fn add_call(&mut self, caller: usize, callee: usize, call_id: usize) {
        self.out[caller].push((callee, call_id));
    }

    /// Strongly connected components of the graph, in bottom-up order:
    /// every SCC appears after all SCCs it has edges into (callees first).
    /// This is Tarjan's algorithm, iterative so deep chains can't overflow
    /// the stack; Tarjan emits an SCC only once all its successors' SCCs
    /// have been emitted, which is exactly the summary-propagation order.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.nodes.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut out: Vec<Vec<usize>> = Vec::new();
        // Work items: (node, next out-edge position to explore).
        let mut work: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            work.push((start, 0));
            while let Some(&(v, ei)) = work.last() {
                if ei == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if ei < self.out[v].len() {
                    work.last_mut().expect("work non-empty").1 += 1;
                    let (w, _) = self.out[v][ei];
                    if index[w] == usize::MAX {
                        work.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    work.pop();
                    if let Some(&(parent, _)) = work.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        out.push(comp);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_go_to_comment_channel() {
        let s = scan("let x = 1; // call .unwrap() here\n/* panic! */ let y = 2;\n");
        assert!(!s.code[0].contains("unwrap"));
        assert!(s.comments[0].contains(".unwrap()"));
        assert!(!s.code[1].contains("panic!"));
        assert!(s.code[1].contains("let y = 2;"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let s = scan("let m = \"do not panic!(here) or .unwrap()\";\n");
        assert!(!s.code[0].contains("panic!"));
        assert!(!s.code[0].contains("unwrap"));
        assert!(s.code[0].contains("let m = "));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let s = scan("let a = r#\"has .unwrap() and \"quotes\"\"#;\nlet b = \"esc \\\" .expect(\";\n");
        assert!(!s.code[0].contains("unwrap"));
        assert!(!s.code[1].contains("expect"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let s = scan("fn f<'a>(x: &'a str) -> char { '\\'' }\nlet q = '\"'; let c = q;\n");
        assert!(s.code[0].contains("fn f<'a>(x: &'a str)"));
        // The '"' literal must not open a string state.
        assert!(s.code[1].contains("let c = q;"));
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("/* outer /* inner */ still comment */ let z = 3;\n");
        assert!(s.code[0].contains("let z = 3;"));
        assert!(!s.code[0].contains("inner"));
    }

    #[test]
    fn test_region_tracking() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let s = scan(src);
        let regions = test_regions(&s);
        assert_eq!(regions, vec![false, true, true, true, true, false]);
    }
}
