//! A hand-rolled Rust source scanner.
//!
//! The lint driver must not depend on `syn` or any external parser (the
//! workspace builds offline), and the rules it enforces are lexical: "does
//! this *code* call `.unwrap()`", "is this `unsafe` block preceded by a
//! `// SAFETY:` comment". So the scanner does exactly one job: split a
//! source file into **code text** and **comment text**, line by line, with
//! string/char-literal contents blanked out of the code channel so that a
//! pattern occurring inside a literal or a comment never triggers a rule.
//!
//! Handled: line comments, nested block comments, string literals with
//! escapes, raw strings (`r"…"`, `r#"…"#`, any number of `#`s, with `b`
//! prefixes), char literals (distinguished from lifetimes), and `//` inside
//! strings. Not handled (not needed for lexical rules): macro token trees,
//! doc-comment semantics beyond their text.

/// One source file, split into a code channel and a comment channel.
#[derive(Debug)]
pub struct ScannedFile {
    /// Source lines with comments removed and literal contents blanked
    /// (replaced by spaces, so column positions survive).
    pub code: Vec<String>,
    /// Comment text per line (contents of `//…` and `/*…*/` landing on the
    /// line), concatenated. Empty string when the line has no comment.
    pub comments: Vec<String>,
}

impl ScannedFile {
    /// Number of lines in the file.
    pub fn n_lines(&self) -> usize {
        self.code.len()
    }
}

#[derive(PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested depth.
    BlockComment(usize),
    Str,
    /// Number of `#`s that close it.
    RawStr(usize),
}

/// Scan `src` into per-line code and comment channels.
pub fn scan(src: &str) -> ScannedFile {
    let mut code: Vec<String> = Vec::new();
    let mut comments: Vec<String> = Vec::new();
    let mut code_line = String::new();
    let mut comment_line = String::new();
    let mut state = State::Code;

    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            code.push(std::mem::take(&mut code_line));
            comments.push(std::mem::take(&mut comment_line));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    code_line.push(' ');
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = State::Str;
                    code_line.push('"');
                    i += 1;
                    continue;
                }
                // Raw (byte) strings: r"…", r#"…"#, br"…", br#"…"#…
                if (c == 'r' || c == 'b') && !prev_is_ident(&code_line) {
                    let mut j = i;
                    if chars.get(j) == Some(&'b') && chars.get(j + 1) == Some(&'r') {
                        j += 1;
                    }
                    if chars.get(j) == Some(&'r') {
                        let mut hashes = 0usize;
                        let mut k = j + 1;
                        while chars.get(k) == Some(&'#') {
                            hashes += 1;
                            k += 1;
                        }
                        if chars.get(k) == Some(&'"') {
                            state = State::RawStr(hashes);
                            for _ in i..=k {
                                code_line.push(' ');
                            }
                            i = k + 1;
                            continue;
                        }
                    }
                }
                // Char literal vs lifetime: 'x' or '\n' is a literal; 'a in
                // generics has no closing quote right after one element.
                if c == '\'' {
                    if chars.get(i + 1) == Some(&'\\') {
                        // Escaped char literal: the char after the backslash
                        // is consumed unconditionally (it may be `'`), then
                        // skip to the closing quote (covers `\u{…}`).
                        let mut k = i + 3;
                        while k < chars.len() && chars[k] != '\'' && chars[k] != '\n' {
                            k += 1;
                        }
                        for _ in i..=k.min(chars.len() - 1) {
                            code_line.push(' ');
                        }
                        i = (k + 1).min(chars.len());
                        continue;
                    }
                    if chars.get(i + 2) == Some(&'\'') {
                        code_line.push_str("   ");
                        i += 3;
                        continue;
                    }
                    // A lifetime — keep the tick as code.
                    code_line.push('\'');
                    i += 1;
                    continue;
                }
                code_line.push(c);
                i += 1;
            }
            State::LineComment => {
                comment_line.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    comment_line.push_str("/*");
                    i += 2;
                } else {
                    comment_line.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code_line.push_str("  ");
                    i += 2; // skip the escaped char (incl. \" and \\)
                } else if c == '"' {
                    state = State::Code;
                    code_line.push('"');
                    i += 1;
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    // Closing needs `"` + `#` * hashes.
                    let closes = (1..=hashes).all(|h| chars.get(i + h) == Some(&'#'));
                    if closes {
                        state = State::Code;
                        for _ in 0..=hashes {
                            code_line.push(' ');
                        }
                        i += 1 + hashes;
                        continue;
                    }
                }
                code_line.push(' ');
                i += 1;
            }
        }
    }
    if !code_line.is_empty() || !comment_line.is_empty() {
        code.push(code_line);
        comments.push(comment_line);
    }
    ScannedFile { code, comments }
}

/// Was the previous code char part of an identifier? (So `for r in…` is not
/// mistaken for a raw-string prefix when followed by `"`.)
fn prev_is_ident(code_line: &str) -> bool {
    code_line.chars().next_back().is_some_and(|p| p.is_alphanumeric() || p == '_')
}

/// Per-line flags marking `#[cfg(test)] mod … { … }` regions, so rules can
/// exempt inline unit tests. Brace counting happens on the code channel
/// (comments and literals already stripped), which makes it exact enough.
pub fn test_regions(file: &ScannedFile) -> Vec<bool> {
    let n = file.n_lines();
    let mut in_test = vec![false; n];
    let mut i = 0usize;
    while i < n {
        if file.code[i].contains("cfg(test)") {
            // Find the opening brace of the mod (same or later line).
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < n {
                in_test[j] = true;
                for c in file.code[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_go_to_comment_channel() {
        let s = scan("let x = 1; // call .unwrap() here\n/* panic! */ let y = 2;\n");
        assert!(!s.code[0].contains("unwrap"));
        assert!(s.comments[0].contains(".unwrap()"));
        assert!(!s.code[1].contains("panic!"));
        assert!(s.code[1].contains("let y = 2;"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let s = scan("let m = \"do not panic!(here) or .unwrap()\";\n");
        assert!(!s.code[0].contains("panic!"));
        assert!(!s.code[0].contains("unwrap"));
        assert!(s.code[0].contains("let m = "));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let s = scan("let a = r#\"has .unwrap() and \"quotes\"\"#;\nlet b = \"esc \\\" .expect(\";\n");
        assert!(!s.code[0].contains("unwrap"));
        assert!(!s.code[1].contains("expect"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let s = scan("fn f<'a>(x: &'a str) -> char { '\\'' }\nlet q = '\"'; let c = q;\n");
        assert!(s.code[0].contains("fn f<'a>(x: &'a str)"));
        // The '"' literal must not open a string state.
        assert!(s.code[1].contains("let c = q;"));
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("/* outer /* inner */ still comment */ let z = 3;\n");
        assert!(s.code[0].contains("let z = 3;"));
        assert!(!s.code[0].contains("inner"));
    }

    #[test]
    fn test_region_tracking() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let s = scan(src);
        let regions = test_regions(&s);
        assert_eq!(regions, vec![false, true, true, true, true, false]);
    }
}
