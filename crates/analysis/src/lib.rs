//! `agl-analysis` — static analysis for the AGL workspace.
//!
//! AGL's correctness story (paper §3.3.2 conflict-free aggregation;
//! deterministic, retryable MapReduce rounds in GraphFlat/GraphInfer) is
//! enforced here at two levels:
//!
//! * **Source lints** ([`lint`], [`rules`], [`scanner`], and the
//!   `agl-lint` binary): a dependency-free token scanner walks every
//!   workspace `.rs` file and enforces repo invariants — no
//!   `.unwrap()`/`.expect(…)`/`panic!` in pipeline-crate library code, a
//!   `// SAFETY:` comment before every `unsafe`, no wall-clock reads in
//!   determinism-critical modules (derived from `JobPlan` attachment, not
//!   a hard-coded list), no raw `std::thread::spawn` outside sanctioned
//!   executors. `// agl-lint: allow(<rule>)` is the audited escape hatch;
//!   [`rules::registry`] is where future rules are added.
//! * **Concurrency-safety pass** ([`lockgraph`]): a per-function walk over
//!   `agl-ps` sources that builds the lock graph of the tracked acquisition
//!   wrappers (`lock_barrier`/`lock_versions`/`lock_shard(i)`), flagging
//!   order inversions against the canonical `barrier → versions → shard(i)
//!   ascending` discipline, double acquisitions, unprovably-ordered shard
//!   pairs, locks held across `.send(…)`/`spawn(…)`, and raw locks that
//!   bypass the wrappers. The same walk records the workspace **call
//!   graph** (function definitions, call sites with held-guard sets), over
//!   which [`lockgraph::interproc`] propagates lock summaries bottom-up by
//!   SCC and proves the same discipline *across* function boundaries — the
//!   `lock-order/interproc` rule, whose findings name the full call chain
//!   site by site. The same walk also flags allocations inside the loop
//!   bodies of the aggregation/reducer hot functions. Its dynamic
//!   complement is [`LockOrderTracker`] (re-exported from
//!   `agl_ps::locks`): debug builds record every real acquisition edge and
//!   abort on the first cycle. The whole model is written up in the
//!   repository's `CONCURRENCY.md`.
//! * **Happens-before pass** ([`atomics`]): a walk over the same scanner
//!   output that records every atomic declaration and access site with its
//!   `Ordering`, classifies each atomic as thread-local or cross-thread
//!   (spawn captures, statics, `Arc`-reachable owners, spawn-reachability
//!   over the call graph), and flags unordered `Relaxed` traffic, mixed
//!   orderings, and non-atomic spawn-write/outside-read pairs — the
//!   `atomics` rule. Its dynamic complement is `agl_ps::hb`: per-thread
//!   vector clocks advanced at `TrackedMutex` acquire/release and
//!   spawn/join, with a `TrackedAtomic<…>` wrapper (exempt from the static
//!   rule) that aborts debug builds on concurrent unordered conflicting
//!   accesses, naming both sites.
//! * **Plan-level verifiers**: [`ConflictFreedomVerifier`] proves an
//!   [`agl_tensor::EdgePartition`] is pairwise disjoint, covering, and
//!   nnz-balanced before threads spawn (the dynamic complement is
//!   `agl_tensor::partition::WriteSetTracker`), and
//!   [`JobPlanValidator`] (re-exported from `agl_mapreduce::plan`)
//!   validates K-round MapReduce pipelines at construction.
//!
//! A workspace integration test runs the linter over the entire repo, so a
//! violation anywhere fails tier-1.

#![warn(missing_docs)]

pub mod atomics;
pub mod conflict;
pub mod lint;
pub mod lockgraph;
pub mod rules;
pub mod scanner;

pub use atomics::{AtomicFinding, FileAtomics};
pub use conflict::ConflictFreedomVerifier;
pub use lint::{collect_rs_files, find_workspace_root, lint_source, lint_sources, lint_workspace};
pub use lockgraph::{
    interproc, render_chain, AllocSite, Analysis, ChainFrame, FileLocks, InterprocFinding, LockEdge, LockFinding,
    LockFindingKind, LockSym,
};
pub use rules::{crate_registry, crate_rule_by_name, registry, rule_by_name, CrateRule, Diagnostic, FileView, Rule};

// The runtime halves of the concurrency-safety story, re-exported so
// callers find the whole analysis surface in one crate.
pub use agl_ps::hb::{Handoff, HbTracker, JoinPool, TrackedAtomic};
pub use agl_ps::locks::{LockClass, LockOrderTracker, TrackedGuard, TrackedMutex};

// The mapreduce-side plan verifier, re-exported so callers find the whole
// analysis surface in one crate.
pub use agl_mapreduce::plan::{JobPlan, JobPlanValidator, PlanError, RoundPlan, WireSig};
