//! `agl-analysis` — static analysis for the AGL workspace.
//!
//! AGL's correctness story (paper §3.3.2 conflict-free aggregation;
//! deterministic, retryable MapReduce rounds in GraphFlat/GraphInfer) is
//! enforced here at two levels:
//!
//! * **Source lints** ([`lint`], [`rules`], [`scanner`], and the
//!   `agl-lint` binary): a dependency-free token scanner walks every
//!   workspace `.rs` file and enforces repo invariants — no
//!   `.unwrap()`/`.expect(…)`/`panic!` in pipeline-crate library code, a
//!   `// SAFETY:` comment before every `unsafe`, no wall-clock reads in
//!   determinism-critical modules, no raw `std::thread::spawn` outside
//!   sanctioned executors. `// agl-lint: allow(<rule>)` is the audited
//!   escape hatch; [`rules::registry`] is where future rules are added.
//! * **Plan-level verifiers**: [`ConflictFreedomVerifier`] proves an
//!   [`agl_tensor::EdgePartition`] is pairwise disjoint, covering, and
//!   nnz-balanced before threads spawn (the dynamic complement is
//!   `agl_tensor::partition::WriteSetTracker`), and
//!   [`JobPlanValidator`] (re-exported from `agl_mapreduce::plan`)
//!   validates K-round MapReduce pipelines at construction.
//!
//! A workspace integration test runs the linter over the entire repo, so a
//! violation anywhere fails tier-1.

pub mod conflict;
pub mod lint;
pub mod rules;
pub mod scanner;

pub use conflict::ConflictFreedomVerifier;
pub use lint::{collect_rs_files, find_workspace_root, lint_source, lint_workspace};
pub use rules::{registry, rule_by_name, Diagnostic, Rule};

// The mapreduce-side plan verifier, re-exported so callers find the whole
// analysis surface in one crate.
pub use agl_mapreduce::plan::{JobPlan, JobPlanValidator, PlanError, RoundPlan, WireSig};
