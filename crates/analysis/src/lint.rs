//! The lint driver: walk source files, run every registered rule — the
//! per-file rules on each file, the crate-scope rules on the whole file
//! set — apply the `agl-lint: allow(…)` escape hatch, and report
//! diagnostics.

use crate::rules::{crate_registry, registry, Diagnostic, FileView};
use crate::scanner::{scan, ScannedFile};
use std::io;
use std::path::{Path, PathBuf};

/// Lint one file's source text. `rel_path` must be workspace-relative and
/// `/`-separated — rules dispatch on it (pipeline crate? test target?
/// determinism-critical module?). Crate-scope rules run over the
/// single-file "set", so cross-file chains obviously cannot appear; use
/// [`lint_sources`] to lint a coherent file set.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    lint_sources(&[(rel_path.to_string(), src.to_string())])
}

/// Lint a set of files together: every `(workspace-relative path, source
/// text)` pair gets the per-file rules, then the crate-scope rules (the
/// interprocedural lock-order pass) run once over the whole set. The
/// `agl-lint: allow(…)` escape hatch is applied against each diagnostic's
/// *owning* file — for an interprocedural finding that is the file of the
/// anchoring call site. Diagnostics come back sorted by (path, line, rule).
pub fn lint_sources(files: &[(String, String)]) -> Vec<Diagnostic> {
    let scanned: Vec<ScannedFile> = files.iter().map(|(_, src)| scan(src)).collect();
    let views: Vec<FileView> = files.iter().zip(&scanned).map(|((path, _), s)| FileView::new(path, s)).collect();
    let mut out: Vec<Diagnostic> = Vec::new();
    for view in &views {
        out.extend(registry().iter().flat_map(|rule| (rule.check)(view)));
    }
    out.extend(crate_registry().iter().flat_map(|rule| (rule.check)(&views)));
    let scanned_of = |path: &str| files.iter().position(|(p, _)| p == path).map(|i| &scanned[i]);
    out.retain(|d| !scanned_of(&d.path).is_some_and(|s| is_allowed(s, d)));
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

/// The escape hatch: `// agl-lint: allow(<rule>)` on the diagnostic's line
/// or the line directly above suppresses it.
fn is_allowed(scanned: &ScannedFile, d: &Diagnostic) -> bool {
    let needle = format!("agl-lint: allow({})", d.rule);
    let line0 = d.line - 1; // Diagnostic lines are 1-based.
    scanned.comments.get(line0).is_some_and(|c| c.contains(&needle))
        || (line0 > 0 && scanned.comments[line0 - 1].contains(&needle))
}

/// Recursively collect `.rs` files under `root`, skipping build output and
/// VCS internals. Paths come back sorted for deterministic reports.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint every `.rs` file under a workspace root, as one coherent set (so
/// the crate-scope rules see the whole workspace call graph).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files: Vec<(String, String)> = Vec::new();
    for path in collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push((rel, std::fs::read_to_string(&path)?));
    }
    Ok(lint_sources(&files))
}

/// Find the workspace root by walking up from `start` to the nearest
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_on_same_line_suppresses() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // agl-lint: allow(no-panic) — checked above\n}\n";
        assert!(lint_source("crates/flat/src/foo.rs", src).is_empty());
    }

    #[test]
    fn allow_on_previous_line_suppresses() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // agl-lint: allow(no-panic) — invariant: x is Some\n    x.unwrap()\n}\n";
        assert!(lint_source("crates/flat/src/foo.rs", src).is_empty());
    }

    #[test]
    fn allow_for_other_rule_does_not_suppress() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // agl-lint: allow(no-wallclock)\n    x.unwrap()\n}\n";
        let d = lint_source("crates/flat/src/foo.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-panic");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn diagnostics_are_sorted_and_display_file_line() {
        let src = "fn g() { std::thread::spawn(|| {}); }\nfn f(x: Option<u32>) { x.unwrap(); }\n";
        let d = lint_source("crates/ps/src/foo.rs", src);
        assert_eq!(d.len(), 2);
        assert!(d[0].line <= d[1].line);
        let shown = d[0].to_string();
        assert!(shown.starts_with("crates/ps/src/foo.rs:1:"), "{shown}");
    }
}
