//! Static verification of edge-partition conflict freedom.
//!
//! AGL's §3.3.2 speedup claim rests on an invariant the code must uphold,
//! not just assert in comments: when the sparse adjacency is split into
//! per-thread partitions, the destination-row ranges are **pairwise
//! disjoint** and **cover** `0..n_rows`, so no two threads ever write the
//! same output row. [`ConflictFreedomVerifier`] proves this about a
//! concrete [`EdgePartition`] *before* any thread is spawned — the static
//! complement to the dynamic [`agl_tensor::partition::WriteSetTracker`]
//! that catches a violation at write time in debug builds.
//!
//! Beyond disjoint cover, the verifier bounds **nnz imbalance**: the greedy
//! splitter guarantees every partition carries at most
//! `ceil(nnz / parts) + max_row_nnz` nonzeros (it closes a partition at the
//! first row boundary past the ideal share, so it can overshoot by at most
//! one row). A partition violating that bound could serialize the whole
//! kernel behind one thread — a performance bug the type system can't see.

use agl_tensor::{Csr, EdgePartition, PartitionViolation};

/// Verifies an [`EdgePartition`] against the matrix it will be used with.
#[derive(Debug, Clone)]
pub struct ConflictFreedomVerifier {
    /// Extra nonzeros a partition may carry beyond the ideal share
    /// `ceil(nnz / parts)`. `None` (default) uses the matrix's maximum row
    /// nnz — the bound the greedy splitter provably satisfies.
    pub max_extra_nnz: Option<usize>,
}

impl Default for ConflictFreedomVerifier {
    fn default() -> Self {
        Self::new()
    }
}

impl ConflictFreedomVerifier {
    /// Verifier with the derived imbalance slack (max row nnz).
    pub fn new() -> Self {
        Self { max_extra_nnz: None }
    }

    /// Use an explicit imbalance slack instead of the derived one.
    pub fn with_max_extra_nnz(slack: usize) -> Self {
        Self { max_extra_nnz: Some(slack) }
    }

    /// Check disjointness, cover, and nnz balance of `part` for `csr`.
    ///
    /// Returns the first violation found; `Ok(())` means every thread owns
    /// a disjoint row range, the ranges cover the matrix, and no partition
    /// exceeds the imbalance bound.
    pub fn verify(&self, part: &EdgePartition, csr: &Csr) -> Result<(), PartitionViolation> {
        part.check_conflict_free(csr.n_rows())?;

        let parts = part.len();
        if parts == 0 || csr.nnz() == 0 {
            return Ok(());
        }
        let ideal = csr.nnz().div_ceil(parts);
        let slack = match self.max_extra_nnz {
            Some(s) => s,
            None => (0..csr.n_rows()).map(|r| csr.row_nnz(r)).max().unwrap_or(0),
        };
        let bound = ideal + slack;
        for i in 0..parts {
            let part_nnz = part.part_nnz(csr, i);
            if part_nnz > bound {
                return Err(PartitionViolation::Imbalanced { index: i, part_nnz, bound });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_tensor::Coo;

    fn diag_csr(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i as u32, i as u32, 1.0);
        }
        coo.into_csr()
    }

    #[test]
    fn accepts_constructed_partition() {
        let csr = diag_csr(16);
        for t in 1..6 {
            let part = EdgePartition::new(&csr, t);
            assert!(ConflictFreedomVerifier::new().verify(&part, &csr).is_ok(), "t={t}");
        }
    }

    #[test]
    fn rejects_overlapping_partition() {
        let csr = diag_csr(10);
        let bad = EdgePartition::from_bounds(vec![0, 6, 4, 10]);
        let err = ConflictFreedomVerifier::new().verify(&bad, &csr);
        assert!(matches!(err, Err(PartitionViolation::Overlap { .. })), "{err:?}");
    }

    #[test]
    fn rejects_gap() {
        let csr = diag_csr(10);
        let bad = EdgePartition::from_bounds(vec![0, 4, 8]);
        assert!(matches!(
            ConflictFreedomVerifier::new().verify(&bad, &csr),
            Err(PartitionViolation::DoesNotCover { .. })
        ));
    }

    #[test]
    fn rejects_imbalance_with_explicit_slack() {
        // 10 diagonal nonzeros split [0,9)+[9,10): first part has 9 nnz,
        // ideal share is 5; slack 0 must reject, slack 4 must accept.
        let csr = diag_csr(10);
        let skew = EdgePartition::from_bounds(vec![0, 9, 10]);
        assert!(matches!(
            ConflictFreedomVerifier::with_max_extra_nnz(0).verify(&skew, &csr),
            Err(PartitionViolation::Imbalanced { index: 0, part_nnz: 9, bound: 5 })
        ));
        assert!(ConflictFreedomVerifier::with_max_extra_nnz(4).verify(&skew, &csr).is_ok());
    }
}
