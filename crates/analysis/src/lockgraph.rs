//! Lexical lock-acquisition-order and hot-loop-allocation analysis.
//!
//! The parameter server (`agl-ps`) guards its state with three families of
//! locks behind named acquisition wrappers — `lock_barrier()`,
//! `lock_versions()`, `lock_shard(i)` — with a canonical order:
//!
//! > barrier (rank 0) → versions (rank 1) → shard *i* (rank 2+i, ascending)
//!
//! The dynamic half of the proof is `agl_ps::locks::LockOrderTracker`
//! (cycle detection over *observed* edges, debug builds). This module is
//! the static half: a per-function walk over the scanner's code channel
//! that tracks which guards are lexically held at each acquisition site,
//! records the resulting lock-graph edges, and reports:
//!
//! * **inversions** — acquiring a lock whose rank is ≤ a held lock's rank;
//! * **double acquisitions** — re-acquiring a held class (self-deadlock);
//! * **unordered shard pairs** — two shard locks held together where at
//!   least one index is not a literal, so the order cannot be proven;
//! * **lock-held-across-send/spawn** — a `.send(…)`, `.recv(…)` or
//!   `spawn(…)` while any guard is held (a blocked channel or child would
//!   stall the lock);
//! * **lock-held-across-wait** — a condvar `guard.wait(…)` /
//!   `guard.wait_while(…)` while holding any *other* guard. The receiver
//!   itself is exempt: a condvar wait atomically releases the receiver's
//!   lock and reacquires it before returning (`TrackedGuard::wait_while`
//!   keeps the dynamic tracker's held-set entry alive for exactly this
//!   reason), so the receiver is *not* held across the block — but every
//!   other guard stays locked while the thread sleeps;
//! * **untracked locks** — raw `.lock()` / `lock_ignoring_poison(…)` that
//!   bypass the tracked wrappers (and hence the dynamic tracker).
//!
//! The same walk powers the allocation lint: inside a *hot* function
//! (aggregation kernels, reducer bodies — the caller supplies the list),
//! any allocation token (`Vec::new(`, `vec![`, `.to_vec(`, `.clone(`,
//! `format!(`, `.collect(`) appearing lexically inside a loop body is
//! reported as an [`AllocSite`].
//!
//! Like the rest of the lint, this is lexical, not semantic: it resolves
//! `let`-bound guards to their enclosing block (or an explicit
//! `drop(ident)`) and treats non-`let` acquisitions as temporaries that die
//! at the end of the statement. That is exactly enough for the acquisition
//! discipline the wrappers make syntactically visible.
//!
//! # Interprocedural analysis
//!
//! The per-function walk only sees chains that are lexically inside one
//! function. `push` holding the barrier while `apply` (a different function)
//! takes `shard(i)` is invisible to it — until this module's second pass.
//! While walking, [`analyze`] also records every function definition (with
//! its `impl` owner), every call site together with the guards lexically
//! held at it, every acquisition with its held set, and every potentially
//! blocking operation (condvar wait, channel send/recv, thread spawn) with
//! its held set. [`interproc`] then assembles those records from all files
//! of a crate into a [`CallGraph`], resolves call
//! targets conservatively (`self.f(…)`, `Type::f(…)`, bare `f(…)`; never
//! method calls on unknown receivers), and propagates **lock summaries**
//! bottom-up over the SCCs of the graph: the set of lock classes a function
//! may acquire transitively, and whether it may block, each tagged with a
//! site-by-site witness chain. Judging a caller's held set against its
//! callee's summary at every call site yields the same finding kinds as the
//! per-function pass — inversions, double-locks, unordered shard pairs,
//! guard-held-across-block — but spanning function boundaries, with the full
//! call chain named in the message. Condvar semantics carry over: a wait
//! releases and reacquires its receiver, so only *other* held guards
//! propagate into a blocking summary.
//!
//! Known, deliberate under-approximations (resolution never guesses, so the
//! pass cannot produce a false chain): method calls on non-`self` receivers
//! (`v.record_push(…)`) are not resolved, because the receiver's type is
//! unknown lexically and e.g. `vec.push(…)` must never resolve to
//! `ParameterServer::push`; and a guard *returned* by a callee is treated as
//! dying inside the callee (no escape analysis) — `agl-ps` wrappers return
//! guards only from the `lock_*` acquisition wrappers themselves, which the
//! walk models directly as acquisitions.

use crate::scanner::{impl_owner, parse_call, CallGraph, CallGraphNode, CallTarget, ScannedFile};
use std::collections::BTreeMap;
use std::fmt;

/// Symbolic identity of an `agl-ps` lock at an acquisition site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockSym {
    /// The SSP/sync barrier state (rank 0).
    Barrier,
    /// The version table (rank 1).
    Versions,
    /// `Some(i)` when the shard index is an integer literal, `None` when it
    /// is a runtime expression (rank known only relative to non-shards).
    Shard(Option<u64>),
}

impl LockSym {
    /// Canonical acquisition rank; `None` for shards whose index is not a
    /// literal (ordered against non-shards, unordered among shards).
    pub fn rank(self) -> Option<u64> {
        match self {
            LockSym::Barrier => Some(0),
            LockSym::Versions => Some(1),
            LockSym::Shard(Some(i)) => Some(2 + i),
            LockSym::Shard(None) => None,
        }
    }

    fn is_shard(self) -> bool {
        matches!(self, LockSym::Shard(_))
    }
}

impl fmt::Display for LockSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockSym::Barrier => write!(f, "barrier"),
            LockSym::Versions => write!(f, "versions"),
            LockSym::Shard(Some(i)) => write!(f, "shard({i})"),
            LockSym::Shard(None) => write!(f, "shard(_)"),
        }
    }
}

/// What a lock finding is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockFindingKind {
    /// Acquisition order contradicts the canonical ranks.
    Inversion,
    /// Re-acquiring an already-held class — self-deadlock on std mutexes.
    DoubleLock,
    /// Two shard locks held together, order not provable from literals.
    Unordered,
    /// `.send(`/`.recv(`/`spawn(` while holding a guard.
    HeldAcrossSend,
    /// Condvar `.wait(`/`.wait_while(` while holding a guard other than the
    /// receiver (which the wait releases and reacquires).
    HeldAcrossWait,
    /// Raw `.lock()`/`lock_ignoring_poison(` bypassing the tracked wrappers.
    UntrackedLock,
}

/// One lock-discipline finding (0-based line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockFinding {
    /// What the finding is about.
    pub kind: LockFindingKind,
    /// 0-based line of the offending site.
    pub line: usize,
    /// Enclosing function, or `"<top>"` outside any `fn`.
    pub func: String,
    /// Human-readable explanation.
    pub message: String,
}

/// One observed acquisition edge `from → to` (held → newly acquired).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Enclosing function of the acquisition.
    pub func: String,
    /// The lock already held.
    pub from: LockSym,
    /// The lock being acquired.
    pub to: LockSym,
    /// 0-based line of the acquisition that created the edge.
    pub line: usize,
}

/// An allocation token inside a loop body of a hot function (0-based line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSite {
    /// 0-based line of the allocation token.
    pub line: usize,
    /// Enclosing hot function.
    pub func: String,
    /// The token that matched (e.g. `".to_vec("`).
    pub pattern: &'static str,
}

/// A function definition recorded by the walk (input to the call graph).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDefRec {
    /// The function name.
    pub name: String,
    /// The enclosing `impl` block's `Self` type, `None` for free functions.
    pub owner: Option<String>,
    /// 0-based line of the body's opening brace.
    pub line: usize,
}

/// A guard lexically held at some site (for call/acquisition/block records).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeldLock {
    /// The held lock class.
    pub sym: LockSym,
    /// 0-based line where it was acquired.
    pub line: usize,
}

/// A call site recorded by the walk, with the guards held at it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallRec {
    /// Index into [`Analysis::fns`] of the enclosing function, `None` when
    /// the call appears outside any named function.
    pub fn_idx: Option<usize>,
    /// How the call names its callee.
    pub target: CallTarget,
    /// 0-based line of the call.
    pub line: usize,
    /// Guards lexically held when the call executes.
    pub held: Vec<HeldLock>,
}

/// A tracked-lock acquisition site, with the guards already held at it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcqRec {
    /// Index into [`Analysis::fns`] of the enclosing function.
    pub fn_idx: Option<usize>,
    /// The lock class acquired.
    pub sym: LockSym,
    /// 0-based line of the acquisition.
    pub line: usize,
    /// Guards already held (the per-function pass judges each pair).
    pub held: Vec<HeldLock>,
}

/// A potentially blocking operation (condvar wait, channel send/recv, thread
/// spawn) with the guards held across it. For a condvar wait the receiver is
/// excluded — the wait releases and reacquires it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockRec {
    /// Index into [`Analysis::fns`] of the enclosing function.
    pub fn_idx: Option<usize>,
    /// Display token, e.g. `".wait_while(…)"` or `".send(…)"`.
    pub what: &'static str,
    /// `true` for condvar waits (finding kind `HeldAcrossWait`), `false`
    /// for send/recv/spawn (`HeldAcrossSend`).
    pub is_wait: bool,
    /// 0-based line of the operation.
    pub line: usize,
    /// Guards held across the block (receiver excluded for waits).
    pub held: Vec<HeldLock>,
}

/// Everything one walk produces.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Per-function lock-discipline findings.
    pub lock_findings: Vec<LockFinding>,
    /// Hot-loop allocation sites.
    pub alloc_sites: Vec<AllocSite>,
    /// The per-function lock graph: every held→acquired pair observed.
    pub edges: Vec<LockEdge>,
    /// Function definitions, in source order (call-graph nodes).
    pub fns: Vec<FnDefRec>,
    /// Call sites with held-lock sets (call-graph edges, once resolved).
    pub calls: Vec<CallRec>,
    /// Tracked-lock acquisition sites with held-lock sets.
    pub acqs: Vec<AcqRec>,
    /// Potentially blocking operations with held-lock sets.
    pub block_ops: Vec<BlockRec>,
}

const ALLOC_TOKENS: &[&str] = &["Vec::new(", "vec![", ".to_vec(", ".clone(", "format!(", ".collect("];

#[derive(Clone, Copy, PartialEq)]
enum BlockKind {
    Fn,
    Loop,
    Impl,
    Other,
}

struct Guard {
    /// `Some(ident)` for `let`-bound guards, `None` for temporaries.
    name: Option<String>,
    sym: LockSym,
    line: usize,
    /// Block-stack depth at acquisition; released when the stack shrinks
    /// below it.
    depth: usize,
}

/// Walk `scanned`'s code channel. `hot_fns` are the function names whose
/// loop bodies are subject to the allocation lint (empty slice disables it).
pub fn analyze(scanned: &ScannedFile, hot_fns: &[&str]) -> Analysis {
    let mut out = Analysis::default();
    let mut blocks: Vec<BlockKind> = Vec::new();
    // (name, block depth of the fn body, index into out.fns) — a stack so
    // closures/nested fns don't lose the enclosing name.
    let mut fn_stack: Vec<(String, usize, usize)> = Vec::new();
    // (owner type, block depth of the impl body).
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    // Statement/header text accumulated since the last `;`, `{` or `}` —
    // what classifies the next `{` and reveals `let` bindings.
    let mut stmt = String::new();

    for (lineno, line) in scanned.code.iter().enumerate() {
        let mut p = 0usize;
        while p < line.len() {
            let rest = &line[p..];
            // `rest` starts at a char boundary by construction.
            let c = match rest.chars().next() {
                Some(c) => c,
                None => break,
            };
            match c {
                '{' => {
                    let kind = classify_block(&stmt);
                    if kind == BlockKind::Fn {
                        if let Some(name) = fn_name(&stmt) {
                            let owner = impl_stack.last().map(|(o, _)| o.clone());
                            out.fns.push(FnDefRec { name: name.clone(), owner, line: lineno });
                            fn_stack.push((name, blocks.len() + 1, out.fns.len() - 1));
                        }
                    } else if kind == BlockKind::Impl {
                        if let Some(owner) = impl_owner(&stmt) {
                            impl_stack.push((owner, blocks.len() + 1));
                        }
                    }
                    blocks.push(kind);
                    // Condition temporaries do not outlive the header.
                    guards.retain(|g| g.name.is_some());
                    stmt.clear();
                }
                '}' => {
                    let depth = blocks.len();
                    guards.retain(|g| g.depth < depth);
                    if fn_stack.last().is_some_and(|(_, d, _)| *d == depth) {
                        fn_stack.pop();
                    }
                    if impl_stack.last().is_some_and(|(_, d)| *d == depth) {
                        impl_stack.pop();
                    }
                    blocks.pop();
                    stmt.clear();
                }
                ';' => {
                    guards.retain(|g| g.name.is_some());
                    stmt.clear();
                }
                _ => {
                    scan_tokens(rest, &stmt, lineno, &blocks, &fn_stack, &mut guards, hot_fns, &mut out);
                    stmt.push(c);
                }
            }
            p += c.len_utf8();
        }
        // Line boundary: keep multi-line statements readable as one header
        // without gluing the last token of this line to the first of the next.
        if !stmt.is_empty() && !stmt.ends_with(' ') {
            stmt.push(' ');
        }
    }
    out
}

/// Check the tokens that can start at this position.
#[allow(clippy::too_many_arguments)]
fn scan_tokens(
    rest: &str,
    stmt: &str,
    lineno: usize,
    blocks: &[BlockKind],
    fn_stack: &[(String, usize, usize)],
    guards: &mut Vec<Guard>,
    hot_fns: &[&str],
    out: &mut Analysis,
) {
    let func = || fn_stack.last().map_or_else(|| "<top>".to_string(), |(n, _, _)| n.clone());
    let fn_idx = fn_stack.last().map(|(_, _, i)| *i);
    let held_set = |gs: &[Guard]| gs.iter().map(|g| HeldLock { sym: g.sym, line: g.line }).collect::<Vec<_>>();
    let boundary_before = !stmt.chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
    // An acquisition token directly after `fn ` is the wrapper's own
    // definition, not a call site.
    let is_definition = stmt.trim_end().ends_with("fn") || stmt.ends_with("fn ");

    // ---- Acquisitions ----------------------------------------------------
    let acquired = if !boundary_before || is_definition {
        None
    } else if rest.starts_with("lock_barrier(") {
        Some(LockSym::Barrier)
    } else if rest.starts_with("lock_versions(") {
        Some(LockSym::Versions)
    } else if let Some(tail) = rest.strip_prefix("lock_shard(") {
        Some(LockSym::Shard(parse_literal_index(tail)))
    } else {
        None
    };
    if let Some(sym) = acquired {
        out.acqs.push(AcqRec { fn_idx, sym, line: lineno, held: held_set(guards) });
        for held in guards.iter() {
            out.edges.push(LockEdge { func: func(), from: held.sym, to: sym, line: lineno });
            if let Some(finding) = judge(held, sym, lineno, &func()) {
                out.lock_findings.push(finding);
            }
        }
        guards.push(Guard { name: let_binding_name(stmt), sym, line: lineno, depth: blocks.len() });
        return;
    }

    // ---- Releases --------------------------------------------------------
    if boundary_before {
        if let Some(tail) = rest.strip_prefix("drop(") {
            let ident: String = tail.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if !ident.is_empty() {
                if let Some(pos) = guards.iter().rposition(|g| g.name.as_deref() == Some(&ident)) {
                    guards.remove(pos);
                }
            }
            return;
        }
    }

    // ---- Condvar waits ---------------------------------------------------
    // `guard.wait(cv)` / `guard.wait_while(cv, …)` atomically release the
    // receiver's lock and reacquire it before returning, so the receiver is
    // a release+reacquire site, not a held-across-block violation. Any
    // *other* guard, though, stays locked while the thread is parked.
    if rest.starts_with(".wait(") || rest.starts_with(".wait_while(") {
        let what = if rest.starts_with(".wait_while(") { ".wait_while(…)" } else { ".wait(…)" };
        let recv_pos = match trailing_ident(stmt) {
            Some(ident) => guards.iter().rposition(|g| g.name.as_deref() == Some(&ident)),
            // `self.lock_x().wait_while(…)`: the receiver is the temporary.
            None => guards.iter().rposition(|g| g.name.is_none()),
        };
        let others: Vec<HeldLock> = guards
            .iter()
            .enumerate()
            .filter(|&(i, _)| Some(i) != recv_pos)
            .map(|(_, g)| HeldLock { sym: g.sym, line: g.line })
            .collect();
        if !others.is_empty() {
            let names: Vec<String> = others.iter().map(|h| format!("{} (line {})", h.sym, h.line + 1)).collect();
            out.lock_findings.push(LockFinding {
                kind: LockFindingKind::HeldAcrossWait,
                line: lineno,
                func: func(),
                message: format!(
                    "{what} releases only its receiver; still holding {} while parked on the condvar",
                    names.join(", ")
                ),
            });
        }
        // Recorded even with an empty held set: a caller holding a lock
        // across a call into this function still parks across the wait.
        out.block_ops.push(BlockRec { fn_idx, what, is_wait: true, line: lineno, held: others });
        return;
    }

    // ---- Held-across-send / recv / spawn ---------------------------------
    if rest.starts_with(".send(") || rest.starts_with(".recv(") || (boundary_before && rest.starts_with("spawn(")) {
        let what = if rest.starts_with(".send(") {
            ".send(…)"
        } else if rest.starts_with(".recv(") {
            ".recv(…)"
        } else {
            "spawn(…)"
        };
        if !guards.is_empty() {
            let held: Vec<String> = guards.iter().map(|g| format!("{} (line {})", g.sym, g.line + 1)).collect();
            out.lock_findings.push(LockFinding {
                kind: LockFindingKind::HeldAcrossSend,
                line: lineno,
                func: func(),
                message: format!(
                    "{what} while holding {} — a blocked receiver or child stalls the lock",
                    held.join(", ")
                ),
            });
        }
        out.block_ops.push(BlockRec { fn_idx, what, is_wait: false, line: lineno, held: held_set(guards) });
        return;
    }

    // ---- Untracked locks -------------------------------------------------
    if rest.starts_with(".lock()") || (boundary_before && rest.starts_with("lock_ignoring_poison(")) {
        let what = if rest.starts_with(".lock()") { ".lock()" } else { "lock_ignoring_poison(…)" };
        out.lock_findings.push(LockFinding {
            kind: LockFindingKind::UntrackedLock,
            line: lineno,
            func: func(),
            message: format!(
                "raw {what} bypasses the tracked acquisition wrappers (and the debug-mode \
                 LockOrderTracker); use lock_barrier/lock_versions/lock_shard"
            ),
        });
        return;
    }

    // ---- Call sites ------------------------------------------------------
    // Recorded (not judged) — the interprocedural pass resolves targets and
    // judges the held set against the callee's lock summary. Method calls on
    // non-`self` receivers are never resolvable, so they are not recorded.
    if boundary_before && !is_definition {
        if let Some(target) = parse_call(rest, stmt) {
            if !matches!(target, CallTarget::Method(_)) {
                out.calls.push(CallRec { fn_idx, target, line: lineno, held: held_set(guards) });
            }
        }
    }

    // ---- Hot-loop allocations -------------------------------------------
    if hot_fns.is_empty() || fn_stack.is_empty() {
        return;
    }
    let in_hot_fn = fn_stack.last().is_some_and(|(n, _, _)| hot_fns.contains(&n.as_str()));
    // A loop block between the innermost fn body and here.
    let fn_depth = fn_stack.last().map_or(0, |(_, d, _)| *d);
    let in_loop = blocks.len() > fn_depth && blocks[fn_depth..].contains(&BlockKind::Loop);
    if in_hot_fn && in_loop {
        for pat in ALLOC_TOKENS {
            let matches =
                if pat.starts_with('.') { rest.starts_with(pat) } else { boundary_before && rest.starts_with(pat) };
            if matches {
                out.alloc_sites.push(AllocSite { line: lineno, func: func(), pattern: pat });
                return;
            }
        }
    }
}

/// Order verdict for acquiring `new` while `held` is held.
fn judge(held: &Guard, new: LockSym, lineno: usize, func: &str) -> Option<LockFinding> {
    judge_pair(held.sym, held.line, new).map(|(kind, message)| LockFinding {
        kind,
        line: lineno,
        func: func.to_string(),
        message,
    })
}

/// Order verdict for acquiring `new` while `held_sym` (acquired at 0-based
/// `held_line`) is held — the shared core of the per-function and
/// interprocedural passes.
fn judge_pair(held_sym: LockSym, held_line: usize, new: LockSym) -> Option<(LockFindingKind, String)> {
    let mk = |kind, message| Some((kind, message));
    if held_sym == new && !matches!(new, LockSym::Shard(None)) {
        return mk(
            LockFindingKind::DoubleLock,
            format!("re-acquiring {} already held since line {} — self-deadlock on a std mutex", new, held_line + 1),
        );
    }
    match (held_sym.rank(), new.rank()) {
        (Some(h), Some(n)) if n <= h => mk(
            LockFindingKind::Inversion,
            format!(
                "lock-order inversion: acquiring {} while holding {} (acquired line {}); \
                 canonical order is barrier → versions → shard(i) ascending",
                new,
                held_sym,
                held_line + 1
            ),
        ),
        (Some(_), Some(_)) => None,
        // At least one non-literal shard index: order among shards unprovable.
        _ if held_sym.is_shard() && new.is_shard() => mk(
            LockFindingKind::Unordered,
            format!(
                "cannot prove acquisition order: {} acquired while holding {} (line {}) and at \
                 least one shard index is not a literal",
                new,
                held_sym,
                held_line + 1
            ),
        ),
        // Shard vs non-shard is ordered by construction (shards rank last).
        _ => {
            let held_is_lower = !held_sym.is_shard();
            if held_is_lower {
                None
            } else {
                mk(
                    LockFindingKind::Inversion,
                    format!(
                        "lock-order inversion: acquiring {} while holding {} (acquired line {})",
                        new,
                        held_sym,
                        held_line + 1
                    ),
                )
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Interprocedural pass
// ---------------------------------------------------------------------------

/// One file's walk output, as input to [`interproc`].
#[derive(Debug, Clone, Copy)]
pub struct FileLocks<'a> {
    /// Display path of the file (used in witness chains and anchors).
    pub path: &'a str,
    /// The walk output for the file.
    pub analysis: &'a Analysis,
    /// Per-line `#[cfg(test)]` mask (see [`crate::scanner::test_regions`]);
    /// definitions, calls and sites inside test regions are ignored.
    pub in_test: &'a [bool],
}

/// One frame of an interprocedural witness chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainFrame {
    /// The function this frame executes in.
    pub func: String,
    /// Display path of the file defining it.
    pub file: String,
    /// 0-based line of the site (call, acquisition, or blocking op).
    pub line: usize,
    /// What happens at the site: `"calls apply"`, `"acquires shard(0)"`,
    /// `"may block at .wait_while(…)"`.
    pub what: String,
}

impl ChainFrame {
    fn render(&self) -> String {
        format!("{} ({}:{}: {})", self.func, self.file, self.line + 1, self.what)
    }
}

/// Render a witness chain site-by-site: `push (ps.rs:12: calls apply) →
/// apply (ps.rs:40: acquires shard(0))`.
pub fn render_chain(chain: &[ChainFrame]) -> String {
    chain.iter().map(ChainFrame::render).collect::<Vec<_>>().join(" → ")
}

/// An interprocedural lock-discipline finding: a caller's held set conflicts
/// with something a callee does transitively.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterprocFinding {
    /// Same taxonomy as the per-function pass.
    pub kind: LockFindingKind,
    /// Display path of the anchor file (the outermost call site).
    pub file: String,
    /// 0-based anchor line (the call site in the outermost caller).
    pub line: usize,
    /// The outermost caller.
    pub func: String,
    /// The witness chain, outermost call first, terminal site last. A
    /// finding from the lint rule always spans ≥ 2 functions; single-frame
    /// chains only appear in the intra mode used by regression tests.
    pub chain: Vec<ChainFrame>,
    /// Human-readable explanation, ending with the rendered chain.
    pub message: String,
}

/// A function's bottom-up lock summary.
#[derive(Debug, Clone, Default)]
struct Summary {
    /// Lock classes this function may acquire transitively, each with one
    /// witness chain from the function's entry to the acquisition site.
    acquires: BTreeMap<LockSym, Vec<ChainFrame>>,
    /// Whether the function may block (condvar wait / send / recv / spawn)
    /// transitively: `(display token, is_wait, witness chain)`.
    blocks: Option<(&'static str, bool, Vec<ChainFrame>)>,
}

/// Run the interprocedural lock-order pass over the files of one crate.
///
/// Builds the call graph from the recorded definitions and call sites,
/// propagates lock summaries bottom-up over Tarjan SCCs (mutually recursive
/// functions share a fixpoint), then judges every resolved call site's held
/// set against its callee's summary. With `include_intra` the result also
/// contains single-frame findings equivalent to the per-function pass
/// (acquisition and blocking sites judged directly) — used by regression
/// tests to prove the two passes agree on intra-function chains; the lint
/// rule itself passes `false` and reports only multi-function chains.
pub fn interproc(files: &[FileLocks<'_>], include_intra: bool) -> Vec<InterprocFinding> {
    let in_test = |fi: usize, line: usize| files[fi].in_test.get(line).copied().unwrap_or(false);

    // Nodes: every non-test function definition across the files.
    let mut nodes: Vec<CallGraphNode> = Vec::new();
    // node_of[file][fn_idx] → node id.
    let mut node_of: Vec<Vec<Option<usize>>> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        let mut map = vec![None; f.analysis.fns.len()];
        for (k, d) in f.analysis.fns.iter().enumerate() {
            if in_test(fi, d.line) {
                continue;
            }
            map[k] = Some(nodes.len());
            nodes.push(CallGraphNode { file: fi, name: d.name.clone(), owner: d.owner.clone(), line: d.line });
        }
        node_of.push(map);
    }
    let mut cg = CallGraph::new(nodes);

    // Edges: resolved call sites, keeping the held set of each.
    struct Site {
        caller: usize,
        callee: usize,
        line: usize,
        held: Vec<HeldLock>,
    }
    let mut sites: Vec<Site> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        for c in &f.analysis.calls {
            let Some(k) = c.fn_idx else { continue };
            let Some(caller) = node_of[fi][k] else { continue };
            if in_test(fi, c.line) {
                continue;
            }
            if let Some(callee) = cg.resolve(caller, &c.target) {
                let id = sites.len();
                sites.push(Site { caller, callee, line: c.line, held: c.held.clone() });
                cg.add_call(caller, callee, id);
            }
        }
    }

    // Seed each node's summary with its own acquisition / blocking sites.
    let mut summaries: Vec<Summary> = vec![Summary::default(); cg.nodes.len()];
    for (fi, f) in files.iter().enumerate() {
        for a in &f.analysis.acqs {
            let Some(k) = a.fn_idx else { continue };
            let Some(nid) = node_of[fi][k] else { continue };
            if in_test(fi, a.line) {
                continue;
            }
            summaries[nid].acquires.entry(a.sym).or_insert_with(|| {
                vec![ChainFrame {
                    func: cg.nodes[nid].name.clone(),
                    file: f.path.to_string(),
                    line: a.line,
                    what: format!("acquires {}", a.sym),
                }]
            });
        }
        for b in &f.analysis.block_ops {
            let Some(k) = b.fn_idx else { continue };
            let Some(nid) = node_of[fi][k] else { continue };
            if in_test(fi, b.line) {
                continue;
            }
            if summaries[nid].blocks.is_none() {
                summaries[nid].blocks = Some((
                    b.what,
                    b.is_wait,
                    vec![ChainFrame {
                        func: cg.nodes[nid].name.clone(),
                        file: f.path.to_string(),
                        line: b.line,
                        what: format!("may block at {}", b.what),
                    }],
                ));
            }
        }
    }

    // Propagate bottom-up: `sccs()` yields components callees-first, so by
    // the time a component is processed every out-of-component callee is
    // final; within a component, iterate to the (small, monotone) fixpoint.
    let call_frame = |cg: &CallGraph, v: usize, w: usize, line: usize| ChainFrame {
        func: cg.nodes[v].name.clone(),
        file: files[cg.nodes[v].file].path.to_string(),
        line,
        what: match &cg.nodes[w].owner {
            Some(o) => format!("calls {}::{}", o, cg.nodes[w].name),
            None => format!("calls {}", cg.nodes[w].name),
        },
    };
    for comp in cg.sccs() {
        loop {
            let mut changed = false;
            for &v in &comp {
                for ei in 0..cg.out[v].len() {
                    let (w, site_id) = cg.out[v][ei];
                    let frame = call_frame(&cg, v, w, sites[site_id].line);
                    let callee_acquires = summaries[w].acquires.clone();
                    let callee_blocks = summaries[w].blocks.clone();
                    for (sym, chain) in callee_acquires {
                        if !summaries[v].acquires.contains_key(&sym) {
                            let mut c = vec![frame.clone()];
                            c.extend(chain);
                            summaries[v].acquires.insert(sym, c);
                            changed = true;
                        }
                    }
                    if summaries[v].blocks.is_none() {
                        if let Some((what, is_wait, chain)) = callee_blocks {
                            let mut c = vec![frame.clone()];
                            c.extend(chain);
                            summaries[v].blocks = Some((what, is_wait, c));
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    // Judge every resolved call site against its callee's summary.
    let mut out: Vec<InterprocFinding> = Vec::new();
    for site in &sites {
        let caller = &cg.nodes[site.caller];
        let file = files[caller.file].path.to_string();
        let frame = call_frame(&cg, site.caller, site.callee, site.line);
        let callee_sum = &summaries[site.callee];
        for h in &site.held {
            for (sym, chain) in &callee_sum.acquires {
                if let Some((kind, core)) = judge_pair(h.sym, h.line, *sym) {
                    let mut full = vec![frame.clone()];
                    full.extend(chain.iter().cloned());
                    out.push(InterprocFinding {
                        kind,
                        file: file.clone(),
                        line: site.line,
                        func: caller.name.clone(),
                        message: format!("interprocedural {core}; call chain: {}", render_chain(&full)),
                        chain: full,
                    });
                }
            }
        }
        if let Some((what, is_wait, chain)) = &callee_sum.blocks {
            if !site.held.is_empty() {
                let held: Vec<String> = site.held.iter().map(|h| format!("{} (line {})", h.sym, h.line + 1)).collect();
                let mut full = vec![frame.clone()];
                full.extend(chain.iter().cloned());
                let verb = if *is_wait {
                    format!("{what} releases only its receiver; the caller's guard stays held while parked")
                } else {
                    format!("{what} can block while the caller's guard is held")
                };
                out.push(InterprocFinding {
                    kind: if *is_wait { LockFindingKind::HeldAcrossWait } else { LockFindingKind::HeldAcrossSend },
                    file: file.clone(),
                    line: site.line,
                    func: caller.name.clone(),
                    message: format!(
                        "interprocedural {verb}: holding {}; call chain: {}",
                        held.join(", "),
                        render_chain(&full)
                    ),
                    chain: full,
                });
            }
        }
    }

    // Intra mode: replicate the per-function pass through the same engine,
    // as single-frame chains, so tests can assert the two passes agree.
    if include_intra {
        for (fi, f) in files.iter().enumerate() {
            let fn_name_of = |idx: Option<usize>| match idx {
                Some(k) => f.analysis.fns[k].name.clone(),
                None => "<top>".to_string(),
            };
            for a in &f.analysis.acqs {
                if in_test(fi, a.line) {
                    continue;
                }
                for h in &a.held {
                    if let Some((kind, core)) = judge_pair(h.sym, h.line, a.sym) {
                        let func = fn_name_of(a.fn_idx);
                        let chain = vec![ChainFrame {
                            func: func.clone(),
                            file: f.path.to_string(),
                            line: a.line,
                            what: format!("acquires {}", a.sym),
                        }];
                        out.push(InterprocFinding {
                            kind,
                            file: f.path.to_string(),
                            line: a.line,
                            func,
                            message: core,
                            chain,
                        });
                    }
                }
            }
            for b in &f.analysis.block_ops {
                if in_test(fi, b.line) || b.held.is_empty() {
                    continue;
                }
                let func = fn_name_of(b.fn_idx);
                let held: Vec<String> = b.held.iter().map(|h| format!("{} (line {})", h.sym, h.line + 1)).collect();
                out.push(InterprocFinding {
                    kind: if b.is_wait { LockFindingKind::HeldAcrossWait } else { LockFindingKind::HeldAcrossSend },
                    file: f.path.to_string(),
                    line: b.line,
                    func: func.clone(),
                    message: format!("{} while holding {}", b.what, held.join(", ")),
                    chain: vec![ChainFrame {
                        func,
                        file: f.path.to_string(),
                        line: b.line,
                        what: format!("may block at {}", b.what),
                    }],
                });
            }
        }
    }

    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// The identifier the statement currently ends with (the receiver of a
/// method call about to be scanned), if any.
fn trailing_ident(stmt: &str) -> Option<String> {
    let rev: String = stmt.chars().rev().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if rev.is_empty() || rev.chars().last().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(rev.chars().rev().collect())
}

/// A literal integer followed by `)` → `Some(i)`; anything else → `None`.
fn parse_literal_index(tail: &str) -> Option<u64> {
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    if digits.is_empty() || !tail[digits.len()..].starts_with(')') {
        return None;
    }
    digits.parse().ok()
}

/// `let [mut] ident = …` at the head of the statement → the bound name.
fn let_binding_name(stmt: &str) -> Option<String> {
    let s = stmt.trim_start();
    let s = s.strip_prefix("let ")?;
    let s = s.trim_start();
    let s = s.strip_prefix("mut ").unwrap_or(s).trim_start();
    let ident: String = s.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if ident.is_empty() {
        return None;
    }
    let after = s[ident.len()..].trim_start();
    (after.starts_with('=') || after.starts_with(':')).then_some(ident)
}

fn classify_block(stmt: &str) -> BlockKind {
    if has_kw(stmt, "fn") {
        return BlockKind::Fn;
    }
    // Checked before the loop keywords: `impl<F: for<'a> Fn(…)>` contains a
    // `for` with identifier boundaries, but the block is still an impl.
    if has_kw(stmt, "impl") {
        return BlockKind::Impl;
    }
    if has_kw(stmt, "for") || has_kw(stmt, "while") || has_kw(stmt, "loop") {
        return BlockKind::Loop;
    }
    BlockKind::Other
}

/// The identifier following the last `fn ` keyword in the header.
fn fn_name(stmt: &str) -> Option<String> {
    let mut best = None;
    let bytes = stmt.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = stmt[from..].find("fn") {
        let start = from + pos;
        let end = start + 2;
        let pre_ok = start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let post_ok = bytes.get(end).is_some_and(|b| b.is_ascii_whitespace());
        if pre_ok && post_ok {
            let name: String =
                stmt[end..].trim_start().chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if !name.is_empty() {
                best = Some(name);
            }
        }
        from = end;
    }
    best
}

/// Keyword occurrence with identifier boundaries on both sides.
fn has_kw(hay: &str, kw: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = hay[from..].find(kw) {
        let start = from + pos;
        let end = start + kw.len();
        let pre_ok = start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let post_ok = end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn locks(src: &str) -> Analysis {
        analyze(&scan(src), &[])
    }

    #[test]
    fn canonical_order_produces_edges_and_no_findings() {
        let src = "impl Ps {\n    fn apply(&self) {\n        let vt = self.lock_versions();\n        for i in 0..n {\n            let sh = self.lock_shard(i);\n        }\n    }\n}\n";
        let a = locks(src);
        assert!(a.lock_findings.is_empty(), "{:?}", a.lock_findings);
        assert_eq!(a.edges.len(), 1);
        assert_eq!(a.edges[0].from, LockSym::Versions);
        assert_eq!(a.edges[0].to, LockSym::Shard(None));
        assert_eq!(a.edges[0].func, "apply");
    }

    #[test]
    fn literal_shard_inversion_is_caught() {
        let src = "fn bad(&self) {\n    let a = self.lock_shard(1);\n    let b = self.lock_shard(0);\n}\n";
        let a = locks(src);
        assert_eq!(a.lock_findings.len(), 1);
        let f = &a.lock_findings[0];
        assert_eq!(f.kind, LockFindingKind::Inversion);
        assert_eq!(f.line, 2);
        assert_eq!(f.func, "bad");
        assert!(f.message.contains("shard(0)") && f.message.contains("shard(1)"), "{}", f.message);
    }

    #[test]
    fn shard_before_versions_is_an_inversion() {
        let src = "fn bad(&self) {\n    let sh = self.lock_shard(2);\n    let vt = self.lock_versions();\n}\n";
        let a = locks(src);
        assert_eq!(a.lock_findings.len(), 1);
        assert_eq!(a.lock_findings[0].kind, LockFindingKind::Inversion);
    }

    #[test]
    fn double_acquisition_is_caught() {
        let src = "fn bad(&self) {\n    let a = self.lock_barrier();\n    let b = self.lock_barrier();\n}\n";
        let a = locks(src);
        assert_eq!(a.lock_findings.len(), 1);
        assert_eq!(a.lock_findings[0].kind, LockFindingKind::DoubleLock);
    }

    #[test]
    fn non_literal_shard_pair_is_unordered() {
        let src = "fn bad(&self) {\n    let a = self.lock_shard(i);\n    let b = self.lock_shard(j);\n}\n";
        let a = locks(src);
        assert_eq!(a.lock_findings.len(), 1);
        assert_eq!(a.lock_findings[0].kind, LockFindingKind::Unordered);
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = "fn ok(&self) {\n    let a = self.lock_shard(3);\n    drop(a);\n    let b = self.lock_shard(0);\n}\n";
        assert!(locks(src).lock_findings.is_empty());
    }

    #[test]
    fn block_scope_releases_the_guard() {
        let src =
            "fn ok(&self) {\n    {\n        let a = self.lock_shard(3);\n    }\n    let b = self.lock_shard(0);\n}\n";
        assert!(locks(src).lock_findings.is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = "fn ok(&self) {\n    self.lock_shard(3).bump();\n    let b = self.lock_shard(0);\n}\n";
        assert!(locks(src).lock_findings.is_empty());
    }

    #[test]
    fn send_while_holding_is_caught() {
        let src = "fn bad(&self, tx: &Sender<u8>) {\n    let g = self.lock_versions();\n    tx.send(1);\n}\n";
        let a = locks(src);
        assert_eq!(a.lock_findings.len(), 1);
        assert_eq!(a.lock_findings[0].kind, LockFindingKind::HeldAcrossSend);
        assert!(a.lock_findings[0].message.contains("versions"));
    }

    #[test]
    fn spawn_while_holding_is_caught_and_send_without_guard_is_fine() {
        let bad = "fn bad(&self, s: &Scope) {\n    let g = self.lock_barrier();\n    s.spawn(|| {});\n}\n";
        assert_eq!(locks(bad).lock_findings.len(), 1);
        let ok = "fn ok(&self, tx: &Sender<u8>) {\n    tx.send(1);\n}\n";
        assert!(locks(ok).lock_findings.is_empty());
    }

    #[test]
    fn condvar_wait_on_the_only_held_guard_is_clean() {
        // The SSP gate pattern from agl-ps: park on a condvar through the
        // guard itself — release+reacquire, not held-across-block.
        let src = "fn push(&self) {\n    let mut v = self.lock_versions();\n    v.wait_while(&self.ssp_cv, |vt| vt.blocked());\n    let sh = self.lock_shard(0);\n}\n";
        let a = locks(src);
        assert!(a.lock_findings.is_empty(), "{:?}", a.lock_findings);
        // The guard survives the wait: the later shard acquisition still
        // records a versions → shard edge.
        assert_eq!(a.edges.len(), 1);
        assert_eq!(a.edges[0].from, LockSym::Versions);
    }

    #[test]
    fn condvar_wait_holding_another_guard_is_flagged() {
        let src = "fn bad(&self) {\n    let b = self.lock_barrier();\n    let v = self.lock_versions();\n    v.wait_while(&self.cv, |s| s.busy);\n}\n";
        let a = locks(src);
        assert_eq!(a.lock_findings.len(), 1, "{:?}", a.lock_findings);
        let f = &a.lock_findings[0];
        assert_eq!(f.kind, LockFindingKind::HeldAcrossWait);
        assert!(f.message.contains("barrier") && !f.message.contains("versions"), "{}", f.message);
    }

    #[test]
    fn condvar_wait_on_a_temporary_guard_is_clean() {
        let src = "fn ok(&self) {\n    self.lock_versions().wait(&self.cv);\n}\n";
        assert!(locks(src).lock_findings.is_empty());
    }

    #[test]
    fn recv_while_holding_is_caught_but_join_is_not() {
        let bad = "fn bad(&self, rx: &Receiver<u8>) {\n    let g = self.lock_versions();\n    let x = rx.recv();\n}\n";
        let a = locks(bad);
        assert_eq!(a.lock_findings.len(), 1);
        assert_eq!(a.lock_findings[0].kind, LockFindingKind::HeldAcrossSend);
        assert!(a.lock_findings[0].message.contains(".recv"));
        // `.join(` is bounded by the joinee finishing, not by this lock —
        // scoped-thread joins at scope exit are routine and not a finding.
        let ok = "fn ok(&self, h: JoinHandle<()>) {\n    let g = self.lock_versions();\n    h.join();\n}\n";
        assert!(locks(ok).lock_findings.is_empty());
    }

    #[test]
    fn raw_lock_is_untracked() {
        let src = "fn bad(&self) {\n    let g = self.state.lock().unwrap();\n    let h = lock_ignoring_poison(&self.other);\n}\n";
        let a = locks(src);
        assert_eq!(a.lock_findings.len(), 2);
        assert!(a.lock_findings.iter().all(|f| f.kind == LockFindingKind::UntrackedLock));
    }

    #[test]
    fn wrapper_definitions_are_not_call_sites() {
        let src =
            "impl Ps {\n    fn lock_shard(&self, i: usize) -> Guard {\n        self.shards[i].acquire()\n    }\n}\n";
        let a = locks(src);
        assert!(a.lock_findings.is_empty());
        assert!(a.edges.is_empty());
    }

    #[test]
    fn alloc_in_hot_loop_is_flagged_only_there() {
        let src = "fn spmm(&self) {\n    let out = Vec::new();\n    for r in rows {\n        let v = x.to_vec();\n        let c = y.clone();\n    }\n}\nfn cold(&self) {\n    for r in rows {\n        let v = x.to_vec();\n    }\n}\n";
        let a = analyze(&scan(src), &["spmm"]);
        assert_eq!(a.alloc_sites.len(), 2, "{:?}", a.alloc_sites);
        assert!(a.alloc_sites.iter().all(|s| s.func == "spmm"));
        assert_eq!(a.alloc_sites[0].pattern, ".to_vec(");
        assert_eq!(a.alloc_sites[1].pattern, ".clone(");
    }

    #[test]
    fn alloc_in_while_and_nested_blocks_is_flagged() {
        let src = "fn reduce(&self) {\n    while go {\n        if cond {\n            let s = format!(\"x\");\n        }\n    }\n}\n";
        let a = analyze(&scan(src), &["reduce"]);
        assert_eq!(a.alloc_sites.len(), 1);
        assert_eq!(a.alloc_sites[0].pattern, "format!(");
    }

    #[test]
    fn alloc_outside_loops_is_not_flagged() {
        let src = "fn reduce(&self) {\n    let buf = Vec::new();\n    let all: Vec<u32> = it.collect();\n}\n";
        let a = analyze(&scan(src), &["reduce"]);
        assert!(a.alloc_sites.is_empty(), "{:?}", a.alloc_sites);
    }

    #[test]
    fn loop_keyword_in_identifiers_does_not_open_a_loop() {
        // `for_each_row(` contains `for` only as an identifier prefix.
        let src =
            "fn reduce(&self) {\n    self.ctx.for_each_row(&csr, |r| {\n        let v = x.to_vec();\n    });\n}\n";
        let a = analyze(&scan(src), &["reduce"]);
        assert!(a.alloc_sites.is_empty(), "{:?}", a.alloc_sites);
    }

    #[test]
    fn multiline_signatures_still_name_the_fn() {
        let src =
            "fn spmm(\n    &self,\n    csr: &Csr,\n) {\n    for r in rows {\n        let v = x.to_vec();\n    }\n}\n";
        let a = analyze(&scan(src), &["spmm"]);
        assert_eq!(a.alloc_sites.len(), 1);
        assert_eq!(a.alloc_sites[0].func, "spmm");
    }
}
