//! Lexical happens-before analysis over atomics and spawn-shared state.
//!
//! The lock-order pass ([`crate::lockgraph`]) proves the *mutex* half of the
//! workspace's concurrency discipline. This module is the *atomics* half: a
//! per-file walk over the scanner's code channel that records every atomic
//! declaration (struct fields, statics, `let`-bound locals) and every
//! atomic access site — `.load(…)`, `.store(…)`, and the RMW family — with
//! its `Ordering`, the lock guards lexically held at the site, and whether
//! the site sits inside a `spawn(…)` closure. A crate-scope pass
//! ([`interproc`]) then reuses the workspace call graph to classify each
//! atomic as **thread-local** or **escaping** (captured by a spawn closure,
//! declared `static`, reachable through an `Arc<Owner>`, or accessed through
//! a receiver the lexical pass cannot resolve — conservatively treated as
//! shared), and reports:
//!
//! * **cross-thread `Relaxed`** — a `Relaxed` load/store/RMW on an escaping
//!   atomic that is not protected by a lexically held lock guard and whose
//!   enclosing function contains no `SeqCst` fence. `Relaxed` guarantees
//!   atomicity but *no ordering*: publishing data through one is the exact
//!   bug class PR 3 fixed by hand in the SSP `max_staleness` path.
//! * **mixed orderings** — the same atomic accessed with `Relaxed` at one
//!   site and `Acquire`/`Release`/`AcqRel` at another: the `Relaxed` side
//!   silently breaks the release/acquire pairing the sync side implies.
//! * **spawn write / outside read** — a non-atomic variable assigned inside
//!   a spawn closure and read after the closure with no `.join(…)` (or
//!   enclosing `thread::scope` exit) ordering the two.
//!
//! Findings in functions that run *on* a spawned thread only transitively
//! (the closure calls them) carry a site-by-site call chain, rendered like
//! the interprocedural lock findings. `// agl-lint: allow(atomics) — <why>`
//! is the audited escape hatch; fields declared as `TrackedAtomic<…>` are
//! exempt because the dynamic vector-clock tracker (`agl_ps::hb`) checks
//! those at runtime — the static/dynamic split is documented in
//! CONCURRENCY.md.
//!
//! Like the rest of the lint this is lexical, not semantic. Deliberate
//! under-approximations: an access only counts as atomic when `Ordering::`
//! appears on the same source line (a call split across lines is missed);
//! lock protection means a guard is *lexically* held at the site; escape
//! analysis sees `Arc<Owner>` mentions, spawn captures, and statics, not
//! arbitrary aliasing. Deliberate over-approximations: a receiver the walk
//! cannot resolve to a declaration is treated as escaping, so a genuinely
//! thread-local access through one needs an allow comment rather than
//! silently passing.

use crate::lockgraph::{render_chain, ChainFrame};
use crate::scanner::{impl_owner, parse_call, CallGraph, CallGraphNode, CallTarget, ScannedFile};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// What an atomic access site does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOp {
    /// `.load(…)`.
    Load,
    /// `.store(…)`.
    Store,
    /// `.swap(…)`, `.fetch_*(…)`, `.compare_exchange*(…)`, `.fetch_update(…)`.
    Rmw,
}

impl fmt::Display for AccessOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessOp::Load => write!(f, "load"),
            AccessOp::Store => write!(f, "store"),
            AccessOp::Rmw => write!(f, "RMW"),
        }
    }
}

/// The `Ordering` named at an access site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemOrder {
    /// `Ordering::Relaxed`.
    Relaxed,
    /// `Ordering::Acquire`.
    Acquire,
    /// `Ordering::Release`.
    Release,
    /// `Ordering::AcqRel`.
    AcqRel,
    /// `Ordering::SeqCst`.
    SeqCst,
}

impl MemOrder {
    /// Does this ordering create a release/acquire (or stronger) edge?
    pub fn is_sync(self) -> bool {
        !matches!(self, MemOrder::Relaxed)
    }
}

impl fmt::Display for MemOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemOrder::Relaxed => "Relaxed",
            MemOrder::Acquire => "Acquire",
            MemOrder::Release => "Release",
            MemOrder::AcqRel => "AcqRel",
            MemOrder::SeqCst => "SeqCst",
        };
        write!(f, "{s}")
    }
}

/// How an access site names its atomic, as recovered from the statement
/// text before the op token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// `self.x.…` or `a.b.x.…` — the last path segment names a field.
    Field(String),
    /// A bare identifier — a local or a static.
    Ident(String),
    /// Anything else (indexing, call results, …) — never resolved, and
    /// therefore conservatively treated as escaping.
    Unknown,
}

/// One atomic access site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessRec {
    /// Index into [`Analysis::fns`] of the enclosing function.
    pub fn_idx: Option<usize>,
    /// 0-based line of the op token.
    pub line: usize,
    /// Load, store, or RMW.
    pub op: AccessOp,
    /// The `Ordering` named on the same line.
    pub order: MemOrder,
    /// The receiver as parsed from the statement tail.
    pub recv: Recv,
    /// A lock guard was lexically held at the site.
    pub guard_held: bool,
    /// The site is lexically inside a `spawn(…)` closure.
    pub in_spawn: bool,
}

/// An atomic struct field declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDecl {
    /// The declaring struct, when the walk saw its header.
    pub owner: Option<String>,
    /// Field name.
    pub name: String,
    /// 0-based line of the declaration.
    pub line: usize,
    /// Declared as `TrackedAtomic<…>` — checked dynamically, exempt here.
    pub tracked: bool,
    /// The declared type itself contains `Arc<` (shared by construction).
    pub arc_in_decl: bool,
}

/// An atomic `static` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticDecl {
    /// Static name.
    pub name: String,
    /// 0-based line of the declaration.
    pub line: usize,
    /// Declared as `TrackedAtomic<…>`.
    pub tracked: bool,
}

/// A `let`-bound atomic local.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalDecl {
    /// Index into [`Analysis::fns`] of the declaring function.
    pub fn_idx: Option<usize>,
    /// Binding name.
    pub name: String,
    /// 0-based line of the binding.
    pub line: usize,
    /// Declared as `TrackedAtomic<…>`.
    pub tracked: bool,
    /// The binding itself sits inside a spawn closure (per-thread, so its
    /// spawn-region accesses do not make it escape).
    pub in_spawn: bool,
}

/// A function definition recorded by the walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnRec {
    /// Function name.
    pub name: String,
    /// The enclosing `impl` block's `Self` type.
    pub owner: Option<String>,
    /// 0-based line of the body's opening brace.
    pub line: usize,
    /// 0-based line of the body's closing brace.
    pub end: usize,
    /// The body contains a `fence(Ordering::SeqCst)` — sanctions `Relaxed`
    /// accesses in this function.
    pub has_fence: bool,
}

/// A call site recorded for the spawn-reachability pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Index into [`Analysis::fns`] of the calling function.
    pub fn_idx: Option<usize>,
    /// How the call names its callee.
    pub target: CallTarget,
    /// 0-based line of the call.
    pub line: usize,
    /// The call is lexically inside a `spawn(…)` closure — everything it
    /// reaches runs on the spawned thread.
    pub in_spawn: bool,
}

/// A non-atomic variable written inside a spawn closure and read after it
/// with no join on the path (finding kind (c)); resolved per file because
/// both sites are in the same function by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpawnWriteFinding {
    /// The written variable.
    pub name: String,
    /// Index into [`Analysis::fns`] of the enclosing function.
    pub fn_idx: Option<usize>,
    /// 0-based line of the write inside the closure.
    pub write_line: usize,
    /// 0-based line of the unordered read after the closure.
    pub read_line: usize,
}

/// Everything one walk produces.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Atomic struct fields.
    pub fields: Vec<FieldDecl>,
    /// Atomic statics.
    pub statics: Vec<StaticDecl>,
    /// Atomic locals.
    pub locals: Vec<LocalDecl>,
    /// Atomic access sites.
    pub accesses: Vec<AccessRec>,
    /// Function definitions (call-graph nodes).
    pub fns: Vec<FnRec>,
    /// Call sites (call-graph edges, once resolved).
    pub calls: Vec<CallSite>,
    /// Type names seen as `Arc<Ty…` anywhere in the file — escape evidence.
    pub arc_types: BTreeSet<String>,
    /// Spawn-write/outside-read findings, resolved within the file.
    pub spawn_findings: Vec<SpawnWriteFinding>,
}

const RMW_TOKENS: &[&str] = &[
    ".swap(",
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_and(",
    ".fetch_or(",
    ".fetch_xor(",
    ".fetch_max(",
    ".fetch_min(",
    ".fetch_update(",
    ".compare_exchange_weak(",
    ".compare_exchange(",
];

/// Guard-producing tokens with a leading dot (any receiver).
const GUARD_DOT: &[&str] = &[".lock()", ".read()", ".write()", ".acquire()"];
/// Guard-producing call tokens (need an identifier boundary before them).
const GUARD_FREE: &[&str] = &["lock_barrier(", "lock_versions(", "lock_shard(", "lock_ignoring_poison("];

#[derive(Clone, Copy, PartialEq)]
enum BlockKind {
    Fn,
    Impl,
    Struct,
    Spawn,
    Scope,
    Other,
}

struct Guard {
    /// `Some(ident)` for `let`-bound guards, `None` for temporaries.
    name: Option<String>,
    /// Block-stack depth at acquisition.
    depth: usize,
}

struct SpawnBlock {
    /// Block-stack depth of the closure body.
    depth: usize,
    fn_idx: Option<usize>,
    /// Index into `scopes` of the innermost enclosing `thread::scope` block.
    scope_idx: Option<usize>,
    /// `let`-bound names inside the closure — per-thread, never "shared".
    locals: BTreeSet<String>,
    /// `(name, line)` of assignments to captured variables.
    writes: Vec<(String, usize)>,
    /// 0-based line of the closing brace, once seen.
    end: Option<usize>,
}

struct ScopeBlock {
    depth: usize,
    end: Option<usize>,
}

/// Walk `scanned`'s code channel and collect the atomics facts.
pub fn analyze(scanned: &ScannedFile) -> Analysis {
    let mut out = Analysis::default();
    let mut blocks: Vec<BlockKind> = Vec::new();
    let mut fn_stack: Vec<(String, usize, usize)> = Vec::new();
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    let mut struct_stack: Vec<(String, usize)> = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut spawns: Vec<SpawnBlock> = Vec::new();
    let mut spawn_stack: Vec<usize> = Vec::new();
    let mut scopes: Vec<ScopeBlock> = Vec::new();
    let mut scope_stack: Vec<usize> = Vec::new();
    let mut stmt = String::new();
    let mut stmt_line = 0usize;

    for (lineno, line) in scanned.code.iter().enumerate() {
        // The struct context a field declaration on this line belongs to:
        // captured at line start, because the header's `{` opens mid-line.
        let struct_ctx = struct_stack.last().map(|(n, _)| n.clone());
        collect_arc_types(line, &mut out.arc_types);

        let mut p = 0usize;
        while p < line.len() {
            let rest = &line[p..];
            let c = match rest.chars().next() {
                Some(c) => c,
                None => break,
            };
            match c {
                '{' => {
                    let kind = classify_block(&stmt);
                    match kind {
                        BlockKind::Fn => {
                            if let Some(name) = fn_name(&stmt) {
                                let owner = impl_stack.last().map(|(o, _)| o.clone());
                                out.fns.push(FnRec {
                                    name: name.clone(),
                                    owner,
                                    line: lineno,
                                    end: lineno,
                                    has_fence: false,
                                });
                                fn_stack.push((name, blocks.len() + 1, out.fns.len() - 1));
                            }
                        }
                        BlockKind::Impl => {
                            if let Some(owner) = impl_owner(&stmt) {
                                impl_stack.push((owner, blocks.len() + 1));
                            }
                        }
                        BlockKind::Struct => {
                            if let Some(name) = struct_name(&stmt) {
                                struct_stack.push((name, blocks.len() + 1));
                            }
                        }
                        BlockKind::Spawn => {
                            spawns.push(SpawnBlock {
                                depth: blocks.len() + 1,
                                fn_idx: fn_stack.last().map(|(_, _, i)| *i),
                                scope_idx: scope_stack.last().copied(),
                                locals: BTreeSet::new(),
                                writes: Vec::new(),
                                end: None,
                            });
                            spawn_stack.push(spawns.len() - 1);
                        }
                        BlockKind::Scope => {
                            scopes.push(ScopeBlock { depth: blocks.len() + 1, end: None });
                            scope_stack.push(scopes.len() - 1);
                        }
                        BlockKind::Other => {}
                    }
                    blocks.push(kind);
                    guards.retain(|g| g.name.is_some());
                    stmt.clear();
                }
                '}' => {
                    let depth = blocks.len();
                    guards.retain(|g| g.depth < depth);
                    if fn_stack.last().is_some_and(|(_, d, _)| *d == depth) {
                        let (_, _, idx) = fn_stack.pop().expect("checked non-empty");
                        out.fns[idx].end = lineno;
                    }
                    if impl_stack.last().is_some_and(|(_, d)| *d == depth) {
                        impl_stack.pop();
                    }
                    if struct_stack.last().is_some_and(|(_, d)| *d == depth) {
                        struct_stack.pop();
                    }
                    if spawn_stack.last().is_some_and(|&i| spawns[i].depth == depth) {
                        let i = spawn_stack.pop().expect("checked non-empty");
                        spawns[i].end = Some(lineno);
                    }
                    if scope_stack.last().is_some_and(|&i| scopes[i].depth == depth) {
                        let i = scope_stack.pop().expect("checked non-empty");
                        scopes[i].end = Some(lineno);
                    }
                    blocks.pop();
                    stmt.clear();
                }
                ';' => {
                    end_statement(&stmt, stmt_line, &fn_stack, &spawn_stack, &mut spawns, &mut out);
                    guards.retain(|g| g.name.is_some());
                    stmt.clear();
                }
                _ => {
                    scan_tokens(rest, &stmt, lineno, &blocks, &fn_stack, &spawn_stack, &mut guards, &mut out);
                    if stmt.is_empty() && !c.is_whitespace() {
                        stmt_line = lineno;
                    }
                    stmt.push(c);
                }
            }
            p += c.len_utf8();
        }
        if let Some(ctx) = struct_ctx {
            if let Some(field) = parse_field(line, &ctx, lineno) {
                out.fields.push(field);
            }
        }
        if !stmt.is_empty() && !stmt.ends_with(' ') {
            stmt.push(' ');
        }
    }

    resolve_spawn_findings(scanned, &spawns, &scopes, &mut out);
    out
}

/// Check the tokens that can start at this position.
#[allow(clippy::too_many_arguments)]
fn scan_tokens(
    rest: &str,
    stmt: &str,
    lineno: usize,
    blocks: &[BlockKind],
    fn_stack: &[(String, usize, usize)],
    spawn_stack: &[usize],
    guards: &mut Vec<Guard>,
    out: &mut Analysis,
) {
    let fn_idx = fn_stack.last().map(|(_, _, i)| *i);
    let boundary_before = !stmt.chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
    let is_definition = stmt.trim_end().ends_with("fn") || stmt.ends_with("fn ");

    // ---- Atomic accesses -------------------------------------------------
    // An op token only counts as an atomic access when the rest of the line
    // names an `Ordering::` — that is what separates `AtomicU64::load` from
    // the dozens of non-atomic `.load(…)` APIs. Multi-line calls are a
    // documented conservative miss.
    let op = if rest.starts_with(".load(") {
        Some(AccessOp::Load)
    } else if rest.starts_with(".store(") {
        Some(AccessOp::Store)
    } else if RMW_TOKENS.iter().any(|t| rest.starts_with(t)) {
        Some(AccessOp::Rmw)
    } else {
        None
    };
    if let Some(op) = op {
        if let Some(order) = parse_order(rest) {
            out.accesses.push(AccessRec {
                fn_idx,
                line: lineno,
                op,
                order,
                recv: recv_of(stmt),
                guard_held: !guards.is_empty(),
                in_spawn: !spawn_stack.is_empty(),
            });
            return;
        }
    }

    // ---- Lock guards -----------------------------------------------------
    let takes_guard = GUARD_DOT.iter().any(|t| rest.starts_with(t))
        || (boundary_before && !is_definition && GUARD_FREE.iter().any(|t| rest.starts_with(t)));
    if takes_guard {
        guards.push(Guard { name: let_binding_name(stmt), depth: blocks.len() });
        return;
    }
    if boundary_before {
        if let Some(tail) = rest.strip_prefix("drop(") {
            let ident: String = tail.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if !ident.is_empty() {
                if let Some(pos) = guards.iter().rposition(|g| g.name.as_deref() == Some(&ident)) {
                    guards.remove(pos);
                }
            }
            return;
        }
    }

    // ---- SeqCst fences ---------------------------------------------------
    if boundary_before && rest.starts_with("fence(") && rest.contains("Ordering::SeqCst") {
        if let Some(idx) = fn_idx {
            out.fns[idx].has_fence = true;
        }
        return;
    }

    // ---- Call sites ------------------------------------------------------
    if boundary_before && !is_definition {
        if let Some(target) = parse_call(rest, stmt) {
            if !matches!(target, CallTarget::Method(_)) {
                out.calls.push(CallSite { fn_idx, target, line: lineno, in_spawn: !spawn_stack.is_empty() });
            }
        }
    }
}

/// Statement boundary: record atomic locals, and inside a spawn closure
/// classify the statement as a `let` binding or an assignment to a capture.
fn end_statement(
    stmt: &str,
    stmt_line: usize,
    fn_stack: &[(String, usize, usize)],
    spawn_stack: &[usize],
    spawns: &mut [SpawnBlock],
    out: &mut Analysis,
) {
    let s = stmt.trim_start();
    if let Some(st) = parse_static(s, stmt_line) {
        out.statics.push(st);
        return;
    }
    if let Some(name) = let_binding_name(s) {
        if s.contains("Atomic") {
            out.locals.push(LocalDecl {
                fn_idx: fn_stack.last().map(|(_, _, i)| *i),
                name: name.clone(),
                line: stmt_line,
                tracked: s.contains("TrackedAtomic"),
                in_spawn: !spawn_stack.is_empty(),
            });
        }
        if let Some(&i) = spawn_stack.last() {
            spawns[i].locals.insert(name);
        }
        return;
    }
    let Some(&i) = spawn_stack.last() else { return };
    // `*deref = …` writes go through a pointer the pass cannot name.
    if s.starts_with('*') {
        return;
    }
    let ident: String = s.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return;
    }
    let rest = s[ident.len()..].trim_start();
    let bytes = rest.as_bytes();
    let plain_assign = rest.starts_with('=') && !rest.starts_with("==") && !rest.starts_with("=>");
    let compound_assign = bytes.len() >= 2
        && matches!(bytes[0], b'+' | b'-' | b'*' | b'/' | b'%' | b'|' | b'&' | b'^')
        && bytes[1] == b'=';
    if (plain_assign || compound_assign) && !spawns[i].locals.contains(&ident) {
        spawns[i].writes.push((ident, stmt_line));
    }
}

/// After the walk: for every completed spawn block, look for reads of its
/// captured-write names between the closure's end and the join horizon (the
/// enclosing `thread::scope`'s closing brace, or the function end), clearing
/// on the first `.join(…)` on the path.
fn resolve_spawn_findings(scanned: &ScannedFile, spawns: &[SpawnBlock], scopes: &[ScopeBlock], out: &mut Analysis) {
    let last_line = scanned.n_lines();
    for sp in spawns {
        let Some(end) = sp.end else { continue };
        if sp.writes.is_empty() {
            continue;
        }
        // Reads after the enclosing scope's exit are ordered by the scope's
        // implicit join; reads after the fn end belong to someone else.
        let limit = match sp.scope_idx {
            Some(si) => scopes[si].end.unwrap_or(last_line),
            None => sp.fn_idx.map_or(last_line, |k| out.fns[k].end),
        };
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        'names: for (name, write_line) in &sp.writes {
            if !seen.insert(name.as_str()) {
                continue;
            }
            for lineno in end + 1..limit.min(last_line) {
                let code = &scanned.code[lineno];
                if code.contains(".join(") {
                    continue 'names; // the handle is joined before any read we'd flag
                }
                if let Some(col) = find_token(code, name) {
                    let after = code[col + name.len()..].trim_start();
                    let is_write = after.starts_with('=') && !after.starts_with("==") && !after.starts_with("=>");
                    if !is_write {
                        out.spawn_findings.push(SpawnWriteFinding {
                            name: name.clone(),
                            fn_idx: sp.fn_idx,
                            write_line: *write_line,
                            read_line: lineno,
                        });
                        continue 'names;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Crate-scope pass
// ---------------------------------------------------------------------------

/// One file's walk output, as input to [`interproc`].
#[derive(Debug, Clone, Copy)]
pub struct FileAtomics<'a> {
    /// Display path of the file (used in witness chains and anchors).
    pub path: &'a str,
    /// The walk output for the file.
    pub analysis: &'a Analysis,
    /// Per-line `#[cfg(test)]` mask; sites inside test regions are ignored.
    pub in_test: &'a [bool],
}

/// One atomics finding (0-based line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicFinding {
    /// Display path of the anchor file.
    pub file: String,
    /// 0-based anchor line.
    pub line: usize,
    /// Enclosing function of the anchor site.
    pub func: String,
    /// Human-readable explanation (chains rendered inline).
    pub message: String,
}

/// Identity of an atomic across the file set, for access grouping.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Key {
    Field(Option<String>, String),
    Static(String),
    Local(usize, usize, String),
    /// Unresolvable receiver — every site is its own singleton.
    Unres(usize, usize),
}

/// Why an atomic counts as escaping (rendered into the finding).
#[derive(Debug, Clone)]
enum Escape {
    No,
    Yes(String),
}

/// Run the crate-scope atomics pass over the files of a lint run.
///
/// Builds the call graph from the recorded definitions and call sites,
/// propagates **spawn-reachability** over it (a function called from inside
/// a `spawn(…)` closure runs on the spawned thread, transitively, with a
/// witness chain), resolves every access's receiver against the declared
/// atomics, classifies each atomic as thread-local or escaping, and judges
/// the access sites as documented on the module.
pub fn interproc(files: &[FileAtomics<'_>]) -> Vec<AtomicFinding> {
    let in_test = |fi: usize, line: usize| files[fi].in_test.get(line).copied().unwrap_or(false);

    // Call-graph nodes from every non-test function definition.
    let mut nodes: Vec<CallGraphNode> = Vec::new();
    let mut node_of: Vec<Vec<Option<usize>>> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        let mut map = vec![None; f.analysis.fns.len()];
        for (k, d) in f.analysis.fns.iter().enumerate() {
            if in_test(fi, d.line) {
                continue;
            }
            map[k] = Some(nodes.len());
            nodes.push(CallGraphNode { file: fi, name: d.name.clone(), owner: d.owner.clone(), line: d.line });
        }
        node_of.push(map);
    }
    let mut cg = CallGraph::new(nodes);

    // Resolved call edges; seeds are calls made from inside spawn closures.
    let mut seeds: Vec<(usize, ChainFrame)> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        for c in &f.analysis.calls {
            let Some(k) = c.fn_idx else { continue };
            let Some(caller) = node_of[fi][k] else { continue };
            if in_test(fi, c.line) {
                continue;
            }
            if let Some(callee) = cg.resolve(caller, &c.target) {
                cg.add_call(caller, callee, c.line);
                if c.in_spawn {
                    seeds.push((
                        callee,
                        ChainFrame {
                            func: cg.nodes[caller].name.clone(),
                            file: files[fi].path.to_string(),
                            line: c.line,
                            what: format!("calls {} from inside a spawn closure", cg.nodes[callee].name),
                        },
                    ));
                }
            }
        }
    }

    // Spawn-reachability: BFS from the seeds; first chain wins.
    let mut on_thread: BTreeMap<usize, Vec<ChainFrame>> = BTreeMap::new();
    let mut work: Vec<usize> = Vec::new();
    for (nid, frame) in seeds {
        if !on_thread.contains_key(&nid) {
            on_thread.insert(nid, vec![frame]);
            work.push(nid);
        }
    }
    while let Some(v) = work.pop() {
        let base = on_thread[&v].clone();
        for &(w, line) in &cg.out[v] {
            if on_thread.contains_key(&w) {
                continue;
            }
            let mut chain = base.clone();
            chain.push(ChainFrame {
                func: cg.nodes[v].name.clone(),
                file: files[cg.nodes[v].file].path.to_string(),
                line,
                what: format!("calls {}", cg.nodes[w].name),
            });
            on_thread.insert(w, chain);
            work.push(w);
        }
    }

    // Declaration tables across the file set.
    let fields: Vec<(usize, &FieldDecl)> = files
        .iter()
        .enumerate()
        .flat_map(|(fi, f)| f.analysis.fields.iter().map(move |d| (fi, d)))
        .filter(|&(fi, d)| !in_test(fi, d.line))
        .collect();
    let statics: Vec<(usize, &StaticDecl)> = files
        .iter()
        .enumerate()
        .flat_map(|(fi, f)| f.analysis.statics.iter().map(move |d| (fi, d)))
        .filter(|&(fi, d)| !in_test(fi, d.line))
        .collect();
    let arc_types: BTreeSet<&str> =
        files.iter().flat_map(|f| f.analysis.arc_types.iter().map(String::as_str)).collect();

    // Group accesses by atomic identity.
    struct Site {
        fi: usize,
        ai: usize,
    }
    let mut groups: BTreeMap<Key, Vec<Site>> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        for (ai, a) in f.analysis.accesses.iter().enumerate() {
            if in_test(fi, a.line) {
                continue;
            }
            let key = resolve_key(fi, a, f.analysis, &fields, &statics);
            groups.entry(key).or_default().push(Site { fi, ai });
        }
    }

    let mut out: Vec<AtomicFinding> = Vec::new();
    for (key, sites) in &groups {
        let access = |s: &Site| &files[s.fi].analysis.accesses[s.ai];
        let any_in_spawn = sites.iter().any(|s| access(s).in_spawn);
        let any_on_thread = sites
            .iter()
            .any(|s| access(s).fn_idx.and_then(|k| node_of[s.fi][k]).is_some_and(|n| on_thread.contains_key(&n)));

        // Escape classification + display name + tracked exemption.
        let (name, tracked, escape) = classify(key, files, &fields, &statics, &arc_types, any_in_spawn, any_on_thread);
        if tracked {
            continue; // TrackedAtomic — the dynamic vector-clock tracker owns it
        }
        let Escape::Yes(why) = escape else { continue };

        // (a) cross-thread Relaxed without a lock, fence, or sync ordering.
        for s in sites {
            let a = access(s);
            let sanctioned =
                a.guard_held || a.order.is_sync() || a.fn_idx.is_some_and(|k| files[s.fi].analysis.fns[k].has_fence);
            if sanctioned {
                continue;
            }
            let func = fn_name_of(files[s.fi].analysis, a.fn_idx);
            let mut message = format!(
                "Relaxed {} on cross-thread atomic `{name}` ({why}) with no acquire/release edge, \
                 lock, or SeqCst fence ordering it",
                a.op
            );
            if let Some(nid) = a.fn_idx.and_then(|k| node_of[s.fi][k]) {
                if let Some(chain) = on_thread.get(&nid) {
                    let mut full = chain.clone();
                    full.push(ChainFrame {
                        func: func.clone(),
                        file: files[s.fi].path.to_string(),
                        line: a.line,
                        what: format!("Relaxed {} on `{name}`", a.op),
                    });
                    message.push_str(&format!("; call chain: {}", render_chain(&full)));
                }
            }
            out.push(AtomicFinding { file: files[s.fi].path.to_string(), line: a.line, func, message });
        }

        // (b) mixed orderings on one atomic: a Relaxed site undermines the
        // release/acquire pairing the sync sites imply. One finding per
        // atomic, anchored at the first Relaxed site.
        if matches!(key, Key::Unres(..)) {
            continue; // unresolved receivers never pair up
        }
        let sync_site = sites.iter().find(|s| access(s).order.is_sync());
        let relaxed_site = sites.iter().find(|s| access(s).order == MemOrder::Relaxed);
        if let (Some(r), Some(y)) = (relaxed_site, sync_site) {
            let (ra, ya) = (access(r), access(y));
            out.push(AtomicFinding {
                file: files[r.fi].path.to_string(),
                line: ra.line,
                func: fn_name_of(files[r.fi].analysis, ra.fn_idx),
                message: format!(
                    "mixed memory orderings on atomic `{name}`: Relaxed {} here, but {} {} at {}:{} \
                     expects a release/acquire pairing this side does not provide",
                    ra.op,
                    ya.order,
                    ya.op,
                    files[y.fi].path,
                    ya.line + 1
                ),
            });
        }
    }

    // (c) non-atomic spawn write / outside read, resolved per file.
    for (fi, f) in files.iter().enumerate() {
        for sf in &f.analysis.spawn_findings {
            if in_test(fi, sf.write_line) {
                continue;
            }
            out.push(AtomicFinding {
                file: f.path.to_string(),
                line: sf.write_line,
                func: fn_name_of(f.analysis, sf.fn_idx),
                message: format!(
                    "non-atomic `{}` is written here inside a spawn closure and read at line {} \
                     with no join or lock ordering the two; make it atomic, join the handle \
                     first, or guard both sides",
                    sf.name,
                    sf.read_line + 1
                ),
            });
        }
    }

    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

fn fn_name_of(analysis: &Analysis, fn_idx: Option<usize>) -> String {
    fn_idx.map_or_else(|| "<top>".to_string(), |k| analysis.fns[k].name.clone())
}

/// Resolve an access's receiver to an atomic identity.
fn resolve_key(
    fi: usize,
    a: &AccessRec,
    analysis: &Analysis,
    fields: &[(usize, &FieldDecl)],
    statics: &[(usize, &StaticDecl)],
) -> Key {
    let singleton = || Key::Unres(fi, a.line);
    match &a.recv {
        Recv::Unknown => singleton(),
        Recv::Field(name) => {
            let owner = a.fn_idx.and_then(|k| analysis.fns[k].owner.clone());
            let matches: Vec<&FieldDecl> = fields.iter().map(|&(_, d)| d).filter(|d| d.name == *name).collect();
            // Prefer the access's own impl owner, then a unique by-name match
            // (covers paths like `self.tracker.next_token`).
            if let Some(d) = matches.iter().find(|d| d.owner.is_some() && d.owner == owner) {
                Key::Field(d.owner.clone(), d.name.clone())
            } else if matches.len() == 1 {
                Key::Field(matches[0].owner.clone(), matches[0].name.clone())
            } else {
                singleton()
            }
        }
        Recv::Ident(name) => {
            if analysis.locals.iter().any(|l| l.name == *name && l.fn_idx == a.fn_idx) {
                Key::Local(fi, a.fn_idx.unwrap_or(usize::MAX), name.clone())
            } else {
                let matches: Vec<&StaticDecl> = statics.iter().map(|&(_, d)| d).filter(|d| d.name == *name).collect();
                if matches.len() == 1 {
                    Key::Static(name.clone())
                } else {
                    singleton()
                }
            }
        }
    }
}

/// Display name, tracked exemption, and escape verdict for one identity.
fn classify(
    key: &Key,
    files: &[FileAtomics<'_>],
    fields: &[(usize, &FieldDecl)],
    statics: &[(usize, &StaticDecl)],
    arc_types: &BTreeSet<&str>,
    any_in_spawn: bool,
    any_on_thread: bool,
) -> (String, bool, Escape) {
    match key {
        Key::Unres(..) => (
            "<unresolved receiver>".to_string(),
            false,
            Escape::Yes("receiver not resolvable to a declaration; conservatively treated as shared".to_string()),
        ),
        Key::Static(name) => {
            let tracked = statics.iter().any(|(_, d)| d.name == *name && d.tracked);
            (name.clone(), tracked, Escape::Yes("a static is reachable from every thread".to_string()))
        }
        Key::Field(owner, name) => {
            let decl = fields.iter().map(|&(_, d)| d).find(|d| d.owner == *owner && d.name == *name);
            let tracked = decl.is_some_and(|d| d.tracked);
            let display = match owner {
                Some(o) => format!("{o}::{name}"),
                None => name.clone(),
            };
            let escape = if decl.is_some_and(|d| d.arc_in_decl) {
                Escape::Yes("declared behind an Arc".to_string())
            } else if let Some(o) = owner.as_deref().filter(|o| arc_types.contains(o)) {
                Escape::Yes(format!("its owner is shared via Arc<{o}>"))
            } else if any_in_spawn {
                Escape::Yes("accessed inside a spawn closure".to_string())
            } else if any_on_thread {
                Escape::Yes("accessed by a function that runs on a spawned thread".to_string())
            } else {
                Escape::No
            };
            (display, tracked, escape)
        }
        Key::Local(fi, fk, name) => {
            let decl =
                files[*fi].analysis.locals.iter().find(|l| l.name == *name && l.fn_idx.unwrap_or(usize::MAX) == *fk);
            let tracked = decl.is_some_and(|l| l.tracked);
            let escape = if decl.is_some_and(|l| !l.in_spawn) && any_in_spawn {
                Escape::Yes("captured by a spawn closure".to_string())
            } else {
                Escape::No
            };
            (name.clone(), tracked, escape)
        }
    }
}

// ---------------------------------------------------------------------------
// Lexical helpers
// ---------------------------------------------------------------------------

/// Parse the first `Ordering::<X>` on the rest of the line.
fn parse_order(rest: &str) -> Option<MemOrder> {
    let pos = rest.find("Ordering::")?;
    let tail = &rest[pos + "Ordering::".len()..];
    for (name, ord) in [
        ("Relaxed", MemOrder::Relaxed),
        ("Acquire", MemOrder::Acquire),
        ("Release", MemOrder::Release),
        ("AcqRel", MemOrder::AcqRel),
        ("SeqCst", MemOrder::SeqCst),
    ] {
        if tail.starts_with(name) {
            return Some(ord);
        }
    }
    None
}

/// The receiver of the access about to be scanned, from the statement tail.
fn recv_of(stmt: &str) -> Recv {
    let tail: String = stmt.chars().rev().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if tail.is_empty() || tail.chars().last().is_some_and(|c| c.is_ascii_digit()) {
        return Recv::Unknown;
    }
    let ident: String = tail.chars().rev().collect();
    let before = stmt[..stmt.len() - ident.len()].trim_end();
    if before.ends_with('.') {
        Recv::Field(ident)
    } else if ident == "self" {
        Recv::Unknown
    } else {
        Recv::Ident(ident)
    }
}

/// `let [mut] ident = …` / `let ident: …` at the head of the statement.
fn let_binding_name(stmt: &str) -> Option<String> {
    let s = stmt.trim_start();
    let s = s.strip_prefix("let ")?;
    let s = s.trim_start();
    let s = s.strip_prefix("mut ").unwrap_or(s).trim_start();
    let ident: String = s.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if ident.is_empty() {
        return None;
    }
    let after = s[ident.len()..].trim_start();
    (after.starts_with('=') || after.starts_with(':')).then_some(ident)
}

/// `static NAME: …Atomic… = …` at the head of the statement.
fn parse_static(s: &str, line: usize) -> Option<StaticDecl> {
    let s = strip_vis(s.trim_start());
    let s = s.strip_prefix("static ")?.trim_start();
    let name: String = s.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if name.is_empty() {
        return None;
    }
    let rest = &s[name.len()..];
    (rest.trim_start().starts_with(':') && rest.contains("Atomic")).then(|| StaticDecl {
        name,
        line,
        tracked: rest.contains("TrackedAtomic"),
    })
}

/// A struct field `name: …Atomic…` on one source line.
fn parse_field(code: &str, owner: &str, line: usize) -> Option<FieldDecl> {
    let t = strip_vis(code.trim());
    let first = t.chars().next()?;
    if !(first.is_ascii_alphabetic() || first == '_') {
        return None;
    }
    let name: String = t.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    let rest = t[name.len()..].trim_start();
    if !rest.starts_with(':') || !rest.contains("Atomic") {
        return None;
    }
    Some(FieldDecl {
        owner: Some(owner.to_string()),
        name,
        line,
        tracked: rest.contains("TrackedAtomic"),
        arc_in_decl: rest.contains("Arc<"),
    })
}

/// Strip a leading `pub` / `pub(crate)` / `pub(in …)` visibility.
fn strip_vis(s: &str) -> &str {
    let Some(rest) = s.strip_prefix("pub") else { return s };
    let rest = rest.trim_start();
    if let Some(tail) = rest.strip_prefix('(') {
        if let Some(close) = tail.find(')') {
            return tail[close + 1..].trim_start();
        }
    }
    rest
}

/// Record each `Arc<Ty` occurrence's type name.
fn collect_arc_types(code: &str, out: &mut BTreeSet<String>) {
    let mut from = 0usize;
    while let Some(pos) = code[from..].find("Arc<") {
        let start = from + pos + "Arc<".len();
        let ty: String = code[start..].chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        if !ty.is_empty() {
            out.insert(ty);
        }
        from = start;
    }
}

fn classify_block(stmt: &str) -> BlockKind {
    if has_kw(stmt, "fn") {
        return BlockKind::Fn;
    }
    if has_kw(stmt, "impl") {
        return BlockKind::Impl;
    }
    if has_kw(stmt, "struct") {
        return BlockKind::Struct;
    }
    // Spawn before Scope before loops: `scope.spawn(|| loop {` opens the
    // closure body, which is what runs on the new thread.
    if has_call_token(stmt, "spawn(") {
        return BlockKind::Spawn;
    }
    if has_call_token(stmt, "scope(") {
        return BlockKind::Scope;
    }
    BlockKind::Other
}

/// The identifier following `struct` in the header.
fn struct_name(stmt: &str) -> Option<String> {
    let pos = find_token(stmt, "struct")?;
    let after = stmt[pos + "struct".len()..].trim_start();
    let name: String = after.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    (!name.is_empty()).then_some(name)
}

/// The identifier following the last `fn ` keyword in the header.
fn fn_name(stmt: &str) -> Option<String> {
    let mut best = None;
    let bytes = stmt.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = stmt[from..].find("fn") {
        let start = from + pos;
        let end = start + 2;
        let pre_ok = start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let post_ok = bytes.get(end).is_some_and(|b| b.is_ascii_whitespace());
        if pre_ok && post_ok {
            let name: String =
                stmt[end..].trim_start().chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if !name.is_empty() {
                best = Some(name);
            }
        }
        from = end;
    }
    best
}

/// Keyword occurrence with identifier boundaries on both sides.
fn has_kw(hay: &str, kw: &str) -> bool {
    find_token(hay, kw).is_some()
}

/// `token(`-style occurrence with an identifier boundary before it (so
/// `respawn(` does not count as `spawn(`). The token itself ends with `(`,
/// which provides the right boundary.
fn has_call_token(hay: &str, token: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = hay[from..].find(token) {
        let start = from + pos;
        let pre_ok = start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        if pre_ok {
            return true;
        }
        from = start + token.len();
    }
    false
}

/// First occurrence of `needle` in `hay` with identifier boundaries.
fn find_token(hay: &str, needle: &str) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let pre_ok = start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let post_ok = end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if pre_ok && post_ok {
            return Some(start);
        }
        from = end;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::{scan, test_regions};

    fn findings(src: &str) -> Vec<AtomicFinding> {
        findings_multi(&[("crates/x/src/a.rs", src)])
    }

    fn findings_multi(files: &[(&str, &str)]) -> Vec<AtomicFinding> {
        let scanned: Vec<ScannedFile> = files.iter().map(|(_, s)| scan(s)).collect();
        let analyses: Vec<Analysis> = scanned.iter().map(analyze).collect();
        let masks: Vec<Vec<bool>> = scanned.iter().map(test_regions).collect();
        let fa: Vec<FileAtomics> = files
            .iter()
            .zip(&analyses)
            .zip(&masks)
            .map(|(((p, _), a), m)| FileAtomics { path: p, analysis: a, in_test: m })
            .collect();
        interproc(&fa)
    }

    #[test]
    fn relaxed_store_in_spawn_closure_flagged() {
        let src = "fn f(flag: &std::sync::atomic::AtomicU64) {\n    std::thread::scope(|s| {\n        s.spawn(|| {\n            flag.store(1, Ordering::Relaxed);\n        });\n    });\n}\n";
        let d = findings(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("Relaxed store"), "{}", d[0].message);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn non_escaping_local_atomic_clean() {
        let src = "fn f() -> u64 {\n    let n = std::sync::atomic::AtomicU64::new(0);\n    n.fetch_add(1, Ordering::Relaxed);\n    n.load(Ordering::Relaxed)\n}\n";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn local_captured_by_spawn_flagged() {
        let src = "fn f() {\n    let n = std::sync::atomic::AtomicUsize::new(0);\n    std::thread::scope(|s| {\n        s.spawn(|| {\n            n.fetch_add(1, Ordering::Relaxed);\n        });\n    });\n}\n";
        let d = findings(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("captured by a spawn closure"), "{}", d[0].message);
    }

    #[test]
    fn lock_guard_sanctions_relaxed() {
        let src = "impl S {\n    fn f(&self) {\n        let g = self.state.lock();\n        self.hits.fetch_add(1, Ordering::Relaxed);\n        drop(g);\n    }\n}\nstruct S {\n    hits: Arc<AtomicU64>,\n}\n";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn arc_field_relaxed_flagged_without_guard() {
        let src = "impl S {\n    fn f(&self) {\n        self.hits.fetch_add(1, Ordering::Relaxed);\n    }\n}\nstruct S {\n    hits: Arc<AtomicU64>,\n}\n";
        let d = findings(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("S::hits"), "{}", d[0].message);
    }

    #[test]
    fn seqcst_fence_sanctions_relaxed() {
        let src = "impl S {\n    fn f(&self) {\n        self.hits.fetch_add(1, Ordering::Relaxed);\n        std::sync::atomic::fence(Ordering::SeqCst);\n    }\n}\nstruct S {\n    hits: Arc<AtomicU64>,\n}\n";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn tracked_atomic_field_exempt() {
        let src = "impl S {\n    fn f(&self) {\n        self.hits.fetch_add(1, Ordering::Relaxed);\n    }\n}\nstruct S {\n    hits: TrackedAtomic<Arc<AtomicU64>>,\n}\n";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn mixed_orderings_flagged_even_under_lock() {
        let src = "impl S {\n    fn w(&self) {\n        let g = self.state.lock();\n        self.seq.store(1, Ordering::Relaxed);\n    }\n    fn r(&self) -> u64 {\n        self.seq.load(Ordering::Acquire)\n    }\n}\nstruct S {\n    seq: Arc<AtomicU64>,\n}\n";
        let d = findings(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("mixed memory orderings"), "{}", d[0].message);
        assert!(d[0].message.contains("Acquire load"), "{}", d[0].message);
    }

    #[test]
    fn spawn_write_then_outside_read_flagged() {
        let src = "fn f() {\n    let mut done = false;\n    std::thread::scope(|s| {\n        s.spawn(|| {\n            done = true;\n        });\n        assert!(done);\n    });\n}\n";
        let d = findings(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("non-atomic `done`"), "{}", d[0].message);
    }

    #[test]
    fn scope_exit_joins_spawn_writes() {
        let src = "fn f() {\n    let mut done = false;\n    std::thread::scope(|s| {\n        s.spawn(|| {\n            done = true;\n        });\n    });\n    assert!(done);\n}\n";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn interproc_chain_from_spawn_closure() {
        let src = "impl S {\n    fn run(&self) {\n        std::thread::scope(|s| {\n            s.spawn(|| {\n                self.tick();\n            });\n        });\n    }\n    fn tick(&self) {\n        self.hits.fetch_add(1, Ordering::Relaxed);\n    }\n}\nstruct S {\n    hits: AtomicU64,\n}\n";
        let d = findings(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("call chain"), "{}", d[0].message);
        assert!(d[0].message.contains("calls tick from inside a spawn closure"), "{}", d[0].message);
        assert_eq!(d[0].func, "tick");
    }

    #[test]
    fn test_regions_masked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    static N: AtomicU64 = AtomicU64::new(0);\n    fn t() {\n        N.store(1, Ordering::Relaxed);\n    }\n}\n";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn static_relaxed_flagged_and_sync_clean() {
        let src = "static N: AtomicU64 = AtomicU64::new(0);\nfn bump() {\n    N.fetch_add(1, Ordering::Relaxed);\n}\nfn publish() {\n    N.store(1, Ordering::Release);\n}\n";
        let d = findings(src);
        // One (a) finding for the Relaxed RMW and one (b) mixed-orderings
        // finding (Relaxed + Release on the same atomic).
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("reachable from every thread"), "{}", d[0].message);
    }

    #[test]
    fn non_atomic_load_api_not_an_access() {
        let src = "fn f(m: &Model) {\n    let w = m.load(path);\n    let _ = w;\n}\n";
        let scanned = scan(src);
        assert!(analyze(&scanned).accesses.is_empty());
    }
}
