//! Integration tests of the dynamic vector-clock race detector: a planted
//! race on a [`TrackedAtomic`] must abort a debug run naming both sites,
//! while every sanctioned ordering shape — spawn/join handoff, lock
//! protection, release/acquire pairing — must stay silent.
//!
//! Debug-only: release builds compile the tracker to a passthrough.
#![cfg(debug_assertions)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

use agl_ps::locks::{LockClass, LockOrderTracker, TrackedMutex};
use agl_ps::{Handoff, JoinPool, TrackedAtomic};

#[test]
fn planted_race_aborts_naming_both_sites() {
    let flag = TrackedAtomic::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        s.spawn(|| {
            flag.store(7, Ordering::Relaxed);
        })
        .join()
        .expect("writer thread must not panic");
    });
    // The OS-level join really does order the store before the load, but
    // no *tracked* edge records that — the race is latent (remove the join
    // and the two sites run concurrently). The tracker must reject it the
    // same way the lock-order tracker rejects latent lock cycles.
    let err = catch_unwind(AssertUnwindSafe(|| {
        flag.load(Ordering::Relaxed);
    }))
    .expect_err("unordered plain load after plain store must abort");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("happens-before race"), "unexpected message: {msg}");
    assert!(msg.matches("hb_race.rs").count() >= 2, "both the store and the load site must be named: {msg}");
}

#[test]
fn handoff_and_join_pool_make_the_same_shape_silent() {
    let flag = TrackedAtomic::new(AtomicU64::new(0));
    let pool = JoinPool::new();
    let handoff = Handoff::fork();
    std::thread::scope(|s| {
        let flag = &flag;
        let pool = &pool;
        s.spawn(move || {
            handoff.adopt();
            let _depart = pool.depart_guard();
            flag.store(7, Ordering::Relaxed);
        });
    });
    pool.absorb();
    assert_eq!(flag.load(Ordering::Relaxed), 7);
}

#[test]
fn tracked_mutex_protection_is_silent() {
    // The lock clock carries the happens-before edge: both threads bracket
    // their plain accesses with the same TrackedMutex, so writer and
    // reader are ordered through acquire/release even though the atomic
    // traffic itself is Relaxed.
    let tracker = LockOrderTracker::new();
    let lock = TrackedMutex::new(&tracker, LockClass::Versions, ());
    let flag = TrackedAtomic::new(AtomicU64::new(0));
    let handoff = Handoff::fork();
    std::thread::scope(|s| {
        let lock = &lock;
        let flag = &flag;
        s.spawn(move || {
            handoff.adopt();
            let g = lock.acquire();
            flag.store(7, Ordering::Relaxed);
            drop(g);
        })
        .join()
        .expect("writer thread must not panic");
    });
    let g = lock.acquire();
    assert_eq!(flag.load(Ordering::Relaxed), 7);
    drop(g);
}

#[test]
fn release_acquire_pairing_is_silent() {
    let flag = TrackedAtomic::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        s.spawn(|| {
            flag.store(7, Ordering::Release);
        });
    });
    // The acquire load joins the atomic's sync clock, ordering the later
    // Relaxed load after the release store.
    assert_eq!(flag.load(Ordering::Acquire), 7);
    assert_eq!(flag.load(Ordering::Relaxed), 7);
}

#[test]
fn relaxed_counters_stay_silent_under_contention() {
    // The parameter-server statistics idiom end to end: many threads
    // bumping a shared Relaxed counter, totals read after the scope join.
    let hits = std::sync::Arc::new(TrackedAtomic::new(AtomicU64::new(0)));
    std::thread::scope(|s| {
        for _ in 0..8 {
            let hits = std::sync::Arc::clone(&hits);
            s.spawn(move || {
                for _ in 0..250 {
                    hits.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(hits.load(Ordering::Relaxed), 2000);
}
