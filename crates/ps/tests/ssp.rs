//! SSP (stale-synchronous parallel) property tests against the raw
//! parameter server: the staleness bound must hold for every (workers,
//! slack, delay) combination, the histograms must account for every push,
//! and the gates must never deadlock — including the degenerate slack-0
//! case, which normalizes to the sync barrier.

use agl_nn::{Optimizer, Sgd};
use agl_ps::{run_workers, Consistency, ParameterServer};
use agl_tensor::rng::Rng as _;
use agl_tensor::seeded_rng;
use std::sync::Arc;
use std::time::Duration;

fn sgd() -> Box<dyn Optimizer> {
    Box::new(Sgd::new(0.05))
}

/// Drive `n_workers` through `steps` pull-compute-push iterations with a
/// seeded per-worker jitter (worker 0 is additionally slowed by `delay_us`
/// per step) and return the final stats.
fn drive(n_workers: usize, consistency: Consistency, steps: usize, delay_us: u64, seed: u64) -> agl_ps::PsStats {
    let ps = Arc::new(ParameterServer::new(vec![0.0; 16], 4, n_workers, consistency, sgd));
    run_workers(&ps, n_workers, |w, server| {
        let mut rng = seeded_rng(seed ^ (w as u64).wrapping_mul(0x9e37_79b9));
        for _ in 0..steps {
            let (params, _version) = server.pull_with_version(w);
            // Seeded jitter models compute-time variance; worker 0 is the
            // injected straggler.
            let jitter = (rng.gen_range(0.0..1.0f32) * 50.0) as u64;
            let us = jitter + if w == 0 { delay_us } else { 0 };
            if us > 0 {
                std::thread::sleep(Duration::from_micros(us));
            }
            let grads: Vec<f32> = params.iter().map(|p| 0.1 - 0.01 * p).collect();
            server.push(w, &grads);
        }
    });
    ps.stats()
}

#[test]
fn staleness_bounded_across_workers_slack_and_delays() {
    for &n_workers in &[1usize, 2, 4, 8] {
        for &slack in &[0u64, 1, 4] {
            for &delay_us in &[0u64, 400] {
                let st = drive(n_workers, Consistency::Ssp { slack }, 12, delay_us, 0xA51 + slack);
                // Slack 0 normalizes to the sync barrier: one averaged
                // step per round instead of one per push.
                let want_steps = if slack == 0 { 12 } else { 12 * n_workers as u64 };
                assert_eq!(
                    st.steps, want_steps,
                    "workers={n_workers} slack={slack} delay={delay_us}: every push must land"
                );
                assert!(
                    st.max_staleness <= slack,
                    "workers={n_workers} slack={slack} delay={delay_us}: staleness {} exceeds bound",
                    st.max_staleness
                );
                for (w, ws) in st.workers.iter().enumerate() {
                    assert_eq!(ws.pushes, 12, "worker {w}");
                    assert_eq!(
                        ws.staleness_hist.iter().sum::<u64>(),
                        12,
                        "worker {w}: histogram must account for every push"
                    );
                    assert_eq!(
                        *ws.staleness_hist.last().unwrap(),
                        0,
                        "worker {w}: SSP/sync overflow bucket must stay empty"
                    );
                }
            }
        }
    }
}

#[test]
fn slack_zero_degrades_to_sync_and_never_hangs() {
    // Completion *is* the assertion: slack 0 must behave as the barrier
    // (every worker's push joins a full round) rather than an SSP gate that
    // could self-block.
    let st = drive(4, Consistency::Ssp { slack: 0 }, 10, 300, 7);
    assert_eq!(st.steps, 10, "slack 0 = sync: one averaged step per round");
    assert_eq!(st.max_staleness, 0);
    assert_eq!(st.ssp_waits, 0, "barrier rounds are not SSP gate waits");
}

#[test]
fn slack_zero_parameters_bit_match_explicit_sync() {
    // Same seeds, same worker count: the normalized mode must take the
    // identical code path, so the resulting parameters agree bit for bit.
    let run = |mode: Consistency| {
        let ps = Arc::new(ParameterServer::new(vec![0.5; 8], 2, 3, mode, sgd));
        run_workers(&ps, 3, |w, server| {
            let mut rng = seeded_rng(11 + w as u64);
            for _ in 0..6 {
                let params = server.pull(w);
                let noise = rng.gen_range(-0.1..0.1f32);
                let grads: Vec<f32> = params.iter().map(|p| p - 1.0 + noise).collect();
                server.push(w, &grads);
            }
        });
        ps.snapshot()
    };
    let a = run(Consistency::Ssp { slack: 0 });
    let b = run(Consistency::Sync);
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&a), bits(&b));
}

#[test]
fn gate_waits_are_observed_under_contention() {
    // A hard straggler at slack 1 forces the fast workers into the pull or
    // apply gate; the wait counters must show it, and wall-clock wait time
    // must be non-trivial.
    let st = drive(4, Consistency::Ssp { slack: 1 }, 8, 2_000, 99);
    assert!(st.ssp_waits > 0, "expected gate waits under a 2ms straggler: {st:?}");
    assert!(st.ssp_wait_nanos > 0);
    assert!(st.max_staleness <= 1);
}

#[test]
fn async_staleness_is_unbounded_but_recorded() {
    // Async is the control: same drive, no gate — the histograms must still
    // account for every push, and under a straggler the observed staleness
    // routinely exceeds what SSP would admit.
    let st = drive(4, Consistency::Async, 12, 400, 3);
    assert_eq!(st.steps, 48);
    assert_eq!(st.ssp_waits, 0, "async never blocks");
    for ws in &st.workers {
        assert_eq!(ws.staleness_hist.iter().sum::<u64>(), 12);
    }
}

#[test]
fn ssp_converges_on_a_shared_quadratic() {
    // End-to-end sanity: bounded staleness must not break optimization.
    // Each worker descends f(x) = ||x - 3||² through the server.
    let ps = Arc::new(ParameterServer::new(vec![0.0; 4], 2, 4, Consistency::Ssp { slack: 2 }, sgd));
    run_workers(&ps, 4, |w, server| {
        for _ in 0..300 {
            let x = server.pull(w);
            let g: Vec<f32> = x.iter().map(|&xi| 2.0 * (xi - 3.0)).collect();
            server.push(w, &g);
        }
    });
    for xi in ps.snapshot() {
        assert!((xi - 3.0).abs() < 1e-2, "converged to {xi}");
    }
    assert!(ps.stats().max_staleness <= 2);
}
