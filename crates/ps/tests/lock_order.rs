//! Lock-order tracker integration tests: a deliberately induced
//! acquisition-order inversion must abort with both sites named, and the
//! real parameter-server paths — including the SSP condvar waits — must
//! exercise only canonical-order edges.

#![cfg(debug_assertions)]

use agl_nn::{Optimizer, Sgd};
use agl_ps::{Consistency, LockClass, LockOrderTracker, ParameterServer, TrackedMutex};
use std::sync::Arc;

fn sgd() -> Box<dyn Optimizer> {
    Box::new(Sgd::new(0.1))
}

#[test]
fn induced_inversion_reports_cycle_with_both_sites() {
    let tracker = LockOrderTracker::new();
    let lo = TrackedMutex::new(&tracker, LockClass::Shard(0), ());
    let hi = TrackedMutex::new(&tracker, LockClass::Shard(3), ());

    // Establish the canonical edge shard(0) → shard(3)...
    {
        let _a = lo.acquire();
        let _b = hi.acquire();
    }
    // ...then take the opposite order. No thread is concurrently inside the
    // critical sections — the deadlock is latent, not manifest — yet the
    // tracker must still reject it from the observed-edge graph alone.
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _b = hi.acquire();
        let _a = lo.acquire();
    }))
    .expect_err("inverted acquisition order must panic in debug builds");

    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("lock-order inversion"), "unexpected report: {msg}");
    assert!(msg.contains("shard(0)"), "cycle must name the low shard: {msg}");
    assert!(msg.contains("shard(3)"), "cycle must name the high shard: {msg}");
    // Both sides of the cycle carry their acquisition sites: the inverted
    // acquisition in this test fn plus the previously observed canonical
    // chain — all located in this file.
    let sites = msg.matches("lock_order.rs").count();
    assert!(sites >= 2, "expected both lock sites in the report, got {sites}: {msg}");
}

/// The split-function inversion shape: the "push"-like caller holds one
/// lock while a callee acquires a lower-ranked one. Neither function
/// misorders anything lexically — this is exactly the chain the static
/// `lock-order/interproc` rule proves from the call graph, and this test
/// pins the dynamic tracker to the same verdict at runtime.
#[test]
fn split_function_inversion_also_aborts_the_dynamic_tracker() {
    fn caller(hi: &TrackedMutex<()>, lo: &TrackedMutex<()>) {
        let _held = hi.acquire();
        callee(lo);
    }
    fn callee(lo: &TrackedMutex<()>) {
        let _g = lo.acquire();
    }

    let tracker = LockOrderTracker::new();
    let lo = TrackedMutex::new(&tracker, LockClass::Shard(0), ());
    let hi = TrackedMutex::new(&tracker, LockClass::Shard(3), ());

    // Establish the canonical edge shard(0) → shard(3), then run the
    // inverted chain split across two functions.
    {
        let _a = lo.acquire();
        let _b = hi.acquire();
    }
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| caller(&hi, &lo)))
        .expect_err("interprocedural inversion must abort the tracker in debug builds");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("lock-order inversion"), "unexpected report: {msg}");
    assert!(msg.contains("shard(0)") && msg.contains("shard(3)"), "{msg}");
}

fn rank(name: &str) -> u64 {
    match name {
        "barrier" => 0,
        "versions" => 1,
        s => {
            let idx: u64 = s.trim_start_matches("shard(").trim_end_matches(')').parse().unwrap();
            2 + idx
        }
    }
}

#[test]
fn sync_training_exercises_only_canonical_edges() {
    // A real sync round: 3 workers push, the last applies while holding the
    // barrier → versions → shards chain. Every observed edge must point
    // "forward" in the canonical order, and the full chain must appear.
    let ps = Arc::new(ParameterServer::new(vec![0.0; 8], 4, 3, Consistency::Sync, sgd));
    std::thread::scope(|s| {
        for w in 0..3usize {
            let ps = ps.clone();
            s.spawn(move || {
                for _ in 0..4 {
                    let (_params, _v) = ps.pull_with_version(w);
                    ps.push(w, &[0.5; 8]);
                }
            });
        }
    });

    let edges = ps.observed_lock_edges();
    assert!(!edges.is_empty(), "debug builds must record acquisition edges");
    // The shard sweep holds one shard at a time, so edges fan out from the
    // barrier/version locks into every shard; no shard → shard edge exists.
    let has = |a: &str, b: &str| edges.iter().any(|(x, y)| x == a && y == b);
    assert!(has("barrier", "versions"), "sync apply path starts barrier → versions: {edges:?}");
    assert!(has("versions", "shard(0)"), "versioned sweep enters the shards: {edges:?}");
    assert!(has("versions", "shard(3)"), "sweep reaches the last shard: {edges:?}");

    for (from, to) in &edges {
        assert!(rank(from) < rank(to), "non-canonical edge {from} → {to} observed: {edges:?}");
    }
}

#[test]
fn async_training_exercises_only_canonical_edges() {
    let ps = Arc::new(ParameterServer::new(vec![0.0; 6], 3, 2, Consistency::Async, sgd));
    std::thread::scope(|s| {
        for w in 0..2usize {
            let ps = ps.clone();
            s.spawn(move || {
                for _ in 0..10 {
                    let _ = ps.pull_with_version(w);
                    ps.push(w, &[0.1; 6]);
                }
            });
        }
    });
    let edges = ps.observed_lock_edges();
    assert!(edges.iter().any(|(a, b)| a == "versions" && b == "shard(0)"), "{edges:?}");
    assert!(!edges.iter().any(|(a, _)| a.starts_with("shard") && a != "shard(0)" && a != "shard(1)"), "{edges:?}");
}

#[test]
fn ssp_training_exercises_only_canonical_edges() {
    // SSP adds condvar waits on the version lock (pull gate + apply gate).
    // `TrackedGuard::wait_while` is a release+reacquire of the *same* lock,
    // so even under heavy gate contention no new edge — and certainly no
    // backward edge — may appear.
    let ps = Arc::new(ParameterServer::new(vec![0.0; 6], 3, 4, Consistency::Ssp { slack: 1 }, sgd));
    std::thread::scope(|s| {
        for w in 0..4usize {
            let ps = ps.clone();
            s.spawn(move || {
                for i in 0..10 {
                    let (_params, _v) = ps.pull_with_version(w);
                    if w == 0 {
                        // Straggle so the other workers hit both gates.
                        std::thread::sleep(std::time::Duration::from_micros(100 * (i % 4)));
                    }
                    ps.push(w, &[0.1; 6]);
                }
                ps.retire_worker(w);
            });
        }
    });
    let edges = ps.observed_lock_edges();
    assert!(edges.iter().any(|(a, b)| a == "versions" && b == "shard(0)"), "{edges:?}");
    for (from, to) in &edges {
        assert!(rank(from) < rank(to), "non-canonical edge {from} → {to} observed: {edges:?}");
        assert!(from != "barrier", "SSP mode never touches the sync barrier: {edges:?}");
    }
}
