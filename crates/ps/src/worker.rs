//! Worker pool: runs `n` training workers against a shared parameter
//! server, each on its own thread — the "workers that perform the bulk of
//! computation" half of the GraphTrainer architecture (§3.3).

use crate::hb::{Handoff, JoinPool};
use crate::server::ParameterServer;
use std::sync::Arc;

/// Retires the worker from the server's SSP gate when its closure returns
/// — including by unwinding, so a panicking worker can never leave a stale
/// `last_pull` entry that blocks everyone else forever.
struct Retire<'a> {
    server: &'a ParameterServer,
    worker: usize,
}

impl Drop for Retire<'_> {
    fn drop(&mut self) {
        self.server.retire_worker(self.worker);
    }
}

/// Run `n_workers` copies of `work(worker_id, server)` on threads and wait
/// for all of them. Panics in a worker propagate. Each worker is retired
/// from the server ([`ParameterServer::retire_worker`]) when its closure
/// returns, so finished workers never gate SSP pushes from slower ones.
///
/// `work` receives its 0-based worker id; data partitioning (each worker
/// reads only its own slice of the training triples) is the caller's
/// responsibility, matching the self-contained-partition property GraphFlat
/// guarantees.
pub fn run_workers<F>(server: &Arc<ParameterServer>, n_workers: usize, work: F)
where
    F: Fn(usize, &ParameterServer) + Sync,
{
    assert!(n_workers > 0);
    // Vector-clock plumbing (debug builds): each worker adopts the
    // spawner's clock and publishes its own back through the pool, so
    // everything before the spawn happens-before the workers, and
    // everything the workers did happens-before the caller's code after
    // this function returns.
    let pool = JoinPool::new();
    std::thread::scope(|scope| {
        for w in 0..n_workers {
            let server = Arc::clone(server);
            let work = &work;
            let pool = &pool;
            let handoff = Handoff::fork();
            scope.spawn(move || {
                handoff.adopt();
                let _depart = pool.depart_guard();
                let _retire = Retire { server: &server, worker: w };
                work(w, &server)
            });
        }
    });
    pool.absorb();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Consistency;
    use agl_nn::{Optimizer, Sgd};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn sgd() -> Box<dyn Optimizer> {
        Box::new(Sgd::new(0.01))
    }

    #[test]
    fn all_workers_run_with_distinct_ids() {
        let ps = Arc::new(ParameterServer::new(vec![0.0; 2], 1, 5, Consistency::Async, sgd));
        let seen = AtomicU64::new(0);
        run_workers(&ps, 5, |w, _| {
            seen.fetch_or(1 << w, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 0b11111);
    }

    #[test]
    fn workers_minimise_shared_quadratic() {
        // Each worker descends f(x) = ||x - 3||² via the server; the shared
        // parameters must converge regardless of interleaving.
        let ps = Arc::new(ParameterServer::new(vec![0.0; 3], 2, 4, Consistency::Sync, sgd));
        run_workers(&ps, 4, |w, server| {
            for _ in 0..400 {
                let x = server.pull(w);
                let g: Vec<f32> = x.iter().map(|&xi| 2.0 * (xi - 3.0)).collect();
                server.push(w, &g);
            }
        });
        for xi in ps.snapshot() {
            assert!((xi - 3.0).abs() < 1e-2, "converged to {xi}");
        }
    }

    #[test]
    fn uneven_workloads_finish_under_ssp() {
        // Workers do different numbers of steps; the retire-on-return guard
        // must keep the short-lived workers from gating the long-lived one.
        let ps = Arc::new(ParameterServer::new(vec![0.0; 2], 1, 4, Consistency::Ssp { slack: 2 }, sgd));
        run_workers(&ps, 4, |w, server| {
            for _ in 0..(5 * (w + 1)) {
                let _x = server.pull(w);
                server.push(w, &[0.1, -0.1]);
            }
        });
        let st = ps.stats();
        assert_eq!(st.steps, 5 + 10 + 15 + 20);
        assert!(st.max_staleness <= 2);
    }
}
