//! Worker pool: runs `n` training workers against a shared parameter
//! server, each on its own thread — the "workers that perform the bulk of
//! computation" half of the GraphTrainer architecture (§3.3).

use crate::server::ParameterServer;
use std::sync::Arc;

/// Run `n_workers` copies of `work(worker_id, server)` on threads and wait
/// for all of them. Panics in a worker propagate.
///
/// `work` receives its 0-based worker id; data partitioning (each worker
/// reads only its own slice of the training triples) is the caller's
/// responsibility, matching the self-contained-partition property GraphFlat
/// guarantees.
pub fn run_workers<F>(server: &Arc<ParameterServer>, n_workers: usize, work: F)
where
    F: Fn(usize, &ParameterServer) + Sync,
{
    assert!(n_workers > 0);
    std::thread::scope(|scope| {
        for w in 0..n_workers {
            let server = Arc::clone(server);
            let work = &work;
            scope.spawn(move || work(w, &server));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SyncMode;
    use agl_nn::{Optimizer, Sgd};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn sgd() -> Box<dyn Optimizer> {
        Box::new(Sgd::new(0.01))
    }

    #[test]
    fn all_workers_run_with_distinct_ids() {
        let ps = Arc::new(ParameterServer::new(vec![0.0; 2], 1, SyncMode::Async, sgd));
        let seen = AtomicU64::new(0);
        run_workers(&ps, 5, |w, _| {
            seen.fetch_or(1 << w, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 0b11111);
    }

    #[test]
    fn workers_minimise_shared_quadratic() {
        // Each worker descends f(x) = ||x - 3||² via the server; the shared
        // parameters must converge regardless of interleaving.
        let ps = Arc::new(ParameterServer::new(vec![0.0; 3], 2, SyncMode::Sync { n_workers: 4 }, sgd));
        run_workers(&ps, 4, |_, server| {
            for _ in 0..400 {
                let x = server.pull();
                let g: Vec<f32> = x.iter().map(|&xi| 2.0 * (xi - 3.0)).collect();
                server.push(&g);
            }
        });
        for xi in ps.pull() {
            assert!((xi - 3.0).abs() < 1e-2, "converged to {xi}");
        }
    }
}
