//! The sharded parameter server.
//!
//! **Lock-order discipline.** The server owns three lock families, and
//! every path acquires them in the canonical order `Barrier → Versions →
//! Shard(0..S)` (shards ascending). All acquisitions go through the
//! [`lock_barrier`](ParameterServer::lock_barrier) /
//! [`lock_versions`](ParameterServer::lock_versions) /
//! [`lock_shard`](ParameterServer::lock_shard) wrappers, which are
//! statically linted by `agl-analysis` (`lock-order` rule) and dynamically
//! checked in debug builds by [`LockOrderTracker`] (any two code paths that
//! disagree about the order abort the run at the second acquisition site).

use crate::locks::{LockClass, LockOrderTracker, TrackedGuard, TrackedMutex};
use agl_nn::Optimizer;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar};

/// How pushed gradients are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Barrier per step: gradients from all workers are averaged, then one
    /// optimizer step is applied; every `push` blocks until the step lands.
    Sync { n_workers: usize },
    /// Each push is applied immediately, no coordination (Hogwild-style).
    Async,
}

/// One server shard: a contiguous slice of the flat model vector plus its
/// own optimizer state.
struct Shard {
    params: Vec<f32>,
    opt: Box<dyn Optimizer>,
}

/// Barrier state for synchronous training.
struct SyncState {
    accum: Vec<f32>,
    arrived: usize,
    round: u64,
}

/// Model-version bookkeeping: how many optimizer steps have landed, per
/// shard and globally. Guarded by its own lock so versioned pulls get a
/// consistent `(params, version)` cut — [`ParameterServer::apply`] holds it
/// across the shard sweep.
struct VersionTable {
    shard_versions: Vec<u64>,
    global_step: u64,
}

/// Traffic and progress statistics, for the cluster-simulator calibration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PsStats {
    pub pulls: u64,
    pub pushes: u64,
    /// Optimizer steps applied (sync: one per round; async: one per push).
    pub steps: u64,
    /// Bytes moved over the (simulated) network, both directions.
    pub bytes_transferred: u64,
    /// Model version = optimizer steps landed (equals `steps` at rest).
    pub model_version: u64,
}

/// In-process parameter server holding the flat model vector in `S` shards.
pub struct ParameterServer {
    shards: Vec<TrackedMutex<Shard>>,
    /// Shard boundaries: shard `i` owns `bounds[i]..bounds[i+1]`.
    bounds: Vec<usize>,
    mode: SyncMode,
    sync: TrackedMutex<SyncState>,
    sync_cv: Condvar,
    versions: TrackedMutex<VersionTable>,
    tracker: Arc<LockOrderTracker>,
    pulls: AtomicU64,
    pushes: AtomicU64,
    steps: AtomicU64,
    bytes: AtomicU64,
}

impl ParameterServer {
    /// Create from an initial flat parameter vector. `make_opt` builds the
    /// per-shard server-side optimizer (each shard keeps independent state,
    /// which is exact for elementwise optimizers like Adam/SGD).
    pub fn new(initial: Vec<f32>, n_shards: usize, mode: SyncMode, make_opt: impl Fn() -> Box<dyn Optimizer>) -> Self {
        let n = initial.len();
        let n_shards = n_shards.clamp(1, n.max(1));
        let per = n.div_ceil(n_shards);
        let tracker = LockOrderTracker::new();
        let mut bounds = Vec::with_capacity(n_shards + 1);
        let mut shards = Vec::with_capacity(n_shards);
        let mut off = 0;
        bounds.push(0);
        for i in 0..n_shards {
            let end = (off + per).min(n);
            shards.push(TrackedMutex::new(
                &tracker,
                LockClass::Shard(i as u32),
                Shard { params: initial[off..end].to_vec(), opt: make_opt() },
            ));
            off = end;
            bounds.push(end);
        }
        if let SyncMode::Sync { n_workers } = mode {
            assert!(n_workers > 0, "sync mode needs at least one worker");
        }
        Self {
            sync: TrackedMutex::new(
                &tracker,
                LockClass::Barrier,
                SyncState { accum: vec![0.0; n], arrived: 0, round: 0 },
            ),
            versions: TrackedMutex::new(
                &tracker,
                LockClass::Versions,
                VersionTable { shard_versions: vec![0; n_shards], global_step: 0 },
            ),
            shards,
            bounds,
            mode,
            sync_cv: Condvar::new(),
            tracker,
            pulls: AtomicU64::new(0),
            pushes: AtomicU64::new(0),
            steps: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Total parameter count.
    pub fn len(&self) -> usize {
        self.bounds.last().copied().unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of server shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    pub fn mode(&self) -> SyncMode {
        self.mode
    }

    // ---- Lock wrappers (the only sanctioned acquisition sites) ----------
    // `#[track_caller]` makes the tracker (and its panic reports) name the
    // real call site, not these one-liners.

    /// Acquire the sync-barrier state. Canonical rank 0: nothing else may
    /// be held.
    #[track_caller]
    fn lock_barrier(&self) -> TrackedGuard<'_, SyncState> {
        self.sync.acquire()
    }

    /// Acquire the version table. Canonical rank 1: only the barrier may
    /// already be held.
    #[track_caller]
    fn lock_versions(&self) -> TrackedGuard<'_, VersionTable> {
        self.versions.acquire()
    }

    /// Acquire parameter shard `i`. Shards must be taken in ascending
    /// index order, after barrier/versions if those are held at all.
    #[track_caller]
    fn lock_shard(&self, i: usize) -> TrackedGuard<'_, Shard> {
        self.shards[i].acquire()
    }

    /// Observed lock-acquisition edges (debug builds record them; release
    /// builds return an empty list). Test hook for the lock-order suite.
    pub fn observed_lock_edges(&self) -> Vec<(String, String)> {
        self.tracker.observed_edges()
    }

    /// Pull the current full parameter vector (a worker's step begins here).
    pub fn pull(&self) -> Vec<f32> {
        self.pull_with_version().0
    }

    /// Pull the parameter vector together with its model version (number of
    /// optimizer steps it reflects). The version table is held across the
    /// shard sweep, and [`apply`](Self::apply) holds it across its writes,
    /// so the returned pair is a consistent cut — the staleness a worker
    /// later observes (`current_version() - pulled_version`) is exact.
    pub fn pull_with_version(&self) -> (Vec<f32>, u64) {
        let mut out = vec![0.0f32; self.len()];
        let v = self.lock_versions();
        for i in 0..self.shards.len() {
            let s = self.lock_shard(i);
            out[self.bounds[i]..self.bounds[i + 1]].copy_from_slice(&s.params);
        }
        let version = v.global_step;
        drop(v);
        self.pulls.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(4 * self.len() as u64, Ordering::Relaxed);
        (out, version)
    }

    /// The model version right now: optimizer steps applied so far.
    pub fn current_version(&self) -> u64 {
        self.lock_versions().global_step
    }

    /// Push a gradient vector. In `Sync` mode this blocks until the whole
    /// round's averaged step has been applied; in `Async` mode it applies
    /// immediately.
    pub fn push(&self, grads: &[f32]) {
        assert_eq!(grads.len(), self.len(), "gradient length mismatch");
        self.pushes.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(4 * grads.len() as u64, Ordering::Relaxed);
        match self.mode {
            SyncMode::Async => {
                self.apply(grads);
                self.steps.fetch_add(1, Ordering::Relaxed);
            }
            SyncMode::Sync { n_workers } => {
                let mut st = self.lock_barrier();
                for (a, &g) in st.accum.iter_mut().zip(grads) {
                    *a += g;
                }
                st.arrived += 1;
                if st.arrived == n_workers {
                    // Last worker of the round applies the averaged step.
                    // Scale the accumulator in place — `apply` stays
                    // allocation-free on its hot path.
                    let scale = 1.0 / n_workers as f32;
                    let mut accum = std::mem::replace(&mut st.accum, vec![0.0; self.len()]);
                    for a in accum.iter_mut() {
                        *a *= scale;
                    }
                    st.arrived = 0;
                    st.round += 1;
                    // Applying while holding the barrier follows the
                    // canonical order Barrier → Versions → Shard(asc).
                    self.apply(&accum);
                    self.steps.fetch_add(1, Ordering::Relaxed);
                    self.sync_cv.notify_all();
                } else {
                    let target = st.round + 1;
                    let _st = st.wait_while(&self.sync_cv, |s| s.round < target);
                }
            }
        }
    }

    /// Apply one optimizer step from `grads`. Holds the version table
    /// across the shard sweep so versioned pulls see either none or all of
    /// the step; shards are taken in ascending order.
    fn apply(&self, grads: &[f32]) {
        let mut v = self.lock_versions();
        v.global_step += 1;
        for i in 0..self.shards.len() {
            let (lo, hi) = (self.bounds[i], self.bounds[i + 1]);
            let mut s = self.lock_shard(i);
            s.params_opt_step(&grads[lo..hi]);
            v.shard_versions[i] += 1;
        }
    }

    /// Traffic/progress snapshot.
    pub fn stats(&self) -> PsStats {
        PsStats {
            pulls: self.pulls.load(Ordering::Relaxed),
            pushes: self.pushes.load(Ordering::Relaxed),
            steps: self.steps.load(Ordering::Relaxed),
            bytes_transferred: self.bytes.load(Ordering::Relaxed),
            model_version: self.current_version(),
        }
    }
}

impl Shard {
    fn params_opt_step(&mut self, grads: &[f32]) {
        self.opt.step(&mut self.params, grads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_nn::Sgd;
    use std::sync::Arc;

    fn sgd() -> Box<dyn Optimizer> {
        Box::new(Sgd::new(0.1))
    }

    #[test]
    fn pull_returns_initial_params() {
        let ps = ParameterServer::new(vec![1.0, 2.0, 3.0, 4.0, 5.0], 2, SyncMode::Async, sgd);
        assert_eq!(ps.pull(), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(ps.n_shards(), 2);
        assert_eq!(ps.len(), 5);
    }

    #[test]
    fn async_push_applies_immediately() {
        let ps = ParameterServer::new(vec![0.0; 4], 2, SyncMode::Async, sgd);
        ps.push(&[1.0, 1.0, 1.0, 1.0]);
        // SGD lr=0.1: params -= 0.1 * g
        assert_eq!(ps.pull(), vec![-0.1; 4]);
        let st = ps.stats();
        assert_eq!((st.pulls, st.pushes, st.steps), (1, 1, 1));
        assert_eq!(st.bytes_transferred, 2 * 4 * 4);
    }

    #[test]
    fn sync_push_averages_across_workers() {
        let ps = Arc::new(ParameterServer::new(vec![0.0; 2], 1, SyncMode::Sync { n_workers: 4 }, sgd));
        std::thread::scope(|s| {
            for w in 0..4u32 {
                let ps = ps.clone();
                s.spawn(move || {
                    // Worker w pushes gradient 2w (average = 3).
                    ps.push(&[2.0 * w as f32, 2.0 * w as f32]);
                });
            }
        });
        let p = ps.pull();
        assert!((p[0] + 0.3).abs() < 1e-6, "avg grad 3 * lr 0.1 -> -0.3, got {}", p[0]);
        assert_eq!(ps.stats().steps, 1, "one optimizer step per sync round");
    }

    #[test]
    fn sync_multiple_rounds_make_progress() {
        let ps = Arc::new(ParameterServer::new(vec![0.0; 1], 1, SyncMode::Sync { n_workers: 2 }, sgd));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let ps = ps.clone();
                s.spawn(move || {
                    for _ in 0..5 {
                        let _params = ps.pull();
                        ps.push(&[1.0]);
                    }
                });
            }
        });
        // 5 rounds of avg grad 1.0 with lr 0.1 -> -0.5.
        assert!((ps.pull()[0] + 0.5).abs() < 1e-6);
        assert_eq!(ps.stats().steps, 5);
    }

    #[test]
    fn sharding_matches_single_shard_result() {
        let run = |shards: usize| {
            let ps = ParameterServer::new(vec![0.5; 10], shards, SyncMode::Async, sgd);
            ps.push(&[0.2; 10]);
            ps.push(&[-0.1; 10]);
            ps.pull()
        };
        assert_eq!(run(1), run(3));
        assert_eq!(run(1), run(10));
    }

    #[test]
    fn model_version_counts_applied_steps() {
        let ps = ParameterServer::new(vec![0.0; 6], 3, SyncMode::Async, sgd);
        assert_eq!(ps.current_version(), 0);
        ps.push(&[1.0; 6]);
        ps.push(&[1.0; 6]);
        let (params, version) = ps.pull_with_version();
        assert_eq!(version, 2);
        assert_eq!(params.len(), 6);
        let st = ps.stats();
        assert_eq!(st.model_version, 2);
        assert_eq!(st.model_version, st.steps, "at rest, version equals applied steps");
    }

    #[test]
    fn versioned_pull_is_a_consistent_cut() {
        // Concurrent pullers race with async pushers; because `apply` holds
        // the version table across its shard sweep, a pulled vector tagged
        // version v reflects exactly v steps: with +1.0 gradients and SGD
        // lr=0.1, every element must equal -0.1 * v.
        let ps = Arc::new(ParameterServer::new(vec![0.0; 8], 4, SyncMode::Async, sgd));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let ps = ps.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        ps.push(&[1.0; 8]);
                    }
                });
            }
            for _ in 0..2 {
                let ps = ps.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        let (params, v) = ps.pull_with_version();
                        let expect = -0.1 * v as f32;
                        for (j, p) in params.iter().enumerate() {
                            assert!((p - expect).abs() < 1e-4, "version {v}, param[{j}] = {p}, want {expect}");
                        }
                    }
                });
            }
        });
        assert_eq!(ps.current_version(), 100);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_gradient_length_panics() {
        let ps = ParameterServer::new(vec![0.0; 4], 1, SyncMode::Async, sgd);
        ps.push(&[1.0; 3]);
    }
}
