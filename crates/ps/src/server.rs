//! The sharded parameter server.
//!
//! **Lock-order discipline.** The server owns three lock families, and
//! every path acquires them in the canonical order `Barrier → Versions →
//! Shard(0..S)` (shards ascending). All acquisitions go through the
//! `lock_barrier` / `lock_versions` / `lock_shard` wrappers, which are
//! statically linted by `agl-analysis` (`lock-order` rule) and dynamically
//! checked in debug builds by [`LockOrderTracker`] (any two code paths that
//! disagree about the order abort the run at the second acquisition site).
//! Condvar waits (`TrackedGuard::wait_while`) release and reacquire the
//! *same* guard, so they introduce no new edges.
//!
//! **Consistency spectrum.** Mode selection is one enum, [`Consistency`]:
//!
//! * `Sync` — barrier per step, gradients averaged **in worker-id order**
//!   (bit-deterministic regardless of arrival order), one optimizer step
//!   per round.
//! * `Async` — Hogwild: every push applies immediately; staleness is
//!   measured exactly (under the version lock at apply time) but unbounded.
//! * `Ssp { slack }` — stale-synchronous parallel: at most `slack + 1`
//!   workers may be in flight (pulled, not yet applied) at once, and an
//!   apply is admitted only while every other in-flight worker can still
//!   land within `slack` staleness afterwards; workers outside those
//!   windows block on pull/push until stragglers apply or retire. Every
//!   applied gradient provably satisfies `staleness ≤ slack`.
//!   `Ssp { slack: 0 }` is normalized to `Sync` at construction (the only
//!   staleness-0 schedule that never deadlocks is the barrier), so it is
//!   bit-identical to explicit `Sync`.

use crate::hb::TrackedAtomic;
use crate::locks::{LockClass, LockOrderTracker, TrackedGuard, TrackedMutex};
use agl_nn::Optimizer;
use agl_obs::{Clock, Histogram, HistogramKind, Obs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar};

/// How model updates are coordinated across workers — the GraphLab-style
/// consistency spectrum instead of a sync/async binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Consistency {
    /// Barrier per step: gradients from all workers are combined (summed in
    /// worker-id order, then averaged) and one optimizer step is applied;
    /// every `push` blocks until the round's step lands. Staleness is 0.
    #[default]
    Sync,
    /// Each push is applied immediately, no coordination (Hogwild-style).
    /// Staleness is measured but unbounded.
    Async,
    /// Stale-synchronous parallel: a worker whose progress would push some
    /// in-flight worker's staleness past `slack` blocks on pull/push until
    /// the stragglers catch up (apply their gradient, or retire).
    /// Guarantees every applied gradient's staleness ≤ `slack`; `slack: 0`
    /// degrades to `Sync`.
    Ssp { slack: u64 },
}

impl std::fmt::Display for Consistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Consistency::Sync => f.write_str("sync"),
            Consistency::Async => f.write_str("async"),
            Consistency::Ssp { slack } => write!(f, "ssp({slack})"),
        }
    }
}

/// One server shard: a contiguous slice of the flat model vector plus its
/// own optimizer state.
struct Shard {
    params: Vec<f32>,
    opt: Box<dyn Optimizer>,
}

/// Barrier state for synchronous training. Each worker writes its gradient
/// into its own slot; the round's last arrival sums the slots in worker-id
/// order, which makes the averaged step independent of arrival order (and
/// hence the whole sync trajectory bit-deterministic given the seeds).
struct SyncState {
    /// Per-worker gradient slots, `n_workers × n`.
    slots: Vec<Vec<f32>>,
    /// Scratch for the in-order sum (reused every round; no per-round
    /// allocation).
    accum: Vec<f32>,
    arrived: usize,
    round: u64,
}

/// Model-version bookkeeping: how many optimizer steps have landed, per
/// shard and globally, plus the per-worker progress the SSP gate reads.
/// Guarded by its own lock so versioned pulls get a consistent
/// `(params, version)` cut — [`ParameterServer::apply`] holds it across the
/// shard sweep, and staleness is recorded here at apply time (exact, no
/// racy atomics).
struct VersionTable {
    shard_versions: Vec<u64>,
    global_step: u64,
    /// Model version each worker saw at its most recent pull.
    last_pull: Vec<u64>,
    /// Workers currently in-flight (pulled and not yet retired). Only
    /// active workers constrain the SSP gate — a retired worker never
    /// pushes again, so its stale `last_pull` must not block others.
    active: Vec<bool>,
    /// Pull-before-push discipline flag, per worker: SSP's staleness bound
    /// is proven only for workers that pull between pushes.
    pulled_since_push: Vec<bool>,
    workers: Vec<WorkerRecord>,
}

/// Internal per-worker record backed by the shared `agl-obs` histogram
/// type; [`ParameterServer::stats`] materializes it into the flat
/// [`WorkerPsStats`] snapshot, so downstream consumers keep a plain view.
struct WorkerRecord {
    pulls: u64,
    /// Staleness per applied push: exact linear buckets, last = overflow.
    staleness: Histogram,
    /// Nanoseconds blocked on the SSP gate, one sample per blocked
    /// pull/push (`count()` = waits, `sum()` = total nanos).
    gate_wait: Histogram,
}

impl WorkerRecord {
    fn new(hist_len: usize) -> Self {
        Self { pulls: 0, staleness: Histogram::linear(hist_len), gate_wait: Histogram::log2(40) }
    }

    fn snapshot(&self) -> WorkerPsStats {
        WorkerPsStats {
            pulls: self.pulls,
            pushes: self.staleness.count(),
            max_staleness: self.staleness.max(),
            staleness_hist: self.staleness.bucket_counts(),
            waits: self.gate_wait.count(),
            wait_nanos: self.gate_wait.sum(),
        }
    }
}

impl VersionTable {
    /// Is `w` in flight: pulled a model it has not yet pushed a gradient
    /// for, and not retired. Only in-flight workers constrain the SSP
    /// window — between a worker's apply and its next pull it holds no
    /// model anyone must stay fresh for.
    fn in_flight(&self, w: usize) -> bool {
        self.active[w] && self.pulled_since_push[w]
    }

    /// SSP pull gate: admitting a pull by `puller` must keep the in-flight
    /// window at `slack + 1` workers, the largest set for which a
    /// staleness-≤-slack apply order always exists (a fresh puller enters
    /// at the back of that order).
    fn ssp_pull_blocked(&self, puller: usize, slack: u64) -> bool {
        let others = (0..self.last_pull.len()).filter(|&w| w != puller && self.in_flight(w)).count();
        others as u64 > slack
    }

    /// SSP apply gate: may `applier` apply one more step now?
    ///
    /// Invariant maintained: ordering the in-flight workers by pull
    /// version `p₍₁₎ ≤ … ≤ p₍ₖ₎`, each satisfies
    /// `p₍ⱼ₎ ≥ global_step + j − 1 − slack` — i.e. even if they apply in
    /// that worst-case order with no further pulls, none exceeds `slack`
    /// staleness. An apply bumps `global_step`, so it is admitted only if
    /// every *other* in-flight worker still fits its window afterwards;
    /// the worker with the oldest pull always does (its constraints are
    /// unchanged), which is what makes the schedule deadlock-free: the
    /// straggler is never the one waiting.
    fn ssp_apply_blocked(&self, applier: usize, slack: u64) -> bool {
        let g_after = self.global_step + 1;
        let flight = |w: usize| w != applier && self.in_flight(w);
        (0..self.last_pull.len()).filter(|&x| flight(x)).any(|x| {
            let p = self.last_pull[x];
            // Worst sorted position of x: after every in-flight pull ≤ p.
            let pos = (0..self.last_pull.len()).filter(|&y| flight(y) && self.last_pull[y] <= p).count() as u64;
            p + slack + 1 < g_after + pos
        })
    }

    /// Record one applied push for `worker` at the given staleness.
    fn record_push(&mut self, worker: usize, staleness: u64, waited: bool, wait_nanos: u64) {
        let ws = &mut self.workers[worker];
        ws.staleness.record(staleness);
        if waited {
            ws.gate_wait.record(wait_nanos);
        }
        self.pulled_since_push[worker] = false;
    }
}

/// Per-worker traffic and staleness statistics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkerPsStats {
    pub pulls: u64,
    pub pushes: u64,
    /// Largest staleness (steps between pull and apply) over this worker's
    /// applied pushes. Exact: recorded under the version lock at apply.
    pub max_staleness: u64,
    /// `staleness_hist[i]` counts pushes applied at staleness `i`; the last
    /// bucket collects overflow (reachable only in `Async` mode — SSP never
    /// exceeds its slack, sync never exceeds 0).
    pub staleness_hist: Vec<u64>,
    /// Pushes that blocked on the SSP gate.
    pub waits: u64,
    /// Total clock nanoseconds this worker spent blocked on the gate
    /// (logical ticks when the attached obs handle runs a logical clock).
    pub wait_nanos: u64,
}

/// Traffic and progress statistics, for the cluster-simulator calibration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PsStats {
    pub pulls: u64,
    pub pushes: u64,
    /// Optimizer steps applied (sync: one per round; async/SSP: one per push).
    pub steps: u64,
    /// Bytes moved over the (simulated) network, both directions.
    pub bytes_transferred: u64,
    /// Model version = optimizer steps landed (equals `steps` at rest).
    pub model_version: u64,
    /// Largest staleness any applied push observed (max over workers).
    pub max_staleness: u64,
    /// Pushes that blocked on the SSP gate (sum over workers).
    pub ssp_waits: u64,
    /// Total nanoseconds spent blocked on the SSP gate (sum over workers).
    pub ssp_wait_nanos: u64,
    /// Per-worker breakdown (staleness histograms, wait counters).
    pub workers: Vec<WorkerPsStats>,
}

/// In-process parameter server holding the flat model vector in `S` shards.
pub struct ParameterServer {
    shards: Vec<TrackedMutex<Shard>>,
    /// Shard boundaries: shard `i` owns `bounds[i]..bounds[i+1]`.
    bounds: Vec<usize>,
    /// Normalized mode (`Ssp { slack: 0 }` ⇒ `Sync`).
    mode: Consistency,
    n_workers: usize,
    sync: TrackedMutex<SyncState>,
    sync_cv: Condvar,
    versions: TrackedMutex<VersionTable>,
    /// Woken when the SSP gate may open: a straggler pulled or retired.
    ssp_cv: Condvar,
    tracker: Arc<LockOrderTracker>,
    /// Observability handle: pull/push/apply spans land on per-worker
    /// tracks `ps.w<i>`. Disabled by default (inert, allocation-free).
    obs: Obs,
    /// Gate-wait timing source. Follows the obs clock when a handle is
    /// attached, so logical-clock runs stay free of wall-clock reads.
    clock: Clock,
    /// Registry mirrors of the staleness / gate-wait histograms, populated
    /// by [`with_obs`](Self::with_obs) (aggregated over workers).
    obs_staleness: Option<Arc<Histogram>>,
    obs_gate_wait: Option<Arc<Histogram>>,
    /// Traffic counters. Plain cells by default; [`with_obs`](Self::with_obs)
    /// swaps in the run registry's cells (`ps.pulls`, …) so the metrics
    /// export sees live values with no double bookkeeping. Wrapped in
    /// [`TrackedAtomic`] — the Relaxed RMW/load traffic below is the
    /// sanctioned monotone-counter idiom, and the wrapper both exempts it
    /// from the static `atomics` rule and race-checks it in debug runs.
    pulls: TrackedAtomic<Arc<AtomicU64>>,
    pushes: TrackedAtomic<Arc<AtomicU64>>,
    steps: TrackedAtomic<Arc<AtomicU64>>,
    bytes: TrackedAtomic<Arc<AtomicU64>>,
}

/// Histogram size per mode: staleness is provably ≤ 0 (sync) / ≤ slack
/// (SSP); async gets a fixed range with an overflow bucket.
fn hist_len(mode: Consistency) -> usize {
    match mode {
        Consistency::Sync => 2,
        Consistency::Async => 18,
        // +1 for staleness == slack, +1 overflow (must stay empty).
        Consistency::Ssp { slack } => (slack as usize).saturating_add(2).min(66),
    }
}

impl ParameterServer {
    /// Create from an initial flat parameter vector. This is the only
    /// constructor: the consistency mode and the worker count are picked
    /// here and nowhere else. `make_opt` builds the per-shard server-side
    /// optimizer (each shard keeps independent state, which is exact for
    /// elementwise optimizers like Adam/SGD).
    pub fn new(
        initial: Vec<f32>,
        n_shards: usize,
        n_workers: usize,
        consistency: Consistency,
        make_opt: impl Fn() -> Box<dyn Optimizer>,
    ) -> Self {
        assert!(n_workers > 0, "the server needs at least one worker");
        // `Ssp { slack: 0 }` admits no stale gradient at all; the barrier is
        // the one staleness-0 schedule that cannot deadlock, so normalize —
        // this is also what makes Ssp{0} bit-identical to Sync.
        let mode = match consistency {
            Consistency::Ssp { slack: 0 } => Consistency::Sync,
            other => other,
        };
        let n = initial.len();
        let n_shards = n_shards.clamp(1, n.max(1));
        let per = n.div_ceil(n_shards);
        let tracker = LockOrderTracker::new();
        let mut bounds = Vec::with_capacity(n_shards + 1);
        let mut shards = Vec::with_capacity(n_shards);
        let mut off = 0;
        bounds.push(0);
        for i in 0..n_shards {
            let end = (off + per).min(n);
            shards.push(TrackedMutex::new(
                &tracker,
                LockClass::Shard(i as u32),
                Shard { params: initial[off..end].to_vec(), opt: make_opt() },
            ));
            off = end;
            bounds.push(end);
        }
        Self {
            sync: TrackedMutex::new(
                &tracker,
                LockClass::Barrier,
                SyncState {
                    slots: vec![vec![0.0; n]; if mode == Consistency::Sync { n_workers } else { 0 }],
                    accum: vec![0.0; if mode == Consistency::Sync { n } else { 0 }],
                    arrived: 0,
                    round: 0,
                },
            ),
            versions: TrackedMutex::new(
                &tracker,
                LockClass::Versions,
                VersionTable {
                    shard_versions: vec![0; n_shards],
                    global_step: 0,
                    last_pull: vec![0; n_workers],
                    active: vec![false; n_workers],
                    pulled_since_push: vec![false; n_workers],
                    workers: (0..n_workers).map(|_| WorkerRecord::new(hist_len(mode))).collect(),
                },
            ),
            shards,
            bounds,
            mode,
            n_workers,
            sync_cv: Condvar::new(),
            ssp_cv: Condvar::new(),
            tracker,
            obs: Obs::default(),
            clock: Clock::monotonic(),
            obs_staleness: None,
            obs_gate_wait: None,
            pulls: TrackedAtomic::new(Arc::new(AtomicU64::new(0))),
            pushes: TrackedAtomic::new(Arc::new(AtomicU64::new(0))),
            steps: TrackedAtomic::new(Arc::new(AtomicU64::new(0))),
            bytes: TrackedAtomic::new(Arc::new(AtomicU64::new(0))),
        }
    }

    /// Attach an observability handle (builder style, before the server is
    /// shared). Traffic counters become cells of the run's metrics registry
    /// (`ps.pulls`, `ps.pushes`, `ps.steps`, `ps.bytes_transferred`),
    /// staleness and gate waits gain aggregated registry histograms
    /// (`ps.staleness`, `ps.gate_wait_nanos`), and pull/push/apply emit
    /// spans on per-worker tracks `ps.w<i>` — including `ps.gate.pull` /
    /// `ps.gate.push` spans covering SSP gate waits. Gate-wait timing
    /// switches to the handle's clock, so a logical-clock run never reads
    /// the wall clock.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        if let Some(m) = obs.metrics() {
            self.pulls = TrackedAtomic::new(m.counter("ps.pulls"));
            self.pushes = TrackedAtomic::new(m.counter("ps.pushes"));
            self.steps = TrackedAtomic::new(m.counter("ps.steps"));
            self.bytes = TrackedAtomic::new(m.counter("ps.bytes_transferred"));
            self.obs_staleness =
                Some(m.histogram("ps.staleness", HistogramKind::Linear { buckets: hist_len(self.mode) }));
            self.obs_gate_wait = Some(m.histogram("ps.gate_wait_nanos", HistogramKind::Log2 { buckets: 40 }));
        }
        if let Some(t) = obs.trace() {
            self.clock = t.clock().clone();
        }
        self.obs = obs;
        self
    }

    /// Span on this worker's trace track (`ps.w<worker>`). Inert when no
    /// obs handle is attached — the track-name allocation is skipped.
    fn worker_span(&self, worker: usize, name: &str) -> agl_obs::Span {
        if self.obs.is_enabled() {
            self.obs.span(&format!("ps.w{worker}"), name)
        } else {
            agl_obs::Span::disabled()
        }
    }

    /// Total parameter count.
    pub fn len(&self) -> usize {
        self.bounds.last().copied().unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of server shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of registered workers.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// The normalized consistency mode (`Ssp { slack: 0 }` reads back as
    /// `Sync` — they are the same schedule).
    pub fn consistency(&self) -> Consistency {
        self.mode
    }

    // ---- Lock wrappers (the only sanctioned acquisition sites) ----------
    // `#[track_caller]` makes the tracker (and its panic reports) name the
    // real call site, not these one-liners.

    /// Acquire the sync-barrier state. Canonical rank 0: nothing else may
    /// be held.
    #[track_caller]
    fn lock_barrier(&self) -> TrackedGuard<'_, SyncState> {
        self.sync.acquire()
    }

    /// Acquire the version table. Canonical rank 1: only the barrier may
    /// already be held.
    #[track_caller]
    fn lock_versions(&self) -> TrackedGuard<'_, VersionTable> {
        self.versions.acquire()
    }

    /// Acquire parameter shard `i`. Shards must be taken in ascending
    /// index order, after barrier/versions if those are held at all.
    #[track_caller]
    fn lock_shard(&self, i: usize) -> TrackedGuard<'_, Shard> {
        self.shards[i].acquire()
    }

    /// Observed lock-acquisition edges (debug builds record them; release
    /// builds return an empty list). Test hook for the lock-order suite.
    pub fn observed_lock_edges(&self) -> Vec<(String, String)> {
        self.tracker.observed_edges()
    }

    /// Pull the current full parameter vector as `worker` (a worker's step
    /// begins here). Registers the worker as in-flight and records the
    /// version it saw, which is what the SSP gate reads.
    pub fn pull(&self, worker: usize) -> Vec<f32> {
        self.pull_with_version(worker).0
    }

    /// Pull the parameter vector together with its model version (number of
    /// optimizer steps it reflects). The version table is held across the
    /// shard sweep, and `apply` holds it across its writes,
    /// so the returned pair is a consistent cut — the staleness recorded
    /// when this worker later pushes is exact.
    pub fn pull_with_version(&self, worker: usize) -> (Vec<f32>, u64) {
        assert!(worker < self.n_workers, "worker id {worker} out of range (n_workers = {})", self.n_workers);
        let mut span = self.worker_span(worker, "ps.pull");
        let mut out = vec![0.0f32; self.len()];
        let mut v = self.lock_versions();
        if let Consistency::Ssp { slack } = self.mode {
            // Pull gate: cap the in-flight window at `slack + 1` workers —
            // any more and no apply order could keep everyone ≤ slack.
            let t0 = self.clock.now();
            if v.ssp_pull_blocked(worker, slack) {
                let _gate = self.worker_span(worker, "ps.gate.pull");
                v = v.wait_while(&self.ssp_cv, |vt| vt.ssp_pull_blocked(worker, slack));
                let waited = self.clock.since(t0);
                v.workers[worker].gate_wait.record(waited);
                if let Some(h) = &self.obs_gate_wait {
                    h.record(waited);
                }
            }
        }
        for i in 0..self.shards.len() {
            let s = self.lock_shard(i);
            out[self.bounds[i]..self.bounds[i + 1]].copy_from_slice(&s.params);
        }
        let version = v.global_step;
        v.last_pull[worker] = version;
        v.active[worker] = true;
        v.pulled_since_push[worker] = true;
        v.workers[worker].pulls += 1;
        drop(v);
        // A fresher pull can only open the gate for blocked pushers.
        if matches!(self.mode, Consistency::Ssp { .. }) {
            self.ssp_cv.notify_all();
        }
        self.pulls.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(4 * self.len() as u64, Ordering::Relaxed);
        span.counter("bytes", 4 * self.len() as u64);
        (out, version)
    }

    /// Read the full parameter vector without worker bookkeeping — the
    /// driver's view (e.g. loading the final model after training).
    pub fn snapshot(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len()];
        let v = self.lock_versions();
        for i in 0..self.shards.len() {
            let s = self.lock_shard(i);
            out[self.bounds[i]..self.bounds[i + 1]].copy_from_slice(&s.params);
        }
        drop(v);
        self.pulls.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(4 * self.len() as u64, Ordering::Relaxed);
        out
    }

    /// The model version right now: optimizer steps applied so far.
    pub fn current_version(&self) -> u64 {
        self.lock_versions().global_step
    }

    /// Deregister `worker` from the SSP gate: it will push no more this
    /// round of its life, so its (stale) `last_pull` must stop blocking
    /// others. Idempotent; called automatically by
    /// [`run_workers`](crate::run_workers) when a worker finishes (or
    /// unwinds). A retired worker re-registers simply by pulling again.
    pub fn retire_worker(&self, worker: usize) {
        assert!(worker < self.n_workers, "worker id {worker} out of range (n_workers = {})", self.n_workers);
        let mut v = self.lock_versions();
        v.active[worker] = false;
        drop(v);
        if matches!(self.mode, Consistency::Ssp { .. }) {
            self.ssp_cv.notify_all();
        }
    }

    /// Push a gradient vector as `worker`.
    ///
    /// * `Sync`: blocks until the whole round's averaged step has applied.
    /// * `Async`: applies immediately.
    /// * `Ssp { slack }`: applies immediately unless the new version could
    ///   push another in-flight worker's staleness past `slack` — then
    ///   blocks until stragglers apply or retire. Requires the
    ///   pull-compute-push discipline (a pull by this worker since its
    ///   previous push); that discipline is what makes the bound
    ///   `staleness ≤ slack` airtight for the pusher itself.
    pub fn push(&self, worker: usize, grads: &[f32]) {
        assert_eq!(grads.len(), self.len(), "gradient length mismatch");
        assert!(worker < self.n_workers, "worker id {worker} out of range (n_workers = {})", self.n_workers);
        let mut span = self.worker_span(worker, "ps.push");
        span.counter("bytes", 4 * grads.len() as u64);
        self.pushes.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(4 * grads.len() as u64, Ordering::Relaxed);
        match self.mode {
            Consistency::Async => {
                let mut v = self.lock_versions();
                let staleness = v.global_step.saturating_sub(v.last_pull[worker]);
                v.record_push(worker, staleness, false, 0);
                self.observe_staleness(&mut span, staleness);
                {
                    let _apply = self.worker_span(worker, "ps.apply");
                    self.apply_locked(&mut v, grads);
                }
                self.steps.fetch_add(1, Ordering::Relaxed);
            }
            Consistency::Ssp { slack } => {
                let mut v = self.lock_versions();
                assert!(
                    v.pulled_since_push[worker],
                    "SSP requires the pull-compute-push discipline: worker {worker} pushed twice \
                     without pulling, which would void the staleness bound"
                );
                let t0 = self.clock.now();
                let waited = v.ssp_apply_blocked(worker, slack);
                if waited {
                    // We wait on other in-flight workers applying (their
                    // window position ahead of ours) or retiring; both
                    // notify `ssp_cv`, and the oldest-pull worker is never
                    // blocked, so someone can always make progress.
                    let _gate = self.worker_span(worker, "ps.gate.push");
                    v = v.wait_while(&self.ssp_cv, |vt| vt.ssp_apply_blocked(worker, slack));
                }
                let wait_nanos = if waited { self.clock.since(t0) } else { 0 };
                if waited {
                    if let Some(h) = &self.obs_gate_wait {
                        h.record(wait_nanos);
                    }
                }
                // The window invariant (every in-flight pull fits a
                // staleness-≤-slack apply order) bounds our own staleness
                // here without a separate check.
                let staleness = v.global_step.saturating_sub(v.last_pull[worker]);
                v.record_push(worker, staleness, waited, wait_nanos);
                self.observe_staleness(&mut span, staleness);
                {
                    let _apply = self.worker_span(worker, "ps.apply");
                    self.apply_locked(&mut v, grads);
                }
                self.steps.fetch_add(1, Ordering::Relaxed);
                drop(v);
                // Our apply shrank the in-flight window: blocked pullers
                // (window full) and blocked appliers (waiting on us) may
                // proceed now.
                self.ssp_cv.notify_all();
            }
            Consistency::Sync => {
                let n_workers = self.n_workers;
                let mut st = self.lock_barrier();
                st.slots[worker].copy_from_slice(grads);
                st.arrived += 1;
                // Sync staleness is 0 by construction; record it under the
                // version lock (barrier → versions is the canonical order).
                {
                    let mut v = self.lock_versions();
                    v.record_push(worker, 0, false, 0);
                    self.observe_staleness(&mut span, 0);
                }
                if st.arrived == n_workers {
                    // Last worker of the round applies the averaged step.
                    // Summing the slots in worker-id order makes the result
                    // independent of arrival order (bit-deterministic).
                    st.arrived = 0;
                    st.round += 1;
                    let scale = 1.0 / n_workers as f32;
                    let SyncState { slots, accum, .. } = &mut *st;
                    accum.fill(0.0);
                    for slot in slots.iter() {
                        for (a, g) in accum.iter_mut().zip(slot) {
                            *a += g;
                        }
                    }
                    for a in accum.iter_mut() {
                        *a *= scale;
                    }
                    // Applying while holding the barrier follows the
                    // canonical order Barrier → Versions → Shard(asc).
                    {
                        let _apply = self.worker_span(worker, "ps.apply");
                        self.apply(&st.accum);
                    }
                    self.steps.fetch_add(1, Ordering::Relaxed);
                    self.sync_cv.notify_all();
                } else {
                    let target = st.round + 1;
                    let _st = st.wait_while(&self.sync_cv, |s| s.round < target);
                }
            }
        }
    }

    /// Mirror one applied push's staleness onto the push span and the
    /// registry histogram (both no-ops without an obs handle).
    fn observe_staleness(&self, span: &mut agl_obs::Span, staleness: u64) {
        span.counter("staleness", staleness);
        if let Some(h) = &self.obs_staleness {
            h.record(staleness);
        }
    }

    /// Apply one optimizer step from `grads`: acquire the version table and
    /// delegate to [`apply_locked`](Self::apply_locked).
    fn apply(&self, grads: &[f32]) {
        let mut v = self.lock_versions();
        self.apply_locked(&mut v, grads);
    }

    /// Apply one optimizer step while the version table is already held, so
    /// versioned pulls see either none or all of the step; shards are taken
    /// in ascending order (canonical: versions → shard(i)).
    fn apply_locked(&self, v: &mut TrackedGuard<'_, VersionTable>, grads: &[f32]) {
        v.global_step += 1;
        for i in 0..self.shards.len() {
            let (lo, hi) = (self.bounds[i], self.bounds[i + 1]);
            let mut s = self.lock_shard(i);
            s.params_opt_step(&grads[lo..hi]);
            v.shard_versions[i] += 1;
        }
    }

    /// Traffic/progress snapshot, including the per-worker staleness
    /// histograms and SSP wait counters. The per-worker records are kept
    /// under the version lock and written at apply time, so a snapshot
    /// taken after all workers joined is exact.
    pub fn stats(&self) -> PsStats {
        let v = self.lock_versions();
        let workers: Vec<WorkerPsStats> = v.workers.iter().map(WorkerRecord::snapshot).collect();
        let model_version = v.global_step;
        drop(v);
        PsStats {
            pulls: self.pulls.load(Ordering::Relaxed),
            pushes: self.pushes.load(Ordering::Relaxed),
            steps: self.steps.load(Ordering::Relaxed),
            bytes_transferred: self.bytes.load(Ordering::Relaxed),
            model_version,
            max_staleness: workers.iter().map(|w| w.max_staleness).max().unwrap_or(0),
            ssp_waits: workers.iter().map(|w| w.waits).sum(),
            ssp_wait_nanos: workers.iter().map(|w| w.wait_nanos).sum(),
            workers,
        }
    }
}

impl Shard {
    fn params_opt_step(&mut self, grads: &[f32]) {
        self.opt.step(&mut self.params, grads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_nn::Sgd;
    use std::sync::Arc;

    fn sgd() -> Box<dyn Optimizer> {
        Box::new(Sgd::new(0.1))
    }

    #[test]
    fn pull_returns_initial_params() {
        let ps = ParameterServer::new(vec![1.0, 2.0, 3.0, 4.0, 5.0], 2, 1, Consistency::Async, sgd);
        assert_eq!(ps.pull(0), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(ps.n_shards(), 2);
        assert_eq!(ps.len(), 5);
    }

    #[test]
    fn async_push_applies_immediately() {
        let ps = ParameterServer::new(vec![0.0; 4], 2, 1, Consistency::Async, sgd);
        ps.pull(0);
        ps.push(0, &[1.0, 1.0, 1.0, 1.0]);
        // SGD lr=0.1: params -= 0.1 * g
        assert_eq!(ps.snapshot(), vec![-0.1; 4]);
        let st = ps.stats();
        assert_eq!((st.pulls, st.pushes, st.steps), (2, 1, 1));
        assert_eq!(st.bytes_transferred, 3 * 4 * 4);
        assert_eq!(st.workers[0].pushes, 1);
        assert_eq!(st.workers[0].staleness_hist[0], 1);
    }

    #[test]
    fn sync_push_averages_across_workers() {
        let ps = Arc::new(ParameterServer::new(vec![0.0; 2], 1, 4, Consistency::Sync, sgd));
        std::thread::scope(|s| {
            for w in 0..4usize {
                let ps = ps.clone();
                s.spawn(move || {
                    // Worker w pushes gradient 2w (average = 3).
                    ps.push(w, &[2.0 * w as f32, 2.0 * w as f32]);
                });
            }
        });
        let p = ps.snapshot();
        assert!((p[0] + 0.3).abs() < 1e-6, "avg grad 3 * lr 0.1 -> -0.3, got {}", p[0]);
        assert_eq!(ps.stats().steps, 1, "one optimizer step per sync round");
        assert_eq!(ps.stats().max_staleness, 0);
    }

    #[test]
    fn sync_round_is_arrival_order_independent() {
        // Two rounds with opposite arrival orders must land bit-identical
        // parameters: the slots are summed in worker-id order.
        let run = |order: [usize; 3]| {
            let ps = Arc::new(ParameterServer::new(vec![0.25; 3], 1, 3, Consistency::Sync, sgd));
            std::thread::scope(|s| {
                for (rank, w) in order.into_iter().enumerate() {
                    let ps = ps.clone();
                    s.spawn(move || {
                        // Stagger arrivals deterministically by rank.
                        std::thread::sleep(std::time::Duration::from_millis(10 * rank as u64));
                        ps.push(w, &[0.1 * (w as f32 + 1.0), 0.7, -0.3]);
                    });
                }
            });
            ps.snapshot()
        };
        let a = run([0, 1, 2]);
        let b = run([2, 1, 0]);
        assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sync_multiple_rounds_make_progress() {
        let ps = Arc::new(ParameterServer::new(vec![0.0; 1], 1, 2, Consistency::Sync, sgd));
        std::thread::scope(|s| {
            for w in 0..2usize {
                let ps = ps.clone();
                s.spawn(move || {
                    for _ in 0..5 {
                        let _params = ps.pull(w);
                        ps.push(w, &[1.0]);
                    }
                });
            }
        });
        // 5 rounds of avg grad 1.0 with lr 0.1 -> -0.5.
        assert!((ps.snapshot()[0] + 0.5).abs() < 1e-6);
        assert_eq!(ps.stats().steps, 5);
    }

    #[test]
    fn sharding_matches_single_shard_result() {
        let run = |shards: usize| {
            let ps = ParameterServer::new(vec![0.5; 10], shards, 1, Consistency::Async, sgd);
            ps.pull(0);
            ps.push(0, &[0.2; 10]);
            ps.pull(0);
            ps.push(0, &[-0.1; 10]);
            ps.snapshot()
        };
        assert_eq!(run(1), run(3));
        assert_eq!(run(1), run(10));
    }

    #[test]
    fn model_version_counts_applied_steps() {
        let ps = ParameterServer::new(vec![0.0; 6], 3, 1, Consistency::Async, sgd);
        assert_eq!(ps.current_version(), 0);
        ps.pull(0);
        ps.push(0, &[1.0; 6]);
        ps.push(0, &[1.0; 6]);
        let (params, version) = ps.pull_with_version(0);
        assert_eq!(version, 2);
        assert_eq!(params.len(), 6);
        let st = ps.stats();
        assert_eq!(st.model_version, 2);
        assert_eq!(st.model_version, st.steps, "at rest, version equals applied steps");
        // Second push went out without a fresh pull: staleness 1, recorded
        // exactly in the histogram (legal in async mode).
        assert_eq!(st.workers[0].staleness_hist[0], 1);
        assert_eq!(st.workers[0].staleness_hist[1], 1);
        assert_eq!(st.max_staleness, 1);
    }

    #[test]
    fn versioned_pull_is_a_consistent_cut() {
        // Concurrent pullers race with async pushers; because `apply` holds
        // the version table across its shard sweep, a pulled vector tagged
        // version v reflects exactly v steps: with +1.0 gradients and SGD
        // lr=0.1, every element must equal -0.1 * v.
        let ps = Arc::new(ParameterServer::new(vec![0.0; 8], 4, 4, Consistency::Async, sgd));
        std::thread::scope(|s| {
            for w in 0..2usize {
                let ps = ps.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        ps.push(w, &[1.0; 8]);
                    }
                });
            }
            for w in 2..4usize {
                let ps = ps.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        let (params, v) = ps.pull_with_version(w);
                        let expect = -0.1 * v as f32;
                        for (j, p) in params.iter().enumerate() {
                            assert!((p - expect).abs() < 1e-4, "version {v}, param[{j}] = {p}, want {expect}");
                        }
                    }
                });
            }
        });
        assert_eq!(ps.current_version(), 100);
    }

    #[test]
    fn ssp_zero_slack_normalizes_to_sync() {
        let ps = ParameterServer::new(vec![0.0; 2], 1, 2, Consistency::Ssp { slack: 0 }, sgd);
        assert_eq!(ps.consistency(), Consistency::Sync);
    }

    #[test]
    fn ssp_single_worker_never_blocks() {
        let ps = ParameterServer::new(vec![0.0; 3], 1, 1, Consistency::Ssp { slack: 1 }, sgd);
        for _ in 0..10 {
            let _ = ps.pull(0);
            ps.push(0, &[1.0; 3]);
        }
        let st = ps.stats();
        assert_eq!(st.steps, 10);
        assert_eq!(st.ssp_waits, 0);
        assert_eq!(st.max_staleness, 0, "nobody else pushes, so nothing goes stale");
    }

    #[test]
    fn ssp_bounds_staleness_under_contention() {
        for slack in [1u64, 2, 4] {
            let ps = Arc::new(ParameterServer::new(vec![0.0; 4], 2, 3, Consistency::Ssp { slack }, sgd));
            std::thread::scope(|s| {
                for w in 0..3usize {
                    let ps = ps.clone();
                    s.spawn(move || {
                        for step in 0..20 {
                            let _ = ps.pull(w);
                            // Worker 0 is the straggler.
                            if w == 0 {
                                std::thread::sleep(std::time::Duration::from_micros(200 * (step % 3)));
                            }
                            ps.push(w, &[0.01; 4]);
                        }
                        ps.retire_worker(w);
                    });
                }
            });
            let st = ps.stats();
            assert_eq!(st.steps, 60);
            assert!(st.max_staleness <= slack, "slack {slack}: observed staleness {}", st.max_staleness);
            for (w, ws) in st.workers.iter().enumerate() {
                assert_eq!(ws.pushes, 20, "worker {w}");
                assert_eq!(ws.staleness_hist.iter().sum::<u64>(), 20, "worker {w} histogram accounts every push");
                assert_eq!(*ws.staleness_hist.last().unwrap(), 0, "worker {w}: SSP overflow bucket must stay empty");
            }
        }
    }

    #[test]
    fn ssp_push_without_pull_is_rejected() {
        let ps = Arc::new(ParameterServer::new(vec![0.0; 2], 1, 2, Consistency::Ssp { slack: 3 }, sgd));
        ps.pull(0);
        ps.push(0, &[1.0; 2]);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ps.push(0, &[1.0; 2]); // no pull since the last push
        }));
        assert!(err.is_err(), "double push without pull must violate the SSP discipline");
    }

    #[test]
    fn retire_unblocks_waiters() {
        // Worker 1 pulls once and never again; worker 0 would block forever
        // at slack 1 without the retirement path.
        let ps = Arc::new(ParameterServer::new(vec![0.0; 2], 1, 2, Consistency::Ssp { slack: 1 }, sgd));
        ps.pull(1);
        std::thread::scope(|s| {
            let ps2 = ps.clone();
            s.spawn(move || {
                for _ in 0..5 {
                    let _ = ps2.pull(0);
                    ps2.push(0, &[1.0; 2]);
                }
            });
            std::thread::sleep(std::time::Duration::from_millis(30));
            ps.retire_worker(1);
        });
        assert_eq!(ps.stats().steps, 5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_gradient_length_panics() {
        let ps = ParameterServer::new(vec![0.0; 4], 1, 1, Consistency::Async, sgd);
        ps.push(0, &[1.0; 3]);
    }

    #[test]
    fn obs_handle_mirrors_traffic_into_spans_and_registry() {
        let obs = agl_obs::Obs::enabled_logical();
        let ps = ParameterServer::new(vec![0.0; 4], 2, 1, Consistency::Async, sgd).with_obs(obs.clone());
        ps.pull(0);
        ps.push(0, &[1.0; 4]);
        ps.push(0, &[1.0; 4]); // staleness 1 (no pull in between; legal in async)

        let m = obs.metrics().unwrap();
        assert_eq!(m.get("ps.pulls"), 1);
        assert_eq!(m.get("ps.pushes"), 2);
        assert_eq!(m.get("ps.steps"), 2);
        let (names, tracks): (Vec<_>, Vec<_>) =
            obs.trace().unwrap().events().into_iter().map(|e| (e.name, e.track)).unzip();
        assert!(tracks.iter().all(|t| t == "ps.w0"), "{tracks:?}");
        assert_eq!(names.iter().filter(|n| *n == "ps.pull").count(), 1);
        assert_eq!(names.iter().filter(|n| *n == "ps.push").count(), 2);
        assert_eq!(names.iter().filter(|n| *n == "ps.apply").count(), 2);

        // Registry histogram mirrors the per-worker staleness record, and
        // the PsStats snapshot stays source-compatible.
        let Some(agl_obs::MetricValue::Histogram(h)) =
            obs.metrics().unwrap().snapshot().into_iter().find(|(k, _)| k == "ps.staleness").map(|(_, v)| v)
        else {
            panic!("ps.staleness histogram missing");
        };
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 1);
        let st = ps.stats();
        assert_eq!(st.workers[0].staleness_hist, vec![1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!((st.pulls, st.pushes, st.steps), (1, 2, 2));
    }

    #[test]
    fn ssp_gate_wait_shows_up_in_stats_and_trace() {
        let obs = agl_obs::Obs::enabled();
        let ps = Arc::new(
            ParameterServer::new(vec![0.0; 2], 1, 3, Consistency::Ssp { slack: 1 }, sgd).with_obs(obs.clone()),
        );
        // Fill the in-flight window (slack + 1 = 2 workers) before worker 0
        // even starts: its pull gate is then provably closed until a
        // straggler retires, so the wait is deterministic, not scheduled.
        ps.pull(1);
        ps.pull(2);
        std::thread::scope(|s| {
            let ps2 = ps.clone();
            s.spawn(move || {
                let _ = ps2.pull(0); // blocks: window already full
                ps2.push(0, &[0.1; 2]);
            });
            std::thread::sleep(std::time::Duration::from_millis(200));
            ps.retire_worker(1);
            ps.retire_worker(2);
        });
        let st = ps.stats();
        assert_eq!(st.steps, 1);
        assert!(st.ssp_waits > 0, "worker 0 pulled into a full window");
        assert!(st.ssp_wait_nanos > 0, "the gate wait took measurable time");
        let gate_spans =
            obs.trace().unwrap().events().into_iter().filter(|e| e.name.starts_with("ps.gate.")).count() as u64;
        assert_eq!(gate_spans, st.ssp_waits, "one gate span per recorded wait");
        assert_eq!(obs.metrics().unwrap().get("ps.steps"), 1);
        assert!(obs.metrics().unwrap().to_json().contains("\"ps.gate_wait_nanos\":{\"count\":1,"));
    }
}
