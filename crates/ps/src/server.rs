//! The sharded parameter server.

use agl_nn::Optimizer;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// How pushed gradients are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Barrier per step: gradients from all workers are averaged, then one
    /// optimizer step is applied; every `push` blocks until the step lands.
    Sync { n_workers: usize },
    /// Each push is applied immediately, no coordination (Hogwild-style).
    Async,
}

/// Acquire `m` even if a panicking holder poisoned it — shard state is a
/// flat `Vec<f32>` plus elementwise optimizer state, never left torn.
fn lock_ignoring_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One server shard: a contiguous slice of the flat model vector plus its
/// own optimizer state.
struct Shard {
    params: Vec<f32>,
    opt: Box<dyn Optimizer>,
}

/// Barrier state for synchronous training.
struct SyncState {
    accum: Vec<f32>,
    arrived: usize,
    round: u64,
}

/// Traffic and progress statistics, for the cluster-simulator calibration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PsStats {
    pub pulls: u64,
    pub pushes: u64,
    /// Optimizer steps applied (sync: one per round; async: one per push).
    pub steps: u64,
    /// Bytes moved over the (simulated) network, both directions.
    pub bytes_transferred: u64,
}

/// In-process parameter server holding the flat model vector in `S` shards.
pub struct ParameterServer {
    shards: Vec<Mutex<Shard>>,
    /// Shard boundaries: shard `i` owns `bounds[i]..bounds[i+1]`.
    bounds: Vec<usize>,
    mode: SyncMode,
    sync: Mutex<SyncState>,
    sync_cv: Condvar,
    pulls: AtomicU64,
    pushes: AtomicU64,
    steps: AtomicU64,
    bytes: AtomicU64,
}

impl ParameterServer {
    /// Create from an initial flat parameter vector. `make_opt` builds the
    /// per-shard server-side optimizer (each shard keeps independent state,
    /// which is exact for elementwise optimizers like Adam/SGD).
    pub fn new(initial: Vec<f32>, n_shards: usize, mode: SyncMode, make_opt: impl Fn() -> Box<dyn Optimizer>) -> Self {
        let n = initial.len();
        let n_shards = n_shards.clamp(1, n.max(1));
        let per = n.div_ceil(n_shards);
        let mut bounds = Vec::with_capacity(n_shards + 1);
        let mut shards = Vec::with_capacity(n_shards);
        let mut off = 0;
        bounds.push(0);
        for _ in 0..n_shards {
            let end = (off + per).min(n);
            shards.push(Mutex::new(Shard { params: initial[off..end].to_vec(), opt: make_opt() }));
            off = end;
            bounds.push(end);
        }
        if let SyncMode::Sync { n_workers } = mode {
            assert!(n_workers > 0, "sync mode needs at least one worker");
        }
        Self {
            shards,
            bounds,
            mode,
            sync: Mutex::new(SyncState { accum: vec![0.0; n], arrived: 0, round: 0 }),
            sync_cv: Condvar::new(),
            pulls: AtomicU64::new(0),
            pushes: AtomicU64::new(0),
            steps: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Total parameter count.
    pub fn len(&self) -> usize {
        self.bounds.last().copied().unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of server shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    pub fn mode(&self) -> SyncMode {
        self.mode
    }

    /// Pull the current full parameter vector (a worker's step begins here).
    pub fn pull(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len()];
        for (i, shard) in self.shards.iter().enumerate() {
            let s = lock_ignoring_poison(shard);
            out[self.bounds[i]..self.bounds[i + 1]].copy_from_slice(&s.params);
        }
        self.pulls.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(4 * self.len() as u64, Ordering::Relaxed);
        out
    }

    /// Push a gradient vector. In `Sync` mode this blocks until the whole
    /// round's averaged step has been applied; in `Async` mode it applies
    /// immediately.
    pub fn push(&self, grads: &[f32]) {
        assert_eq!(grads.len(), self.len(), "gradient length mismatch");
        self.pushes.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(4 * grads.len() as u64, Ordering::Relaxed);
        match self.mode {
            SyncMode::Async => {
                self.apply(grads, 1.0);
                self.steps.fetch_add(1, Ordering::Relaxed);
            }
            SyncMode::Sync { n_workers } => {
                let mut st = lock_ignoring_poison(&self.sync);
                for (a, &g) in st.accum.iter_mut().zip(grads) {
                    *a += g;
                }
                st.arrived += 1;
                if st.arrived == n_workers {
                    // Last worker of the round applies the averaged step.
                    let scale = 1.0 / n_workers as f32;
                    let accum = std::mem::replace(&mut st.accum, vec![0.0; self.len()]);
                    st.arrived = 0;
                    st.round += 1;
                    // Safe to apply while holding the sync lock: shard locks
                    // are only ever taken after it here, and pull() takes
                    // shard locks without the sync lock (no ordering cycle).
                    self.apply(&accum, scale);
                    self.steps.fetch_add(1, Ordering::Relaxed);
                    self.sync_cv.notify_all();
                } else {
                    let target = st.round + 1;
                    let _st = self
                        .sync_cv
                        .wait_while(st, |s| s.round < target)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
        }
    }

    fn apply(&self, grads: &[f32], scale: f32) {
        for (i, shard) in self.shards.iter().enumerate() {
            let (lo, hi) = (self.bounds[i], self.bounds[i + 1]);
            let mut s = lock_ignoring_poison(shard);
            if scale == 1.0 {
                s.params_opt_step(&grads[lo..hi]);
            } else {
                let scaled: Vec<f32> = grads[lo..hi].iter().map(|g| g * scale).collect();
                s.params_opt_step(&scaled);
            }
        }
    }

    /// Traffic/progress snapshot.
    pub fn stats(&self) -> PsStats {
        PsStats {
            pulls: self.pulls.load(Ordering::Relaxed),
            pushes: self.pushes.load(Ordering::Relaxed),
            steps: self.steps.load(Ordering::Relaxed),
            bytes_transferred: self.bytes.load(Ordering::Relaxed),
        }
    }
}

impl Shard {
    fn params_opt_step(&mut self, grads: &[f32]) {
        self.opt.step(&mut self.params, grads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_nn::Sgd;
    use std::sync::Arc;

    fn sgd() -> Box<dyn Optimizer> {
        Box::new(Sgd::new(0.1))
    }

    #[test]
    fn pull_returns_initial_params() {
        let ps = ParameterServer::new(vec![1.0, 2.0, 3.0, 4.0, 5.0], 2, SyncMode::Async, sgd);
        assert_eq!(ps.pull(), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(ps.n_shards(), 2);
        assert_eq!(ps.len(), 5);
    }

    #[test]
    fn async_push_applies_immediately() {
        let ps = ParameterServer::new(vec![0.0; 4], 2, SyncMode::Async, sgd);
        ps.push(&[1.0, 1.0, 1.0, 1.0]);
        // SGD lr=0.1: params -= 0.1 * g
        assert_eq!(ps.pull(), vec![-0.1; 4]);
        let st = ps.stats();
        assert_eq!((st.pulls, st.pushes, st.steps), (1, 1, 1));
        assert_eq!(st.bytes_transferred, 2 * 4 * 4);
    }

    #[test]
    fn sync_push_averages_across_workers() {
        let ps = Arc::new(ParameterServer::new(vec![0.0; 2], 1, SyncMode::Sync { n_workers: 4 }, sgd));
        std::thread::scope(|s| {
            for w in 0..4u32 {
                let ps = ps.clone();
                s.spawn(move || {
                    // Worker w pushes gradient 2w (average = 3).
                    ps.push(&[2.0 * w as f32, 2.0 * w as f32]);
                });
            }
        });
        let p = ps.pull();
        assert!((p[0] + 0.3).abs() < 1e-6, "avg grad 3 * lr 0.1 -> -0.3, got {}", p[0]);
        assert_eq!(ps.stats().steps, 1, "one optimizer step per sync round");
    }

    #[test]
    fn sync_multiple_rounds_make_progress() {
        let ps = Arc::new(ParameterServer::new(vec![0.0; 1], 1, SyncMode::Sync { n_workers: 2 }, sgd));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let ps = ps.clone();
                s.spawn(move || {
                    for _ in 0..5 {
                        let _params = ps.pull();
                        ps.push(&[1.0]);
                    }
                });
            }
        });
        // 5 rounds of avg grad 1.0 with lr 0.1 -> -0.5.
        assert!((ps.pull()[0] + 0.5).abs() < 1e-6);
        assert_eq!(ps.stats().steps, 5);
    }

    #[test]
    fn sharding_matches_single_shard_result() {
        let run = |shards: usize| {
            let ps = ParameterServer::new(vec![0.5; 10], shards, SyncMode::Async, sgd);
            ps.push(&[0.2; 10]);
            ps.push(&[-0.1; 10]);
            ps.pull()
        };
        assert_eq!(run(1), run(3));
        assert_eq!(run(1), run(10));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_gradient_length_panics() {
        let ps = ParameterServer::new(vec![0.0; 4], 1, SyncMode::Async, sgd);
        ps.push(&[1.0; 3]);
    }
}
