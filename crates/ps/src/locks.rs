//! Debug-mode lock-order tracking for the parameter server.
//!
//! The server's three lock families — the sync **barrier** state, the
//! **version** table, and the per-shard parameter **shard** mutexes — are
//! deadlock-free only if every code path acquires them in the canonical
//! order
//!
//! ```text
//! Barrier  →  Versions  →  Shard(0)  →  Shard(1)  →  …  →  Shard(S-1)
//! ```
//!
//! That discipline used to be a comment. This module makes it executable:
//! [`TrackedMutex`] wraps `std::sync::Mutex` and, in debug builds, records
//! every *held → acquired* edge into its [`LockOrderTracker`]. The tracker
//! keeps the union of edges observed across all threads of the run; the
//! first acquisition that would close a cycle in that graph — i.e. the
//! first time two code paths disagree about lock order, even if the actual
//! deadlock interleaving never happens in this run — panics with both
//! acquisition sites named. Release builds compile the bookkeeping down to
//! a plain mutex lock.
//!
//! The same convention is checked statically by `agl-analysis`'s
//! `lock-order` rule, which lints every `lock_barrier` / `lock_versions` /
//! `lock_shard` call site in `crates/ps` against the canonical ranking.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Which lock family a [`TrackedMutex`] belongs to. The derived total order
/// on ranks *is* the canonical acquisition order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockClass {
    /// Sync-barrier state (`SyncState`).
    Barrier,
    /// The model version table.
    Versions,
    /// Parameter shard `i`; shards must be taken in ascending index order.
    Shard(u32),
}

impl LockClass {
    /// Position in the canonical order: Barrier < Versions < Shard(0) < ….
    pub fn rank(self) -> u64 {
        match self {
            LockClass::Barrier => 0,
            LockClass::Versions => 1,
            LockClass::Shard(i) => 2 + u64::from(i),
        }
    }
}

impl fmt::Display for LockClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockClass::Barrier => f.write_str("barrier"),
            LockClass::Versions => f.write_str("versions"),
            LockClass::Shard(i) => write!(f, "shard({i})"),
        }
    }
}

/// First-observed witness for one *held → acquired* edge.
#[derive(Debug, Clone, Copy)]
struct EdgeWitness {
    from: LockClass,
    to: LockClass,
    /// Where `from` was acquired when the edge was first observed.
    from_site: &'static Location<'static>,
    /// Where `to` was acquired, closing the edge.
    to_site: &'static Location<'static>,
}

/// A lock held by the current thread (thread-local bookkeeping).
struct HeldLock {
    /// Identity of the tracker the lock belongs to (trackers are
    /// independent graphs; a test server's locks never interfere with
    /// another server's).
    tracker: usize,
    class: LockClass,
    site: &'static Location<'static>,
    /// Unique token so `Drop` removes exactly this entry.
    token: u64,
}

thread_local! {
    static HELD: RefCell<Vec<HeldLock>> = const { RefCell::new(Vec::new()) };
}

/// The union of lock-acquisition edges observed by one group of
/// [`TrackedMutex`]es (one parameter server ⇒ one tracker).
///
/// An edge `A → B` means "some thread acquired `B` while holding `A`". The
/// graph must stay acyclic: a cycle means two code paths disagree about
/// acquisition order and could deadlock under the right interleaving.
#[derive(Debug, Default)]
pub struct LockOrderTracker {
    /// Keyed by `(from.rank(), to.rank())`; the value is the first witness.
    edges: Mutex<BTreeMap<(u64, u64), EdgeWitness>>,
    next_token: AtomicU64,
}

impl LockOrderTracker {
    /// A fresh tracker with no observed edges; shared by every
    /// [`TrackedMutex`] of one lock domain.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// All observed edges as `(from, to)` class labels, sorted — test hook.
    pub fn observed_edges(&self) -> Vec<(String, String)> {
        let edges = self.edges.lock().unwrap_or_else(PoisonError::into_inner);
        edges.values().map(|w| (w.from.to_string(), w.to.to_string())).collect()
    }

    /// Record `held → new` for every currently-held lock, then check that
    /// the graph is still acyclic. Returns the violation report, if any.
    fn admit(
        &self,
        held: &[(LockClass, &'static Location<'static>)],
        new_class: LockClass,
        new_site: &'static Location<'static>,
    ) -> Result<(), String> {
        let mut edges = self.edges.lock().unwrap_or_else(PoisonError::into_inner);
        for &(h_class, h_site) in held {
            if h_class == new_class {
                return Err(format!(
                    "lock-order violation: re-acquiring {new_class} at {new_site} \
                     while already holding it (acquired at {h_site})"
                ));
            }
            edges.entry((h_class.rank(), new_class.rank())).or_insert(EdgeWitness {
                from: h_class,
                to: new_class,
                from_site: h_site,
                to_site: new_site,
            });
            // Adding held → new closes a cycle iff new already reaches held.
            if let Some(path) = reach(&edges, new_class.rank(), h_class.rank()) {
                let chain = path
                    .iter()
                    .map(|w| format!("{} (at {}) then {} (at {})", w.from, w.from_site, w.to, w.to_site))
                    .collect::<Vec<_>>()
                    .join("; ");
                return Err(format!(
                    "lock-order inversion: acquiring {new_class} at {new_site} while holding \
                     {h_class} (acquired at {h_site}), but the opposite order was observed: {chain}"
                ));
            }
        }
        Ok(())
    }
}

/// DFS over `edges` from `from` to `to`; returns the witness path if one
/// exists. The graph is tiny (≤ a few dozen nodes), so no memoisation.
fn reach(edges: &BTreeMap<(u64, u64), EdgeWitness>, from: u64, to: u64) -> Option<Vec<EdgeWitness>> {
    let mut stack = vec![(from, Vec::new())];
    let mut visited = vec![from];
    while let Some((node, path)) = stack.pop() {
        for (&(a, b), w) in edges.range((node, 0)..(node + 1, 0)) {
            debug_assert_eq!(a, node);
            let mut next = path.clone();
            next.push(*w);
            if b == to {
                return Some(next);
            }
            if !visited.contains(&b) {
                visited.push(b);
                stack.push((b, next));
            }
        }
    }
    None
}

/// A mutex that reports its acquisitions to a shared [`LockOrderTracker`]
/// in debug builds. Poisoning is ignored, matching the server's existing
/// policy: shard state is elementwise and never left torn.
#[derive(Debug)]
pub struct TrackedMutex<T> {
    class: LockClass,
    tracker: Arc<LockOrderTracker>,
    /// Happens-before clock of this lock: acquires join it, releases
    /// publish into it — the mutex half of the vector-clock race detector.
    hb: crate::hb::HbTracker,
    inner: Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// Wrap `value` in a mutex registered with `tracker` under `class`.
    pub fn new(tracker: &Arc<LockOrderTracker>, class: LockClass, value: T) -> Self {
        Self { class, tracker: Arc::clone(tracker), hb: crate::hb::HbTracker::new(), inner: Mutex::new(value) }
    }

    /// Lock, recording the acquisition edge against every lock this thread
    /// already holds from the same tracker. Panics (debug builds only) on
    /// the first acquisition whose edge closes a cycle.
    #[track_caller]
    pub fn acquire(&self) -> TrackedGuard<'_, T> {
        let token = if cfg!(debug_assertions) { Some(self.register(Location::caller())) } else { None };
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        self.hb.acquired_by_current();
        TrackedGuard { guard: Some(guard), lock: self, token }
    }

    fn register(&self, site: &'static Location<'static>) -> u64 {
        let tracker_id = Arc::as_ptr(&self.tracker) as usize;
        let held: Vec<(LockClass, &'static Location<'static>)> =
            HELD.with(|h| h.borrow().iter().filter(|e| e.tracker == tracker_id).map(|e| (e.class, e.site)).collect());
        if let Err(report) = self.tracker.admit(&held, self.class, site) {
            // The whole point: abort the (debug) run at the first
            // acquisition that contradicts the canonical lock order,
            // before the interleaving that actually deadlocks.
            // agl-lint: allow(no-panic) — see above.
            panic!("{report}");
        }
        // agl-lint: allow(atomics) — monotone token allocator; only uniqueness matters, not order.
        let token = self.tracker.next_token.fetch_add(1, Ordering::Relaxed);
        HELD.with(|h| h.borrow_mut().push(HeldLock { tracker: tracker_id, class: self.class, site, token }));
        token
    }
}

/// RAII guard from [`TrackedMutex::acquire`]; releases the thread-local
/// held-lock entry on drop.
#[derive(Debug)]
pub struct TrackedGuard<'a, T> {
    /// `None` only transiently inside `wait_while`, which owns `self`.
    guard: Option<MutexGuard<'a, T>>,
    lock: &'a TrackedMutex<T>,
    token: Option<u64>,
}

impl<'a, T> TrackedGuard<'a, T> {
    /// Block on `cv` until `!cond(value)`, as
    /// [`Condvar::wait_while`]. The held-lock entry stays registered for
    /// the duration: logically the thread still owns the critical section,
    /// and it acquires nothing else while parked inside the wait.
    pub fn wait_while<F>(mut self, cv: &Condvar, cond: F) -> Self
    where
        F: FnMut(&mut T) -> bool,
    {
        if let Some(g) = self.guard.take() {
            // A condvar wait is a real release + reacquire of the lock:
            // route the happens-before edge through the lock's clock so
            // work done by the notifying thread is ordered before us.
            self.lock.hb.released_by_current();
            self.guard = Some(cv.wait_while(g, cond).unwrap_or_else(PoisonError::into_inner));
            self.lock.hb.acquired_by_current();
        }
        self
    }

    fn inner(&self) -> &MutexGuard<'a, T> {
        match &self.guard {
            Some(g) => g,
            None => unreachable!("guard is only vacated inside wait_while, which owns self"),
        }
    }

    fn inner_mut(&mut self) -> &mut MutexGuard<'a, T> {
        match &mut self.guard {
            Some(g) => g,
            None => unreachable!("guard is only vacated inside wait_while, which owns self"),
        }
    }
}

impl<T> Deref for TrackedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner()
    }
}

impl<T> DerefMut for TrackedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner_mut()
    }
}

impl<T> Drop for TrackedGuard<'_, T> {
    fn drop(&mut self) {
        // Publish before the inner guard (a field, dropped after this body)
        // actually unlocks: the clock must be in place when the next
        // acquirer joins it.
        self.lock.hb.released_by_current();
        if let Some(token) = self.token {
            let tracker_id = Arc::as_ptr(&self.lock.tracker) as usize;
            HELD.with(|h| h.borrow_mut().retain(|e| !(e.tracker == tracker_id && e.token == token)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Arc<LockOrderTracker>, TrackedMutex<u32>, TrackedMutex<u32>) {
        let t = LockOrderTracker::new();
        let a = TrackedMutex::new(&t, LockClass::Shard(0), 0);
        let b = TrackedMutex::new(&t, LockClass::Shard(1), 0);
        (t, a, b)
    }

    #[test]
    fn canonical_order_is_admitted() {
        let (t, a, b) = pair();
        {
            let _ga = a.acquire();
            let _gb = b.acquire();
        }
        assert_eq!(t.observed_edges(), vec![("shard(0)".to_string(), "shard(1)".to_string())]);
    }

    #[test]
    fn sequential_acquisitions_record_no_edge() {
        let (t, a, b) = pair();
        drop(b.acquire());
        drop(a.acquire()); // lower rank, but nothing held — fine
        assert!(t.observed_edges().is_empty());
    }

    #[cfg(debug_assertions)]
    #[test]
    fn inversion_panics_with_both_sites() {
        let (_t, a, b) = pair();
        {
            let _ga = a.acquire();
            let _gb = b.acquire();
        }
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _gb = b.acquire();
            let _ga = a.acquire(); // shard(0) after shard(1): inversion
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-order inversion"), "{msg}");
        assert!(msg.contains("shard(0)") && msg.contains("shard(1)"), "{msg}");
        // Both acquisition sites (all in this file) are named.
        assert!(msg.matches("locks.rs").count() >= 2, "{msg}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn cross_thread_disagreement_is_caught() {
        // Thread 1 establishes shard(0) → shard(1); thread 2 tries the
        // opposite order. No deadlock actually occurs (the threads are
        // serialised), but the cycle in the observed graph is a latent one.
        let (t, a, b) = pair();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _ga = a.acquire();
                let _gb = b.acquire();
            })
            .join()
            .unwrap();
        });
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _gb = b.acquire();
            let _ga = a.acquire();
        }));
        assert!(caught.is_err(), "opposite order on a second thread must be rejected");
        let _ = t;
    }

    #[cfg(debug_assertions)]
    #[test]
    fn double_acquisition_of_same_class_is_caught() {
        let t = LockOrderTracker::new();
        let a = TrackedMutex::new(&t, LockClass::Versions, 0);
        let b = TrackedMutex::new(&t, LockClass::Versions, 0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ga = a.acquire();
            let _gb = b.acquire();
        }));
        assert!(caught.is_err(), "holding two Versions-class locks at once must be rejected");
    }

    #[test]
    fn independent_trackers_do_not_interfere() {
        // Same classes, different trackers: no shared graph, no violation.
        let (_, a, _) = pair();
        let (_, _, b2) = pair();
        let _gb = b2.acquire();
        let _ga = a.acquire(); // "inverted" vs b2, but unrelated tracker
    }

    #[test]
    fn wait_while_keeps_data_access() {
        let t = LockOrderTracker::new();
        let m = TrackedMutex::new(&t, LockClass::Barrier, 7u32);
        let cv = Condvar::new();
        let g = m.acquire();
        let mut g = g.wait_while(&cv, |v| *v != 7); // already satisfied
        assert_eq!(*g, 7);
        *g += 1;
        drop(g);
        assert_eq!(*m.acquire(), 8);
    }

    #[test]
    fn rank_is_total_and_matches_display() {
        assert!(LockClass::Barrier.rank() < LockClass::Versions.rank());
        assert!(LockClass::Versions.rank() < LockClass::Shard(0).rank());
        assert!(LockClass::Shard(0).rank() < LockClass::Shard(7).rank());
        assert_eq!(LockClass::Shard(3).to_string(), "shard(3)");
    }
}
