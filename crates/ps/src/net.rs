//! The parameter server over a socket: one pull/push code path for
//! in-process and multi-process training.
//!
//! The paper's GraphTrainer talks to its parameter servers over the
//! network; our [`crate::ParameterServer`] is in-process. This module puts
//! the *same* server behind the `agl-mapreduce` transport so each shard can
//! run as its own OS process:
//!
//! - [`PsClient`] is the trait the trainer codes against. The in-process
//!   implementation is [`ParameterServer`] itself (infallible, zero-copy of
//!   behaviour); the remote one is [`RemotePs`], which speaks the framed
//!   request/response protocol below.
//! - [`serve_ps_shard`] is the worker-process side: it accepts a control
//!   connection whose first message carries the shard's parameter slice and
//!   optimizer spec, builds a **1-shard** `ParameterServer` from it, and
//!   then serves pull/push from per-trainer-worker connections.
//!
//! Sharding composes exactly: the in-process server splits the model
//! elementwise into contiguous shard slices, each with its own optimizer
//! state, and sync-mode pushes sum in worker-id order per shard — so S
//! separate 1-shard server *processes* over the same slices apply
//! bit-identical updates to an S-shard in-process server (pinned by the
//! `sharding_matches_single_shard_result` test in-process, and by the
//! distributed-vs-local CLI verification end to end).
//!
//! ## Blocking and failure
//!
//! Sync/SSP pushes block server-side until the round completes — that is
//! the consistency contract, not a hang. Client reads are bounded by the
//! connection's read timeout: if a shard process dies mid-epoch, every
//! worker's next pull/push surfaces a typed [`PsNetError`] within the
//! timeout instead of blocking forever.

use crate::hb::{Handoff, JoinPool};
use crate::server::{Consistency, ParameterServer, PsStats, WorkerPsStats};
use agl_mapreduce::codec::{self, Codec, CodecError};
use agl_mapreduce::transport::{connect, Endpoint, FrameStats, Framed, Listener, TransportError};
use agl_nn::{Adam, Optimizer, Sgd};
use agl_obs::{Clock, Obs, SpanContext, TraceEvent};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Failure talking to a remote parameter-server shard.
#[derive(Debug)]
pub enum PsNetError {
    /// Socket-level failure (connect, timeout, EOF, framing).
    Transport(TransportError),
    /// The peer answered with the wrong message or a malformed payload.
    Protocol(String),
}

impl std::fmt::Display for PsNetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PsNetError::Transport(e) => write!(f, "ps transport error: {e}"),
            PsNetError::Protocol(what) => write!(f, "ps protocol violation: {what}"),
        }
    }
}

impl std::error::Error for PsNetError {}

impl From<TransportError> for PsNetError {
    fn from(e: TransportError) -> Self {
        PsNetError::Transport(e)
    }
}

impl From<CodecError> for PsNetError {
    fn from(e: CodecError) -> Self {
        PsNetError::Protocol(e.0)
    }
}

/// Mutex acquisition for connection and error-slot mutexes. These are not
/// parameter-server state locks: they have no rank in the barrier →
/// versions → shard hierarchy and are never held together with it (all
/// server state is reached through `ParameterServer`'s public methods).
fn lock_plain<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // agl-lint: allow(lock-order) — connection/error mutex outside the PS lock hierarchy; see above.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Server-side optimizer recipe, sent over the wire at shard init.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptSpec {
    /// Plain SGD with the given learning rate.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// Adam with the given learning rate (default betas/epsilon).
    Adam {
        /// Learning rate.
        lr: f32,
    },
}

impl OptSpec {
    /// Instantiate the optimizer this spec describes.
    pub fn build(&self) -> Box<dyn Optimizer> {
        match *self {
            OptSpec::Sgd { lr } => Box::new(Sgd::new(lr)),
            OptSpec::Adam { lr } => Box::new(Adam::new(lr)),
        }
    }
}

impl Codec for OptSpec {
    fn encode(&self, buf: &mut Vec<u8>) {
        match *self {
            OptSpec::Sgd { lr } => {
                codec::put_u8(buf, 0);
                codec::put_f32(buf, lr);
            }
            OptSpec::Adam { lr } => {
                codec::put_u8(buf, 1);
                codec::put_f32(buf, lr);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let tag = codec::get_u8(input)?;
        let lr = codec::get_f32(input)?;
        match tag {
            0 => Ok(OptSpec::Sgd { lr }),
            1 => Ok(OptSpec::Adam { lr }),
            t => Err(CodecError(format!("unknown optimizer tag {t}"))),
        }
    }
}

fn put_consistency(buf: &mut Vec<u8>, mode: Consistency) {
    match mode {
        Consistency::Sync => codec::put_u8(buf, 0),
        Consistency::Async => codec::put_u8(buf, 1),
        Consistency::Ssp { slack } => {
            codec::put_u8(buf, 2);
            codec::put_u64(buf, slack);
        }
    }
}

fn get_consistency(input: &mut &[u8]) -> Result<Consistency, CodecError> {
    match codec::get_u8(input)? {
        0 => Ok(Consistency::Sync),
        1 => Ok(Consistency::Async),
        2 => Ok(Consistency::Ssp { slack: codec::get_u64(input)? }),
        t => Err(CodecError(format!("unknown consistency tag {t}"))),
    }
}

fn put_u64s(buf: &mut Vec<u8>, vs: &[u64]) {
    codec::put_u32(buf, vs.len() as u32);
    for v in vs {
        codec::put_u64(buf, *v);
    }
}

fn get_u64s(input: &mut &[u8]) -> Result<Vec<u64>, CodecError> {
    let n = codec::get_u32(input)? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(codec::get_u64(input)?);
    }
    Ok(out)
}

fn put_stats(buf: &mut Vec<u8>, st: &PsStats) {
    for v in [
        st.pulls,
        st.pushes,
        st.steps,
        st.bytes_transferred,
        st.model_version,
        st.max_staleness,
        st.ssp_waits,
        st.ssp_wait_nanos,
    ] {
        codec::put_u64(buf, v);
    }
    codec::put_u32(buf, st.workers.len() as u32);
    for w in &st.workers {
        codec::put_u64(buf, w.pulls);
        codec::put_u64(buf, w.pushes);
        codec::put_u64(buf, w.max_staleness);
        put_u64s(buf, &w.staleness_hist);
        codec::put_u64(buf, w.waits);
        codec::put_u64(buf, w.wait_nanos);
    }
}

fn get_stats(input: &mut &[u8]) -> Result<PsStats, CodecError> {
    let pulls = codec::get_u64(input)?;
    let pushes = codec::get_u64(input)?;
    let steps = codec::get_u64(input)?;
    let bytes_transferred = codec::get_u64(input)?;
    let model_version = codec::get_u64(input)?;
    let max_staleness = codec::get_u64(input)?;
    let ssp_waits = codec::get_u64(input)?;
    let ssp_wait_nanos = codec::get_u64(input)?;
    let n = codec::get_u32(input)? as usize;
    let mut workers = Vec::with_capacity(n);
    for _ in 0..n {
        workers.push(WorkerPsStats {
            pulls: codec::get_u64(input)?,
            pushes: codec::get_u64(input)?,
            max_staleness: codec::get_u64(input)?,
            staleness_hist: get_u64s(input)?,
            waits: codec::get_u64(input)?,
            wait_nanos: codec::get_u64(input)?,
        });
    }
    Ok(PsStats {
        pulls,
        pushes,
        steps,
        bytes_transferred,
        model_version,
        max_staleness,
        ssp_waits,
        ssp_wait_nanos,
        workers,
    })
}

/// Trainer → shard requests.
#[derive(Debug)]
enum PsRequest {
    /// First message on the control connection: this shard's parameter
    /// slice, the worker count, the consistency mode, the optimizer, and
    /// the trace identity (`trace` turns shard-side tracing on; `trace_id`
    /// is shared by the job, `salt` is unique per shard so span ids stay
    /// collision-free when shard traces merge into the driver's).
    Init { params: Vec<f32>, n_workers: u32, mode: Consistency, opt: OptSpec, trace: bool, trace_id: u64, salt: u64 },
    /// Pull the shard slice (consistent with its version). `ctx` is the
    /// trainer-side RPC span; the shard's pull span parents under it.
    Pull { worker: u32, ctx: Option<SpanContext> },
    /// Push this worker's gradient slice.
    Push { worker: u32, ctx: Option<SpanContext>, grads: Vec<f32> },
    /// Retire the worker from the consistency gate.
    Retire { worker: u32 },
    /// Read the shard slice without counting as a worker pull.
    Snapshot,
    /// Read the shard's traffic/staleness stats.
    Stats,
    /// Finish up: reply `Bye` and exit the process.
    Shutdown,
}

const PQ_INIT: u8 = 0;
const PQ_PULL: u8 = 1;
const PQ_PUSH: u8 = 2;
const PQ_RETIRE: u8 = 3;
const PQ_SNAPSHOT: u8 = 4;
const PQ_STATS: u8 = 5;
const PQ_SHUTDOWN: u8 = 6;

/// Metric-name for a request frame's leading tag byte (RPC telemetry).
fn ps_request_name(tag: u8) -> &'static str {
    match tag {
        PQ_INIT => "init",
        PQ_PULL => "pull",
        PQ_PUSH => "push",
        PQ_RETIRE => "retire",
        PQ_SNAPSHOT => "snapshot",
        PQ_STATS => "stats",
        PQ_SHUTDOWN => "shutdown",
        _ => "unknown",
    }
}

impl Codec for PsRequest {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            PsRequest::Init { params, n_workers, mode, opt, trace, trace_id, salt } => {
                codec::put_u8(buf, PQ_INIT);
                codec::put_f32s(buf, params);
                codec::put_u32(buf, *n_workers);
                put_consistency(buf, *mode);
                opt.encode(buf);
                codec::put_u8(buf, u8::from(*trace));
                codec::put_u64(buf, *trace_id);
                codec::put_u64(buf, *salt);
            }
            PsRequest::Pull { worker, ctx } => {
                codec::put_u8(buf, PQ_PULL);
                codec::put_u32(buf, *worker);
                codec::put_span_ctx(buf, *ctx);
            }
            PsRequest::Push { worker, ctx, grads } => {
                codec::put_u8(buf, PQ_PUSH);
                codec::put_u32(buf, *worker);
                codec::put_span_ctx(buf, *ctx);
                codec::put_f32s(buf, grads);
            }
            PsRequest::Retire { worker } => {
                codec::put_u8(buf, PQ_RETIRE);
                codec::put_u32(buf, *worker);
            }
            PsRequest::Snapshot => codec::put_u8(buf, PQ_SNAPSHOT),
            PsRequest::Stats => codec::put_u8(buf, PQ_STATS),
            PsRequest::Shutdown => codec::put_u8(buf, PQ_SHUTDOWN),
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match codec::get_u8(input)? {
            PQ_INIT => {
                let params = codec::get_f32s(input)?;
                let n_workers = codec::get_u32(input)?;
                let mode = get_consistency(input)?;
                let opt = OptSpec::decode(input)?;
                let trace = codec::get_u8(input)? != 0;
                let trace_id = codec::get_u64(input)?;
                let salt = codec::get_u64(input)?;
                Ok(PsRequest::Init { params, n_workers, mode, opt, trace, trace_id, salt })
            }
            PQ_PULL => {
                let worker = codec::get_u32(input)?;
                let ctx = codec::get_span_ctx(input)?;
                Ok(PsRequest::Pull { worker, ctx })
            }
            PQ_PUSH => {
                let worker = codec::get_u32(input)?;
                let ctx = codec::get_span_ctx(input)?;
                let grads = codec::get_f32s(input)?;
                Ok(PsRequest::Push { worker, ctx, grads })
            }
            PQ_RETIRE => Ok(PsRequest::Retire { worker: codec::get_u32(input)? }),
            PQ_SNAPSHOT => Ok(PsRequest::Snapshot),
            PQ_STATS => Ok(PsRequest::Stats),
            PQ_SHUTDOWN => Ok(PsRequest::Shutdown),
            t => Err(CodecError(format!("unknown ps request tag {t}"))),
        }
    }
}

/// Shard → trainer responses.
#[derive(Debug)]
enum PsResponse {
    /// Shard initialised.
    InitOk,
    /// Pull reply: the shard slice and its model version.
    Pulled { params: Vec<f32>, version: u64 },
    /// Push applied (or queued per the consistency mode).
    Pushed,
    /// Worker retired.
    Retired,
    /// Snapshot of the shard slice.
    Snapshot { params: Vec<f32> },
    /// Shard stats.
    Stats { stats: PsStats },
    /// Shutdown acknowledged; the shard process is exiting. Carries the
    /// shard's counters and trace events for the driver's merged view.
    Bye { counters: Vec<(String, u64)>, trace: Vec<TraceEvent> },
    /// Request-level failure (bad worker id, wrong gradient length).
    Err { msg: String },
}

const PR_INIT_OK: u8 = 0;
const PR_PULLED: u8 = 1;
const PR_PUSHED: u8 = 2;
const PR_RETIRED: u8 = 3;
const PR_SNAPSHOT: u8 = 4;
const PR_STATS: u8 = 5;
const PR_BYE: u8 = 6;
const PR_ERR: u8 = 7;

/// Metric-name for a response frame's leading tag byte (RPC telemetry).
fn ps_response_name(tag: u8) -> &'static str {
    match tag {
        PR_INIT_OK => "init_ok",
        PR_PULLED => "pulled",
        PR_PUSHED => "pushed",
        PR_RETIRED => "retired",
        PR_SNAPSHOT => "snapshot",
        PR_STATS => "stats",
        PR_BYE => "bye",
        PR_ERR => "err",
        _ => "unknown",
    }
}

impl Codec for PsResponse {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            PsResponse::InitOk => codec::put_u8(buf, PR_INIT_OK),
            PsResponse::Pulled { params, version } => {
                codec::put_u8(buf, PR_PULLED);
                codec::put_f32s(buf, params);
                codec::put_u64(buf, *version);
            }
            PsResponse::Pushed => codec::put_u8(buf, PR_PUSHED),
            PsResponse::Retired => codec::put_u8(buf, PR_RETIRED),
            PsResponse::Snapshot { params } => {
                codec::put_u8(buf, PR_SNAPSHOT);
                codec::put_f32s(buf, params);
            }
            PsResponse::Stats { stats } => {
                codec::put_u8(buf, PR_STATS);
                put_stats(buf, stats);
            }
            PsResponse::Bye { counters, trace } => {
                codec::put_u8(buf, PR_BYE);
                codec::put_counters(buf, counters);
                codec::put_u32(buf, trace.len() as u32);
                for e in trace {
                    codec::put_trace_event(buf, e);
                }
            }
            PsResponse::Err { msg } => {
                codec::put_u8(buf, PR_ERR);
                codec::put_bytes(buf, msg.as_bytes());
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match codec::get_u8(input)? {
            PR_INIT_OK => Ok(PsResponse::InitOk),
            PR_PULLED => {
                let params = codec::get_f32s(input)?;
                let version = codec::get_u64(input)?;
                Ok(PsResponse::Pulled { params, version })
            }
            PR_PUSHED => Ok(PsResponse::Pushed),
            PR_RETIRED => Ok(PsResponse::Retired),
            PR_SNAPSHOT => Ok(PsResponse::Snapshot { params: codec::get_f32s(input)? }),
            PR_STATS => Ok(PsResponse::Stats { stats: get_stats(input)? }),
            PR_BYE => {
                let counters = codec::get_counters(input)?;
                let n = codec::get_u32(input)? as usize;
                let mut trace = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    trace.push(codec::get_trace_event(input)?);
                }
                Ok(PsResponse::Bye { counters, trace })
            }
            PR_ERR => {
                let msg = String::from_utf8(codec::get_bytes(input)?.to_vec())
                    .map_err(|e| CodecError(format!("non-utf8 error message: {e}")))?;
                Ok(PsResponse::Err { msg })
            }
            t => Err(CodecError(format!("unknown ps response tag {t}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Client trait: one pull/push code path for both modes
// ---------------------------------------------------------------------------

/// What a trainer needs from a parameter server, in-process or remote.
/// Implemented infallibly by [`ParameterServer`] and over the socket
/// protocol by [`RemotePs`]; `DistTrainer::train_with_client` is generic
/// over this trait, so both modes run the identical training loop.
pub trait PsClient: Sync {
    /// Pull the full parameter vector plus the model version of the cut.
    fn pull_with_version(&self, worker: usize) -> Result<(Vec<f32>, u64), PsNetError>;
    /// Push this worker's full gradient vector.
    fn push(&self, worker: usize, grads: &[f32]) -> Result<(), PsNetError>;
    /// Retire the worker from the consistency gate (idempotent).
    fn retire(&self, worker: usize) -> Result<(), PsNetError>;
    /// Read the full parameter vector without counting as a worker pull.
    fn snapshot(&self) -> Result<Vec<f32>, PsNetError>;
    /// Aggregated traffic/staleness statistics.
    fn stats(&self) -> Result<PsStats, PsNetError>;
    /// The (normalized) consistency mode in effect.
    fn consistency(&self) -> Consistency;
    /// Model dimension.
    fn len(&self) -> usize;
    /// True when the model is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl PsClient for ParameterServer {
    fn pull_with_version(&self, worker: usize) -> Result<(Vec<f32>, u64), PsNetError> {
        Ok(ParameterServer::pull_with_version(self, worker))
    }
    fn push(&self, worker: usize, grads: &[f32]) -> Result<(), PsNetError> {
        ParameterServer::push(self, worker, grads);
        Ok(())
    }
    fn retire(&self, worker: usize) -> Result<(), PsNetError> {
        ParameterServer::retire_worker(self, worker);
        Ok(())
    }
    fn snapshot(&self) -> Result<Vec<f32>, PsNetError> {
        Ok(ParameterServer::snapshot(self))
    }
    fn stats(&self) -> Result<PsStats, PsNetError> {
        Ok(ParameterServer::stats(self))
    }
    fn consistency(&self) -> Consistency {
        ParameterServer::consistency(self)
    }
    fn len(&self) -> usize {
        ParameterServer::len(self)
    }
}

// ---------------------------------------------------------------------------
// Remote client
// ---------------------------------------------------------------------------

/// Client for parameter-server shards running as separate processes, one
/// endpoint per shard. The model is split into contiguous elementwise
/// slices with the same `div_ceil` bounds the in-process server uses, so
/// remote and local sharding are interchangeable bit-for-bit.
pub struct RemotePs {
    /// Global slice boundaries: shard `i` owns `bounds[i]..bounds[i+1]`.
    bounds: Vec<usize>,
    dim: usize,
    mode: Consistency,
    /// Control connection per shard (init/snapshot/stats/shutdown).
    controls: Vec<Mutex<Framed>>,
    /// Data connections: `conns[worker][shard]`. Each trainer worker gets
    /// its own connection per shard because sync/SSP pushes block
    /// server-side — workers must not serialize on a shared socket.
    conns: Vec<Vec<Mutex<Framed>>>,
    /// Trainer-side observability: RPC spans, frame telemetry, and the
    /// merge target for shard traces/counters shipped back in `Bye`.
    obs: Obs,
}

fn rpc(framed: &mut Framed, req: &PsRequest) -> Result<PsResponse, PsNetError> {
    framed.send(&req.to_bytes())?;
    match framed.recv()? {
        Some(bytes) => {
            let resp = PsResponse::from_bytes(&bytes)?;
            if let PsResponse::Err { msg } = resp {
                return Err(PsNetError::Protocol(format!("shard rejected request: {msg}")));
            }
            Ok(resp)
        }
        None => Err(PsNetError::Protocol("shard closed mid-request".to_string())),
    }
}

impl RemotePs {
    /// Connect to the shard processes at `endpoints`, initialise each with
    /// its slice of `initial`, and open one data connection per
    /// (worker, shard) pair. Read deadlines on every connection are set to
    /// `io_timeout_ns`, so a dead shard surfaces as a typed error, bounded.
    pub fn connect(
        endpoints: &[Endpoint],
        initial: &[f32],
        n_workers: usize,
        mode: Consistency,
        opt: OptSpec,
        connect_timeout_ns: u64,
        io_timeout_ns: u64,
    ) -> Result<Self, PsNetError> {
        Self::connect_with_obs(
            endpoints,
            initial,
            n_workers,
            mode,
            opt,
            connect_timeout_ns,
            io_timeout_ns,
            Obs::default(),
        )
    }

    /// [`RemotePs::connect`] with observability: every connection gets RPC
    /// frame telemetry (`rpc.ps.s{shard}.*`), pull/push carry the caller's
    /// span context so shard spans parent under trainer RPCs, and
    /// [`RemotePs::shutdown`] merges each shard's trace and counters back
    /// into `obs` under a `ps{shard}/` prefix.
    #[allow(clippy::too_many_arguments)]
    pub fn connect_with_obs(
        endpoints: &[Endpoint],
        initial: &[f32],
        n_workers: usize,
        mode: Consistency,
        opt: OptSpec,
        connect_timeout_ns: u64,
        io_timeout_ns: u64,
        obs: Obs,
    ) -> Result<Self, PsNetError> {
        if endpoints.is_empty() {
            return Err(PsNetError::Protocol("no shard endpoints".to_string()));
        }
        // Same normalization as ParameterServer::new, so `consistency()`
        // agrees between the two implementations.
        let mode = match mode {
            Consistency::Ssp { slack: 0 } => Consistency::Sync,
            other => other,
        };
        let clock = Clock::monotonic();
        let dim = initial.len();
        let n_shards = endpoints.len().clamp(1, dim.max(1));
        let per = dim.div_ceil(n_shards);
        let mut bounds = Vec::with_capacity(n_shards + 1);
        bounds.push(0);
        let mut off = 0;
        for _ in 0..n_shards {
            off = (off + per).min(dim);
            bounds.push(off);
        }
        let timeout = Duration::from_nanos(io_timeout_ns);
        let trace_id = obs.trace().map(|t| t.trace_id()).unwrap_or(0);
        // One FrameStats per shard label, shared by the control and every
        // worker's data connection to that shard (counters are additive).
        let stats: Vec<_> = (0..n_shards)
            .map(|i| FrameStats::from_obs(&obs, &format!("ps.s{i}"), ps_request_name, ps_response_name))
            .collect();
        let mut controls = Vec::with_capacity(n_shards);
        for (i, ep) in endpoints.iter().take(n_shards).enumerate() {
            let conn = connect(ep, &clock, connect_timeout_ns)?;
            conn.set_read_timeout(Some(timeout))?;
            let mut framed = Framed::new(conn).with_stats(stats[i].clone());
            let req = PsRequest::Init {
                params: initial[bounds[i]..bounds[i + 1]].to_vec(),
                n_workers: n_workers as u32,
                mode,
                opt,
                trace: obs.is_enabled(),
                trace_id,
                // Shard salts live above the shuffle workers' range
                // (driver 0, shuffle worker w → w+1) so merged span ids
                // never collide across subsystems.
                salt: 1001 + i as u64,
            };
            match rpc(&mut framed, &req)? {
                PsResponse::InitOk => {}
                other => return Err(PsNetError::Protocol(format!("unexpected init reply from {ep}: {other:?}"))),
            }
            controls.push(Mutex::new(framed));
        }
        let mut conns = Vec::with_capacity(n_workers);
        for _ in 0..n_workers {
            let mut per_shard = Vec::with_capacity(n_shards);
            for (i, ep) in endpoints.iter().take(n_shards).enumerate() {
                let conn = connect(ep, &clock, connect_timeout_ns)?;
                conn.set_read_timeout(Some(timeout))?;
                per_shard.push(Mutex::new(Framed::new(conn).with_stats(stats[i].clone())));
            }
            conns.push(per_shard);
        }
        Ok(Self { bounds, dim, mode, controls, conns, obs })
    }

    /// Number of shard processes.
    pub fn n_shards(&self) -> usize {
        self.controls.len()
    }

    /// Tell every shard process to exit (replying `Bye`), closing all
    /// connections. Errors are swallowed: a shard that already died has
    /// already "shut down". When observability is on, each shard's `Bye`
    /// trace merges into this client's sink under a `ps{shard}/` track
    /// prefix and its counters land as `ps{shard}.{name}` (via
    /// `counter_max`, so a re-delivered snapshot cannot double-count).
    pub fn shutdown(self) {
        // Close data connections first so shard-side handlers drain.
        drop(self.conns);
        for (shard, control) in self.controls.iter().enumerate() {
            let mut framed = lock_plain(control);
            let _ = framed.send(&PsRequest::Shutdown.to_bytes());
            if let Ok(Some(bytes)) = framed.recv() {
                if let Ok(PsResponse::Bye { counters, trace }) = PsResponse::from_bytes(&bytes) {
                    self.obs.import_trace(&format!("ps{shard}/"), trace);
                    for (name, v) in counters {
                        self.obs.counter_max(&format!("ps{shard}.{name}"), v);
                    }
                }
            }
        }
    }

    fn conn(&self, worker: usize, shard: usize) -> Result<&Mutex<Framed>, PsNetError> {
        self.conns
            .get(worker)
            .and_then(|per| per.get(shard))
            .ok_or_else(|| PsNetError::Protocol(format!("no connection for worker {worker} shard {shard}")))
    }
}

impl PsClient for RemotePs {
    fn pull_with_version(&self, worker: usize) -> Result<(Vec<f32>, u64), PsNetError> {
        // One RPC span per pull on this worker's own track; its context
        // rides every shard request so shard-side spans parent under it.
        let span = self.obs.span(&format!("ps.w{worker}"), "rpc.ps.pull");
        let ctx = span.context();
        let mut params = Vec::with_capacity(self.dim);
        let mut version = 0u64;
        for shard in 0..self.n_shards() {
            let mut framed = lock_plain(self.conn(worker, shard)?);
            match rpc(&mut framed, &PsRequest::Pull { worker: worker as u32, ctx })? {
                PsResponse::Pulled { params: slice, version: v } => {
                    if shard == 0 {
                        version = v;
                    }
                    params.extend_from_slice(&slice);
                }
                other => return Err(PsNetError::Protocol(format!("unexpected pull reply: {other:?}"))),
            }
        }
        if params.len() != self.dim {
            return Err(PsNetError::Protocol(format!("pulled {} parameters, model has {}", params.len(), self.dim)));
        }
        Ok((params, version))
    }

    fn push(&self, worker: usize, grads: &[f32]) -> Result<(), PsNetError> {
        if grads.len() != self.dim {
            return Err(PsNetError::Protocol(format!("pushed {} gradients, model has {}", grads.len(), self.dim)));
        }
        let span = self.obs.span(&format!("ps.w{worker}"), "rpc.ps.push");
        let ctx = span.context();
        // Ascending shard order on every worker: sync-mode pushes barrier
        // per shard, and a uniform traversal order keeps the rounds in
        // lockstep (no worker can hold shard k's round open while another
        // waits on shard j < k).
        for shard in 0..self.n_shards() {
            let slice = &grads[self.bounds[shard]..self.bounds[shard + 1]];
            let mut framed = lock_plain(self.conn(worker, shard)?);
            match rpc(&mut framed, &PsRequest::Push { worker: worker as u32, ctx, grads: slice.to_vec() })? {
                PsResponse::Pushed => {}
                other => return Err(PsNetError::Protocol(format!("unexpected push reply: {other:?}"))),
            }
        }
        Ok(())
    }

    fn retire(&self, worker: usize) -> Result<(), PsNetError> {
        for shard in 0..self.n_shards() {
            let mut framed = lock_plain(self.conn(worker, shard)?);
            match rpc(&mut framed, &PsRequest::Retire { worker: worker as u32 })? {
                PsResponse::Retired => {}
                other => return Err(PsNetError::Protocol(format!("unexpected retire reply: {other:?}"))),
            }
        }
        Ok(())
    }

    fn snapshot(&self) -> Result<Vec<f32>, PsNetError> {
        let mut params = Vec::with_capacity(self.dim);
        for control in &self.controls {
            let mut framed = lock_plain(control);
            match rpc(&mut framed, &PsRequest::Snapshot)? {
                PsResponse::Snapshot { params: slice } => params.extend_from_slice(&slice),
                other => return Err(PsNetError::Protocol(format!("unexpected snapshot reply: {other:?}"))),
            }
        }
        Ok(params)
    }

    fn stats(&self) -> Result<PsStats, PsNetError> {
        // Aggregate across shards: traffic sums, version/staleness maxes,
        // per-worker breakdowns folded elementwise.
        let mut agg = PsStats {
            pulls: 0,
            pushes: 0,
            steps: 0,
            bytes_transferred: 0,
            model_version: 0,
            max_staleness: 0,
            ssp_waits: 0,
            ssp_wait_nanos: 0,
            workers: Vec::new(),
        };
        for control in &self.controls {
            let mut framed = lock_plain(control);
            let st = match rpc(&mut framed, &PsRequest::Stats)? {
                PsResponse::Stats { stats } => stats,
                other => return Err(PsNetError::Protocol(format!("unexpected stats reply: {other:?}"))),
            };
            agg.pulls += st.pulls;
            agg.pushes += st.pushes;
            agg.steps = agg.steps.max(st.steps);
            agg.bytes_transferred += st.bytes_transferred;
            agg.model_version = agg.model_version.max(st.model_version);
            agg.max_staleness = agg.max_staleness.max(st.max_staleness);
            agg.ssp_waits += st.ssp_waits;
            agg.ssp_wait_nanos += st.ssp_wait_nanos;
            if agg.workers.len() < st.workers.len() {
                agg.workers.resize_with(st.workers.len(), || WorkerPsStats {
                    pulls: 0,
                    pushes: 0,
                    max_staleness: 0,
                    staleness_hist: Vec::new(),
                    waits: 0,
                    wait_nanos: 0,
                });
            }
            for (a, w) in agg.workers.iter_mut().zip(st.workers) {
                a.pulls += w.pulls;
                a.pushes += w.pushes;
                a.max_staleness = a.max_staleness.max(w.max_staleness);
                if a.staleness_hist.len() < w.staleness_hist.len() {
                    a.staleness_hist.resize(w.staleness_hist.len(), 0);
                }
                for (ah, wh) in a.staleness_hist.iter_mut().zip(w.staleness_hist) {
                    *ah += wh;
                }
                a.waits += w.waits;
                a.wait_nanos += w.wait_nanos;
            }
        }
        Ok(agg)
    }

    fn consistency(&self) -> Consistency {
        self.mode
    }

    fn len(&self) -> usize {
        self.dim
    }
}

// ---------------------------------------------------------------------------
// Shard server process
// ---------------------------------------------------------------------------

/// Serve one parameter-server shard: accept a control connection whose
/// first message is `Init` (carrying the shard's parameter slice), build a
/// 1-shard [`ParameterServer`] from it, then serve pull/push from any
/// number of subsequent connections until `Shutdown` arrives — or every
/// connection closes (a dead driver's sockets close, and the shard must
/// exit rather than leak).
pub fn serve_ps_shard(listener: &Listener, accept_timeout_ns: u64) -> Result<(), PsNetError> {
    let clock = Clock::monotonic();
    let conn = listener.accept_deadline(&clock, accept_timeout_ns)?;
    let mut control = Framed::new(conn);
    let Some(first) = control.recv()? else {
        return Ok(());
    };
    let (params, n_workers, mode, opt, trace, trace_id, salt) = match PsRequest::from_bytes(&first)? {
        PsRequest::Init { params, n_workers, mode, opt, trace, trace_id, salt } => {
            (params, n_workers as usize, mode, opt, trace, trace_id, salt)
        }
        other => return Err(PsNetError::Protocol(format!("expected Init, got {other:?}"))),
    };
    // Shard-side observability under the *logical* clock: per-request spans
    // land on per-worker tracks (`ps.w{n}`), so timestamps depend only on
    // each worker's own request order and the merged trace is byte-stable.
    // The inner ParameterServer stays uninstrumented — its apply spans
    // would be emitted by whichever worker's push closes the round, a
    // nondeterministic track assignment.
    let obs = if trace { Obs::enabled_with_identity(Clock::logical(), trace_id, salt) } else { Obs::default() };
    let server = Arc::new(ParameterServer::new(params, 1, n_workers.max(1), mode, move || opt.build()));
    control.send(&PsResponse::InitOk.to_bytes())?;

    let shutdown = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let server = &server;
        let shutdown = &shutdown;
        let obs = &obs;
        // The control connection is just another request stream; when it
        // ends (Shutdown, or the driver process dying and the kernel
        // closing its sockets) the accept loop stops.
        scope.spawn(move || {
            let _ = serve_conn(control, server, shutdown, obs);
            shutdown.store(true, Ordering::SeqCst);
        });
        loop {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept_deadline(&clock, 50_000_000) {
                Ok(conn) => {
                    scope.spawn(move || {
                        let _ = serve_conn(Framed::new(conn), server, shutdown, obs);
                    });
                }
                Err(TransportError::Timeout { .. }) => continue,
                Err(_) => break,
            }
        }
    });
    Ok(())
}

/// Serve one connection's request stream against the shard server. Pull
/// and push requests open spans on the requesting worker's track
/// (`ps.w{n}`), parented under the trainer-side RPC span whose context
/// rode the request — a deterministic assignment, unlike instrumenting the
/// inner [`ParameterServer`] (whose applies run on the last pusher).
fn serve_conn(
    mut framed: Framed,
    server: &ParameterServer,
    shutdown: &AtomicBool,
    obs: &Obs,
) -> Result<(), PsNetError> {
    loop {
        let Some(bytes) = framed.recv()? else {
            return Ok(());
        };
        let resp = match PsRequest::from_bytes(&bytes)? {
            PsRequest::Init { .. } => PsResponse::Err { msg: "duplicate Init".to_string() },
            PsRequest::Pull { worker, ctx } => {
                let _span = obs.span_child_of(&format!("ps.w{worker}"), "ps.pull", ctx);
                obs.metric_add("ps.pulls", 1);
                if (worker as usize) < server.n_workers() {
                    let (params, version) = ParameterServer::pull_with_version(server, worker as usize);
                    PsResponse::Pulled { params, version }
                } else {
                    PsResponse::Err { msg: format!("worker {worker} out of range") }
                }
            }
            PsRequest::Push { worker, ctx, grads } => {
                let _span = obs.span_child_of(&format!("ps.w{worker}"), "ps.push", ctx);
                obs.metric_add("ps.pushes", 1);
                if (worker as usize) >= server.n_workers() {
                    PsResponse::Err { msg: format!("worker {worker} out of range") }
                } else if grads.len() != ParameterServer::len(server) {
                    PsResponse::Err {
                        msg: format!("gradient length {} != shard size {}", grads.len(), ParameterServer::len(server)),
                    }
                } else {
                    ParameterServer::push(server, worker as usize, &grads);
                    PsResponse::Pushed
                }
            }
            PsRequest::Retire { worker } => {
                if (worker as usize) < server.n_workers() {
                    ParameterServer::retire_worker(server, worker as usize);
                }
                PsResponse::Retired
            }
            PsRequest::Snapshot => PsResponse::Snapshot { params: ParameterServer::snapshot(server) },
            PsRequest::Stats => PsResponse::Stats { stats: ParameterServer::stats(server) },
            PsRequest::Shutdown => {
                let trace = obs.trace().map(|t| t.events()).unwrap_or_default();
                let bye = PsResponse::Bye { counters: obs.counter_snapshot(), trace };
                framed.send(&bye.to_bytes())?;
                shutdown.store(true, Ordering::SeqCst);
                return Ok(());
            }
        };
        framed.send(&resp.to_bytes())?;
    }
}

// ---------------------------------------------------------------------------
// Generic worker pool
// ---------------------------------------------------------------------------

/// Retires the worker from the consistency gate when its closure returns —
/// including by unwinding — mirroring [`crate::worker::run_workers`]'s
/// guard but over the client trait (a remote retire that fails is ignored:
/// the shard is gone, nothing is gated).
struct RetireClient<'a, C: PsClient> {
    client: &'a C,
    worker: usize,
}

impl<C: PsClient> Drop for RetireClient<'_, C> {
    fn drop(&mut self) {
        let _ = self.client.retire(self.worker);
    }
}

/// Run `n_workers` copies of `work(worker_id, client)` on threads and wait
/// for all of them — the [`crate::worker::run_workers`] pool generalized
/// over [`PsClient`], with fallible workers: the first error is returned
/// after every worker has stopped (each worker's own connections surface
/// their own timeouts, so one dead shard stops them all, bounded).
pub fn run_client_workers<C, F>(client: &C, n_workers: usize, work: F) -> Result<(), PsNetError>
where
    C: PsClient,
    F: Fn(usize, &C) -> Result<(), PsNetError> + Sync,
{
    assert!(n_workers > 0);
    let first_err: Mutex<Option<PsNetError>> = Mutex::new(None);
    // Vector-clock plumbing (debug builds), exactly as in `run_workers`.
    let pool = JoinPool::new();
    std::thread::scope(|scope| {
        for w in 0..n_workers {
            let work = &work;
            let pool = &pool;
            let first_err = &first_err;
            let handoff = Handoff::fork();
            scope.spawn(move || {
                handoff.adopt();
                let _depart = pool.depart_guard();
                let _retire = RetireClient { client, worker: w };
                if let Err(e) = work(w, client) {
                    lock_plain(first_err).get_or_insert(e);
                }
            });
        }
    });
    pool.absorb();
    let err = lock_plain(&first_err).take();
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("agl-psnet-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Spin up `n` shard servers on UDS listeners inside `scope`-less
    /// threads via `std::thread::scope` and run `f` against a RemotePs.
    fn with_remote<T: Send>(
        tag: &str,
        n_shards: usize,
        initial: Vec<f32>,
        n_workers: usize,
        mode: Consistency,
        opt: OptSpec,
        f: impl FnOnce(&RemotePs) -> T + Send,
    ) -> T {
        let dir = temp_dir(tag);
        let eps: Vec<Endpoint> = (0..n_shards).map(|i| Endpoint::Unix(dir.join(format!("s{i}.sock")))).collect();
        let listeners: Vec<Listener> = eps.iter().map(|e| Listener::bind(e).unwrap()).collect();
        let out = std::thread::scope(|s| {
            for l in &listeners {
                s.spawn(move || serve_ps_shard(l, 5_000_000_000).unwrap());
            }
            let remote =
                RemotePs::connect(&eps, &initial, n_workers, mode, opt, 5_000_000_000, 10_000_000_000).unwrap();
            let out = f(&remote);
            remote.shutdown();
            out
        });
        drop(listeners);
        std::fs::remove_dir_all(&dir).ok();
        out
    }

    #[test]
    fn remote_matches_local_bit_for_bit_sync_sgd() {
        let initial: Vec<f32> = (0..13).map(|i| i as f32 * 0.25).collect();
        let n_workers = 3;
        let steps = 4;
        // Local reference: 2-shard in-process server.
        let local = Arc::new(ParameterServer::new(initial.clone(), 2, n_workers, Consistency::Sync, || {
            Box::new(Sgd::new(0.1))
        }));
        crate::worker::run_workers(&local, n_workers, |w, ps| {
            for step in 0..steps {
                let (x, _v) = ParameterServer::pull_with_version(ps, w);
                let g: Vec<f32> = x.iter().map(|xi| xi * 0.5 + (w as f32) - (step as f32) * 0.1).collect();
                ParameterServer::push(ps, w, &g);
            }
        });
        let expected = local.snapshot();

        let got =
            with_remote("bitident", 2, initial, n_workers, Consistency::Sync, OptSpec::Sgd { lr: 0.1 }, |remote| {
                run_client_workers(remote, n_workers, |w, c| {
                    for step in 0..steps {
                        let (x, _v) = c.pull_with_version(w)?;
                        let g: Vec<f32> = x.iter().map(|xi| xi * 0.5 + (w as f32) - (step as f32) * 0.1).collect();
                        c.push(w, &g)?;
                    }
                    Ok(())
                })
                .unwrap();
                PsClient::snapshot(remote).unwrap()
            });
        assert_eq!(expected.len(), got.len());
        for (i, (e, g)) in expected.iter().zip(&got).enumerate() {
            assert_eq!(e.to_bits(), g.to_bits(), "param {i}: {e} vs {g}");
        }
    }

    #[test]
    fn remote_stats_aggregate_across_shards() {
        let got = with_remote("stats", 2, vec![0.0; 8], 2, Consistency::Async, OptSpec::Sgd { lr: 0.01 }, |remote| {
            run_client_workers(remote, 2, |w, c| {
                let (_x, _v) = c.pull_with_version(w)?;
                c.push(w, &vec![0.1; 8])?;
                Ok(())
            })
            .unwrap();
            PsClient::stats(remote).unwrap()
        });
        assert_eq!(got.pulls, 4, "2 workers × 2 shards");
        assert_eq!(got.pushes, 4);
        assert_eq!(got.workers.len(), 2);
        assert!(got.bytes_transferred > 0);
    }

    #[test]
    fn dead_shard_is_a_typed_error_not_a_hang() {
        let dir = temp_dir("dead");
        let ep = Endpoint::Unix(dir.join("s0.sock"));
        let listener = Listener::bind(&ep).unwrap();
        let eps = vec![ep];
        std::thread::scope(|s| {
            // A shard that dies right after init: accepts the control and
            // data connections, answers Init, then drops everything — the
            // kernel closes its sockets exactly as a SIGKILLed process's
            // would, with no sleeps involved.
            s.spawn(|| {
                let clock = Clock::monotonic();
                let mut control = Framed::new(listener.accept_deadline(&clock, 5_000_000_000).unwrap());
                let init = control.recv().unwrap().unwrap();
                assert!(matches!(PsRequest::from_bytes(&init).unwrap(), PsRequest::Init { .. }));
                control.send(&PsResponse::InitOk.to_bytes()).unwrap();
                let data = listener.accept_deadline(&clock, 5_000_000_000).unwrap();
                drop(data);
                drop(control);
            });
            let remote = RemotePs::connect(
                &eps,
                &[1.0, 2.0],
                1,
                Consistency::Async,
                OptSpec::Sgd { lr: 0.1 },
                5_000_000_000,
                2_000_000_000, // 2s read deadline bounds any residual wait
            )
            .unwrap();
            // The shard is gone; the next pull must fail typed, not hang.
            let err = remote.pull_with_version(0).unwrap_err();
            assert!(matches!(err, PsNetError::Transport(_) | PsNetError::Protocol(_)), "{err}");
        });
        drop(listener);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn obs_parents_shard_spans_under_trainer_rpcs() {
        let dir = temp_dir("obs");
        let eps: Vec<Endpoint> = (0..2).map(|i| Endpoint::Unix(dir.join(format!("s{i}.sock")))).collect();
        let listeners: Vec<Listener> = eps.iter().map(|e| Listener::bind(e).unwrap()).collect();
        let obs = Obs::enabled_with_identity(Clock::logical(), 77, 0);
        std::thread::scope(|s| {
            for l in &listeners {
                s.spawn(move || serve_ps_shard(l, 5_000_000_000).unwrap());
            }
            let remote = RemotePs::connect_with_obs(
                &eps,
                &[0.0; 8],
                2,
                Consistency::Sync,
                OptSpec::Sgd { lr: 0.1 },
                5_000_000_000,
                10_000_000_000,
                obs.clone(),
            )
            .unwrap();
            run_client_workers(&remote, 2, |w, c| {
                let (x, _v) = c.pull_with_version(w)?;
                c.push(w, &vec![0.1; x.len()])?;
                Ok(())
            })
            .unwrap();
            remote.shutdown();
        });
        let events = obs.trace().unwrap().events();
        let client_ids: std::collections::HashSet<u64> =
            events.iter().filter(|e| e.name.starts_with("rpc.ps.")).map(|e| e.span_id).collect();
        assert!(!client_ids.is_empty(), "trainer-side RPC spans recorded");
        let shard_spans: Vec<_> =
            events.iter().filter(|e| e.track.starts_with("ps") && e.track.contains('/')).collect();
        assert!(!shard_spans.is_empty(), "shard traces merged into the client sink");
        for e in &shard_spans {
            assert!(
                client_ids.contains(&e.parent_id),
                "shard span {} on {} has parent {} outside the trainer RPC spans",
                e.name,
                e.track,
                e.parent_id
            );
        }
        let m = obs.metrics().unwrap();
        // Each worker's single pull/push touches both shards once.
        assert_eq!(m.get("ps0.ps.pulls"), 2, "{}", m.render());
        assert_eq!(m.get("ps1.ps.pushes"), 2, "{}", m.render());
        assert!(m.get("rpc.ps.s0.send.pull.frames") >= 2, "{}", m.render());
        assert!(m.get("rpc.ps.s1.recv.pulled.bytes") > 0, "{}", m.render());
        drop(listeners);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wire_codecs_round_trip() {
        let reqs = [
            PsRequest::Init {
                params: vec![1.0, -2.5],
                n_workers: 3,
                mode: Consistency::Ssp { slack: 4 },
                opt: OptSpec::Adam { lr: 0.001 },
                trace: true,
                trace_id: 42,
                salt: 1001,
            },
            PsRequest::Pull { worker: 7, ctx: Some(SpanContext { trace_id: 42, span_id: 99 }) },
            PsRequest::Push { worker: 1, ctx: None, grads: vec![0.5; 3] },
            PsRequest::Retire { worker: 2 },
            PsRequest::Snapshot,
            PsRequest::Stats,
            PsRequest::Shutdown,
        ];
        for r in reqs {
            let b = r.to_bytes();
            assert_eq!(format!("{r:?}"), format!("{:?}", PsRequest::from_bytes(&b).unwrap()));
        }
        let resps = [
            PsResponse::InitOk,
            PsResponse::Pulled { params: vec![9.0], version: 8 },
            PsResponse::Pushed,
            PsResponse::Retired,
            PsResponse::Snapshot { params: vec![] },
            PsResponse::Stats {
                stats: PsStats {
                    pulls: 1,
                    pushes: 2,
                    steps: 3,
                    bytes_transferred: 4,
                    model_version: 5,
                    max_staleness: 6,
                    ssp_waits: 7,
                    ssp_wait_nanos: 8,
                    workers: vec![WorkerPsStats {
                        pulls: 1,
                        pushes: 1,
                        max_staleness: 0,
                        staleness_hist: vec![1, 0],
                        waits: 0,
                        wait_nanos: 0,
                    }],
                },
            },
            PsResponse::Bye {
                counters: vec![("ps.pulls".to_string(), 4)],
                trace: vec![TraceEvent {
                    track: "ps.w0".to_string(),
                    seq: 0,
                    name: "ps.pull".to_string(),
                    ts: 1,
                    dur: 2,
                    depth: 0,
                    args: vec![("bytes".to_string(), 8)],
                    span_id: 11,
                    parent_id: 12,
                }],
            },
            PsResponse::Err { msg: "nope".to_string() },
        ];
        for r in resps {
            let b = r.to_bytes();
            assert_eq!(format!("{r:?}"), format!("{:?}", PsResponse::from_bytes(&b).unwrap()));
        }
    }
}
