//! `agl-ps` — the parameter-server substrate.
//!
//! Once GraphFlat has turned the graph into independent k-hop neighborhoods,
//! *"the training of a GNN model becomes similar to the training of a
//! conventional machine learning model"* (§3.3): workers hold disjoint
//! partitions of the training data and only exchange model state through
//! the parameter servers. This crate reproduces that architecture
//! in-process:
//!
//! * [`ParameterServer`] — the flat model vector sharded across `S` server
//!   shards, each with its own server-side optimizer state (the Kunpeng
//!   deployment the paper builds on applies the optimizer on the servers).
//! * **Pull/push protocol** — workers pull the full parameter vector at the
//!   start of a step and push gradients at the end. Traffic is metered so
//!   the cluster simulator can be calibrated from real byte counts.
//! * **Consistency spectrum** — one [`Consistency`] enum picks the
//!   coordination mode (GraphLab's lesson: a spectrum, not a binary):
//!   - `Sync` — pushes from all `n_workers` are combined in worker-id order
//!     behind a barrier (bit-deterministic) and averaged into one optimizer
//!     step. Used for the convergence-vs-workers study (Fig. 7).
//!   - `Async` — each push is applied immediately (Hogwild style); workers
//!     never block, staleness is measured but unbounded.
//!   - `Ssp { slack }` — stale-synchronous parallel: pushes block only when
//!     applying them would drive another in-flight worker's staleness past
//!     `slack`; every applied gradient provably satisfies
//!     `staleness ≤ slack`. `Ssp { slack: 0 }` normalizes to `Sync`.
//! * **Lock-order tracking** — the server's barrier/version/shard mutexes
//!   follow a canonical acquisition order, enforced dynamically in debug
//!   builds by [`locks::LockOrderTracker`] and statically by the
//!   `agl-analysis` `lock-order` rule.
//! * **Happens-before tracking** — debug builds carry per-thread vector
//!   clocks ([`hb`]) advanced at lock acquire/release, worker spawn/join,
//!   and release/acquire atomics; [`hb::TrackedAtomic`] aborts on plain
//!   conflicting accesses with unordered clocks, naming both sites — the
//!   dynamic half of the `agl-analysis` `atomics` rule.

pub mod hb;
pub mod locks;
pub mod net;
pub mod server;
pub mod worker;

pub use hb::{Handoff, HbTracker, JoinPool, TrackedAtomic};
pub use locks::{LockClass, LockOrderTracker, TrackedGuard, TrackedMutex};
pub use net::{run_client_workers, serve_ps_shard, OptSpec, PsClient, PsNetError, RemotePs};
pub use server::{Consistency, ParameterServer, PsStats, WorkerPsStats};
pub use worker::run_workers;
