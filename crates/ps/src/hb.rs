//! Debug-mode vector-clock happens-before tracking — the dynamic half of
//! the `atomics` static rule in `agl-analysis`.
//!
//! Every thread that touches tracked state carries a **vector clock**: a
//! map from thread slot to that thread's logical time. Clocks advance at
//! the real synchronization points of the parameter server:
//!
//! * [`TrackedMutex`](crate::locks::TrackedMutex) acquire/release — the
//!   acquiring thread joins the lock's clock; the releasing thread
//!   publishes its own clock into the lock and bumps its own component
//!   (condvar waits release and reacquire the same lock, so the
//!   happens-before edge flows through the lock clock);
//! * thread spawn/join — [`Handoff`] carries the parent's clock into a
//!   spawned closure, [`JoinPool`] carries every worker's clock back to
//!   the joiner;
//! * `Release`/`Acquire` (and stronger) accesses on a [`TrackedAtomic`] —
//!   a release store publishes the writer's clock into the atomic's sync
//!   clock, an acquire load joins it.
//!
//! A [`TrackedAtomic`] additionally remembers the last *plain*
//! (`Relaxed`) write and the plain reads since, each with its
//! `#[track_caller]` site. A plain access whose thread clock is not
//! ordered after a conflicting recorded access is a **race**: the two
//! sites could execute in either order with no happens-before edge
//! between them, which is exactly the `max_staleness` bug PR 3 fixed by
//! hand. Debug builds abort naming both sites. Two deliberate policy
//! holes, mirrored by the static rule and documented in CONCURRENCY.md:
//! `Relaxed` read-modify-writes are exempt (monotone statistics counters
//! are commutative — the *values* merge even though the *orders* race),
//! and sync-ordered accesses are never themselves flagged (the atomic's
//! modification order plus the declared ordering is their correctness
//! argument).
//!
//! Release builds compile all of this to nothing: the wrappers forward
//! straight to the underlying atomic, and the clock plumbing is a no-op.

use std::cell::RefCell;
use std::fmt;
use std::panic::Location;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A vector clock: `clock[slot]` is the latest logical time of the thread
/// owning `slot` that the clock's owner has synchronized with.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The component for `slot` (0 when never synchronized with).
    pub fn get(&self, slot: usize) -> u64 {
        self.0.get(slot).copied().unwrap_or(0)
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VClock) {
        if other.0.len() > self.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(&other.0) {
            *mine = (*mine).max(*theirs);
        }
    }

    fn bump(&mut self, slot: usize) {
        if slot >= self.0.len() {
            self.0.resize(slot + 1, 0);
        }
        self.0[slot] += 1;
    }
}

static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's slot in every vector clock, assigned on first use.
    static SLOT: usize = NEXT_SLOT.fetch_add(1, Ordering::Relaxed);
    /// This thread's own clock; starts with its own component at 1.
    static CLOCK: RefCell<VClock> = {
        let mut c = VClock::default();
        c.bump(SLOT.with(|s| *s));
        RefCell::new(c)
    };
}

fn with_thread_clock<R>(f: impl FnOnce(usize, &mut VClock) -> R) -> R {
    let slot = SLOT.with(|s| *s);
    CLOCK.with(|c| f(slot, &mut c.borrow_mut()))
}

/// One recorded plain access: which thread, at what logical time, where.
#[derive(Debug, Clone, Copy)]
struct Access {
    slot: usize,
    count: u64,
    site: &'static Location<'static>,
}

/// The happens-before clock of one synchronization object (a lock, a join
/// pool, or the sync side of a tracked atomic): releases publish into it,
/// acquires join from it.
#[derive(Debug, Default)]
pub struct HbTracker {
    clock: Mutex<VClock>,
}

impl HbTracker {
    /// A fresh tracker with an empty clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire edge: the current thread joins everything published here.
    pub fn acquired_by_current(&self) {
        if !cfg!(debug_assertions) {
            return;
        }
        let clock = self.clock.lock().unwrap_or_else(PoisonError::into_inner);
        with_thread_clock(|_, mine| mine.join(&clock));
    }

    /// Release edge: the current thread publishes its clock here, then
    /// bumps its own component so later accesses are ordered after the
    /// release point.
    pub fn released_by_current(&self) {
        if !cfg!(debug_assertions) {
            return;
        }
        let mut clock = self.clock.lock().unwrap_or_else(PoisonError::into_inner);
        with_thread_clock(|slot, mine| {
            clock.join(mine);
            mine.bump(slot);
        });
    }
}

/// Carries the parent thread's clock into a spawned closure, making
/// everything the parent did *before* the spawn happen-before everything
/// the child does. Create with [`Handoff::fork`] on the spawning thread;
/// call [`Handoff::adopt`] first thing inside the closure.
#[derive(Debug)]
pub struct Handoff {
    parent: VClock,
}

impl Handoff {
    /// Snapshot the spawning thread's clock (bumping it, so the parent's
    /// post-spawn work is *not* ordered before the child's).
    pub fn fork() -> Self {
        let parent = with_thread_clock(|slot, mine| {
            let snap = mine.clone();
            mine.bump(slot);
            snap
        });
        Handoff { parent }
    }

    /// Join the parent's snapshot into the current (child) thread's clock.
    pub fn adopt(self) {
        if !cfg!(debug_assertions) {
            return;
        }
        with_thread_clock(|_, mine| mine.join(&self.parent));
    }
}

/// Collects worker clocks at thread exit and replays them into the joining
/// thread, making everything the workers did happen-before everything the
/// joiner does *after* the join.
#[derive(Debug, Default)]
pub struct JoinPool {
    tracker: HbTracker,
}

/// RAII handle from [`JoinPool::depart_guard`]: publishes the worker's
/// clock into the pool when dropped — including by unwinding, so a
/// panicking worker still hands its history back.
#[derive(Debug)]
pub struct Depart<'a> {
    pool: &'a JoinPool,
}

impl JoinPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish the current (worker) thread's clock into the pool when the
    /// returned guard drops.
    pub fn depart_guard(&self) -> Depart<'_> {
        Depart { pool: self }
    }

    /// Join everything departed workers published into the current
    /// (joining) thread's clock. Call after the threads are really joined
    /// (e.g. after `thread::scope` returns).
    pub fn absorb(&self) {
        self.tracker.acquired_by_current();
    }
}

impl Drop for Depart<'_> {
    fn drop(&mut self) {
        self.pool.tracker.released_by_current();
    }
}

/// The raw-atomic surface [`TrackedAtomic`] wraps: loads, stores, and
/// fetch-adds with an explicit ordering. Implemented for the std atomics
/// the parameter server uses and, transitively, for `Arc` of them — so a
/// metrics-registry counter (`Arc<AtomicU64>`) can be tracked in place.
pub trait AtomicCell {
    /// The plain value the cell holds.
    type Value: Copy;
    /// Atomic load with `order`.
    fn raw_load(&self, order: Ordering) -> Self::Value;
    /// Atomic store of `value` with `order`.
    fn raw_store(&self, value: Self::Value, order: Ordering);
    /// Atomic fetch-add of `delta` with `order`, returning the prior value.
    fn raw_fetch_add(&self, delta: Self::Value, order: Ordering) -> Self::Value;
}

impl AtomicCell for AtomicU64 {
    type Value = u64;
    fn raw_load(&self, order: Ordering) -> u64 {
        self.load(order)
    }
    fn raw_store(&self, value: u64, order: Ordering) {
        self.store(value, order);
    }
    fn raw_fetch_add(&self, delta: u64, order: Ordering) -> u64 {
        self.fetch_add(delta, order)
    }
}

impl AtomicCell for AtomicUsize {
    type Value = usize;
    fn raw_load(&self, order: Ordering) -> usize {
        self.load(order)
    }
    fn raw_store(&self, value: usize, order: Ordering) {
        self.store(value, order);
    }
    fn raw_fetch_add(&self, delta: usize, order: Ordering) -> usize {
        self.fetch_add(delta, order)
    }
}

impl<C: AtomicCell> AtomicCell for Arc<C> {
    type Value = C::Value;
    fn raw_load(&self, order: Ordering) -> C::Value {
        (**self).raw_load(order)
    }
    fn raw_store(&self, value: C::Value, order: Ordering) {
        (**self).raw_store(value, order);
    }
    fn raw_fetch_add(&self, delta: C::Value, order: Ordering) -> C::Value {
        (**self).raw_fetch_add(delta, order)
    }
}

/// Race history of one tracked atomic (debug builds only).
#[derive(Debug, Default)]
struct Meta {
    /// Clock published by release-ordered stores, joined by
    /// acquire-ordered loads.
    sync: VClock,
    /// The last plain (`Relaxed`) store.
    write: Option<Access>,
    /// Plain (`Relaxed`) loads since the last plain store.
    reads: Vec<Access>,
}

/// An atomic checked for happens-before races at runtime. Declaring a
/// field `TrackedAtomic<…>` exempts it from the static `atomics` rule —
/// the two are alternatives: prove the ordering statically (lock, fence,
/// acquire/release, or an `agl-lint: allow(atomics)` justification) or
/// let this wrapper check every access of every debug run.
pub struct TrackedAtomic<C: AtomicCell> {
    cell: C,
    meta: Mutex<Meta>,
}

impl<C: AtomicCell + fmt::Debug> fmt::Debug for TrackedAtomic<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrackedAtomic").field("cell", &self.cell).finish_non_exhaustive()
    }
}

impl<C: AtomicCell> TrackedAtomic<C> {
    /// Track `cell` (any [`AtomicCell`], including `Arc`-shared ones).
    pub fn new(cell: C) -> Self {
        TrackedAtomic { cell, meta: Mutex::new(Meta::default()) }
    }

    /// Atomic load; `Relaxed` loads are checked against the last plain
    /// store, acquire-ordered loads join the atomic's sync clock.
    #[track_caller]
    pub fn load(&self, order: Ordering) -> C::Value {
        if cfg!(debug_assertions) {
            let site = Location::caller();
            let mut meta = self.meta.lock().unwrap_or_else(PoisonError::into_inner);
            with_thread_clock(|slot, mine| {
                if matches!(order, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst) {
                    mine.join(&meta.sync);
                } else {
                    if let Some(w) = meta.write {
                        check_ordered(mine, slot, &w, "Relaxed load", site, "Relaxed store");
                    }
                    meta.reads.push(Access { slot, count: mine.get(slot), site });
                }
            });
        }
        self.cell.raw_load(order)
    }

    /// Atomic store; `Relaxed` stores are checked against the last plain
    /// store *and* every plain load since, release-ordered stores publish
    /// the writer's clock into the atomic's sync clock.
    #[track_caller]
    pub fn store(&self, value: C::Value, order: Ordering) {
        if cfg!(debug_assertions) {
            let site = Location::caller();
            let mut meta = self.meta.lock().unwrap_or_else(PoisonError::into_inner);
            with_thread_clock(|slot, mine| {
                if matches!(order, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst) {
                    meta.sync.join(mine);
                    mine.bump(slot);
                } else {
                    if let Some(w) = meta.write {
                        check_ordered(mine, slot, &w, "Relaxed store", site, "Relaxed store");
                    }
                    for r in &meta.reads {
                        check_ordered(mine, slot, r, "Relaxed store", site, "Relaxed load");
                    }
                    meta.write = Some(Access { slot, count: mine.get(slot), site });
                    meta.reads.clear();
                }
            });
        }
        self.cell.raw_store(value, order);
    }

    /// Atomic fetch-add. `Relaxed` RMWs are the sanctioned
    /// monotone-counter idiom — commutative, merged by the atomic's own
    /// modification order — and are deliberately not race-checked;
    /// release-ordered RMWs publish like a release store.
    #[track_caller]
    pub fn fetch_add(&self, delta: C::Value, order: Ordering) -> C::Value {
        if cfg!(debug_assertions) && matches!(order, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst) {
            let mut meta = self.meta.lock().unwrap_or_else(PoisonError::into_inner);
            with_thread_clock(|slot, mine| {
                if matches!(order, Ordering::AcqRel | Ordering::SeqCst) {
                    mine.join(&meta.sync);
                }
                meta.sync.join(mine);
                mine.bump(slot);
            });
        }
        self.cell.raw_fetch_add(delta, order)
    }
}

/// Abort (debug builds) when `prior` is not ordered before the current
/// access: the two sites are concurrent and conflicting.
fn check_ordered(
    mine: &VClock,
    my_slot: usize,
    prior: &Access,
    what: &str,
    site: &'static Location<'static>,
    prior_what: &str,
) {
    if prior.slot == my_slot || mine.get(prior.slot) >= prior.count {
        return;
    }
    // The whole point: abort the debug run at the first pair of plain
    // conflicting accesses with unordered clocks, naming both sites.
    // agl-lint: allow(no-panic) — see above.
    panic!(
        "happens-before race on tracked atomic: {what} at {site} is unordered with the \
         {prior_what} at {} — no lock, join, or acquire/release edge connects them",
        prior.site
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vclock_join_is_pointwise_max() {
        let mut a = VClock(vec![3, 0, 1]);
        a.join(&VClock(vec![1, 2, 0, 5]));
        assert_eq!(a, VClock(vec![3, 2, 1, 5]));
    }

    #[test]
    fn lock_clock_orders_release_before_acquire() {
        let hb = HbTracker::new();
        let before = with_thread_clock(|slot, mine| (slot, mine.get(slot)));
        hb.released_by_current();
        // The release bumped our own component...
        let after = with_thread_clock(|slot, mine| mine.get(slot));
        assert_eq!(after, before.1 + 1);
        // ...and published the pre-bump clock, which an acquire replays.
        hb.acquired_by_current();
        assert_eq!(with_thread_clock(|slot, mine| mine.get(slot)), after);
    }

    #[test]
    fn relaxed_counter_rmw_plus_load_is_silent() {
        // The sanctioned statistics idiom: concurrent Relaxed fetch_add,
        // Relaxed load afterwards. Values merge; no race report.
        let n = Arc::new(TrackedAtomic::new(AtomicU64::new(0)));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let n = Arc::clone(&n);
                s.spawn(move || {
                    for _ in 0..100 {
                        n.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(n.load(Ordering::Relaxed), 400);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn unordered_plain_store_then_load_aborts_naming_both_sites() {
        let flag = TrackedAtomic::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            s.spawn(|| {
                flag.store(1, Ordering::Relaxed);
            })
            .join()
            .expect("writer thread must not panic");
        });
        // The OS join orders the memory, but no tracked edge does — the
        // race is latent, and the tracker must still reject it.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            flag.load(Ordering::Relaxed);
        }))
        .expect_err("unordered plain load must abort in debug builds");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("happens-before race"), "{msg}");
        assert!(msg.matches("hb.rs").count() >= 2, "both sites must be named: {msg}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn handoff_and_join_pool_order_the_same_shape() {
        let flag = TrackedAtomic::new(AtomicU64::new(0));
        let pool = JoinPool::new();
        let handoff = Handoff::fork();
        std::thread::scope(|s| {
            let flag = &flag;
            let pool = &pool;
            s.spawn(move || {
                handoff.adopt();
                let _depart = pool.depart_guard();
                flag.store(1, Ordering::Relaxed);
            });
        });
        pool.absorb();
        assert_eq!(flag.load(Ordering::Relaxed), 1); // ordered — no abort
    }

    #[cfg(debug_assertions)]
    #[test]
    fn release_acquire_pairing_is_silent() {
        let flag = TrackedAtomic::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            s.spawn(|| {
                flag.store(1, Ordering::Release);
            });
        });
        // Acquire join makes this ordered even without a Handoff.
        let _ = flag.load(Ordering::Acquire);
        let _ = flag.load(Ordering::Relaxed);
    }
}
