//! [`EngineConfig`] — the shared execution knobs every AGL stage takes.
//!
//! GraphFlat, GraphInfer and GraphTrainer each ran on the same small block
//! of engine settings (task counts, thread parallelism, the sampling seed,
//! the observability handle, the time source), historically triplicated
//! field-by-field across `FlatConfig`, `InferConfig` and `TrainOptions`.
//! This type is that block factored out once: the stage configs embed it,
//! and `AglJob`'s `engine()`/`seed()`/`obs()` setters write it in exactly
//! one place instead of fanning out per stage.

use agl_obs::{Clock, Obs};

/// Execution knobs shared by every AGL stage (GraphFlat, GraphInfer,
/// GraphTrainer, and the serving layer).
///
/// Embedded by the stage configs (`FlatConfig::engine`,
/// `InferConfig::engine`, `TrainOptions::engine`, `ServeConfig::engine`);
/// the [`Default`] mirrors the engine defaults those configs always had.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Map tasks per MapReduce job.
    pub map_tasks: usize,
    /// Reduce tasks per MapReduce job.
    pub reduce_tasks: usize,
    /// Worker-thread parallelism of the in-process engine.
    pub parallelism: usize,
    /// Seed for everything sampled or shuffled under this config: the
    /// GraphFlat/GraphInfer sampling framework and the trainer's batch
    /// shuffle.
    pub seed: u64,
    /// Observability handle: spans into the run's trace sink, counters and
    /// histograms into its metrics registry. Disabled (inert, zero-cost)
    /// by default.
    pub obs: Obs,
    /// Time source for stages that measure durations outside an enabled
    /// obs handle (an enabled handle's trace clock always wins, keeping
    /// logical-clock runs wallclock-free).
    pub clock: Clock,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self { map_tasks: 4, reduce_tasks: 4, parallelism: 4, seed: 42, obs: Obs::default(), clock: Clock::monotonic() }
    }
}

impl EngineConfig {
    /// `Default` with the given seed — the most common deviation.
    pub fn seeded(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style obs-handle override.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Builder-style task-count/parallelism override.
    pub fn with_tasks(mut self, map_tasks: usize, reduce_tasks: usize, parallelism: usize) -> Self {
        self.map_tasks = map_tasks;
        self.reduce_tasks = reduce_tasks;
        self.parallelism = parallelism;
        self
    }

    /// The effective time source: an enabled obs handle's trace clock
    /// (keeping logical-clock runs deterministic), else the configured one.
    pub fn effective_clock(&self) -> Clock {
        self.obs.trace().map_or_else(|| self.clock.clone(), |t| t.clock().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_historical_stage_defaults() {
        let e = EngineConfig::default();
        assert_eq!((e.map_tasks, e.reduce_tasks, e.parallelism, e.seed), (4, 4, 4, 42));
        assert!(!e.obs.is_enabled());
    }

    #[test]
    fn builders_compose() {
        let e = EngineConfig::seeded(9).with_tasks(2, 3, 5).with_obs(Obs::enabled_logical());
        assert_eq!((e.map_tasks, e.reduce_tasks, e.parallelism, e.seed), (2, 3, 5, 9));
        assert!(e.obs.is_enabled());
        assert!(e.effective_clock().is_logical(), "enabled handle's clock wins");
    }
}
