//! Hadoop-style named job counters.
//!
//! Since the observability pass, counters are a thin façade over
//! [`agl_obs::MetricsRegistry`] — the shared metric store the whole
//! workspace reports into — with one job-engine-specific addition: a
//! thread-local *silencing* switch used by the determinism double-runs.

use agl_obs::{MetricValue, MetricsRegistry};

/// A set of named monotonically increasing counters shared by all tasks of a
/// job. Cheap to clone (Arc) and safe to bump from any task thread.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    registry: MetricsRegistry,
}

thread_local! {
    /// When set, all counter writes on this thread are dropped. Used by the
    /// engine's determinism double-runs: replaying a reduce group must not
    /// inflate the job's (exact) record counters.
    static SILENCED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Restores the previous silencing state even if the silenced closure
/// panics (the determinism gate panics on a caught violation).
struct SilenceGuard {
    prev: bool,
}

impl Drop for SilenceGuard {
    fn drop(&mut self) {
        SILENCED.with(|s| s.set(self.prev));
    }
}

impl Counters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `f` with every counter write on this thread suppressed — for
    /// *all* `Counters` instances, since a replayed reducer may bump its
    /// own application counters, not just the engine's.
    pub fn silenced<T>(f: impl FnOnce() -> T) -> T {
        let _guard = SilenceGuard { prev: SILENCED.with(|s| s.replace(true)) };
        f()
    }

    fn is_silenced() -> bool {
        SILENCED.with(std::cell::Cell::get)
    }

    /// Counters reporting into `registry` — used by the engine to land job
    /// counters in the run's shared observability registry, so a
    /// `--metrics-out` export sees them next to every other metric.
    pub fn with_registry(registry: MetricsRegistry) -> Self {
        Self { registry }
    }

    /// The backing metric store.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Add `delta` to counter `name` (creating it at zero).
    pub fn add(&self, name: &str, delta: u64) {
        if Self::is_silenced() {
            return;
        }
        self.registry.add(name, delta);
    }

    /// Increment by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Raise counter `name` to at least `value` — a "max" counter, used for
    /// load-balance observations like the largest reduce group seen.
    pub fn record_max(&self, name: &str, value: u64) {
        if Self::is_silenced() {
            return;
        }
        self.registry.counter_max(name, value);
    }

    /// Current value (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.registry.get(name)
    }

    /// Snapshot of all counters, sorted by name. When the backing registry
    /// is shared with other components, only counter-typed metrics appear
    /// here (gauges and histograms belong to the metrics export).
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.registry
            .snapshot()
            .into_iter()
            .filter_map(|(k, v)| match v {
                MetricValue::Counter(c) => Some((k, c)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let c = Counters::new();
        c.inc("records");
        c.add("records", 4);
        assert_eq!(c.get("records"), 5);
        assert_eq!(c.get("missing"), 0);
    }

    #[test]
    fn shared_across_clones_and_threads() {
        let c = Counters::new();
        let c2 = c.clone();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c3 = c2.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        c3.inc("n");
                    }
                });
            }
        });
        assert_eq!(c.get("n"), 400);
    }

    #[test]
    fn record_max_keeps_the_maximum() {
        let c = Counters::new();
        c.record_max("m", 5);
        c.record_max("m", 3);
        assert_eq!(c.get("m"), 5);
        c.record_max("m", 9);
        assert_eq!(c.get("m"), 9);
    }

    #[test]
    fn silenced_drops_writes_and_restores() {
        let c = Counters::new();
        c.inc("n");
        let out = Counters::silenced(|| {
            c.inc("n");
            c.add("n", 10);
            c.record_max("m", 99);
            7
        });
        assert_eq!(out, 7);
        assert_eq!(c.get("n"), 1, "writes inside the silenced closure are dropped");
        assert_eq!(c.get("m"), 0);
        c.inc("n");
        assert_eq!(c.get("n"), 2, "silencing ends with the closure");
    }

    #[test]
    fn silenced_restores_after_panic() {
        let c = Counters::new();
        let caught = std::panic::catch_unwind(|| {
            Counters::silenced(|| panic!("boom"));
        });
        assert!(caught.is_err());
        c.inc("n");
        assert_eq!(c.get("n"), 1, "silencing must not leak past an unwinding closure");
    }

    #[test]
    fn silenced_is_per_thread() {
        let c = Counters::new();
        Counters::silenced(|| {
            let c2 = c.clone();
            std::thread::scope(|s| {
                s.spawn(move || c2.inc("n"));
            });
        });
        assert_eq!(c.get("n"), 1, "other threads keep counting");
    }

    #[test]
    fn shared_registry_sees_counter_writes_and_snapshot_filters_types() {
        let reg = MetricsRegistry::new();
        reg.gauge_set("g", 7); // non-counter metric in the shared registry
        let c = Counters::with_registry(reg.clone());
        c.add("records", 3);
        assert_eq!(reg.get("records"), 3, "write lands in the shared registry");
        let snap = c.snapshot();
        assert_eq!(snap, vec![("records".to_string(), 3)], "gauges filtered out of the counter view");
    }

    #[test]
    fn snapshot_sorted() {
        let c = Counters::new();
        c.inc("z");
        c.inc("a");
        let names: Vec<_> = c.snapshot().into_iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "z"]);
    }
}
