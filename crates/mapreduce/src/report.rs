//! Structured per-job report derived from the job counters.
//!
//! Before this existed, seeing whether a fault-injection run actually
//! retried anything (or how much a disk-spill job wrote) meant grepping the
//! raw `Counters::snapshot()` listing. [`JobReport`] pulls the operational
//! headline numbers — retries, spill traffic, shuffle bytes, per-round
//! record flow — into one typed struct with a human-readable rendering,
//! surfaced by `agl-cli` after every job.

use crate::counters::Counters;

/// Record flow through one reduce round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundReport {
    pub round: usize,
    pub input_records: u64,
    pub output_records: u64,
    /// Groups double-run by the debug determinism gate.
    pub verified_groups: u64,
}

/// Operational summary of one MapReduce job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport {
    pub map_input_records: u64,
    pub map_output_records: u64,
    pub shuffle_bytes: u64,
    /// Bytes/records round-tripped through disk (zero for in-memory jobs).
    pub spill_bytes: u64,
    pub spill_records: u64,
    /// Task attempts discarded by injected (or real) failures.
    pub task_retries: u64,
    /// Multi-process jobs: reduce tasks dispatched to workers, *including*
    /// attempts that died with their worker and re-ran. The per-worker
    /// `w{i}.`-prefixed counters describe this executed-attempt view.
    pub attempted_tasks: u64,
    /// Multi-process jobs: reduce tasks whose result the driver accepted —
    /// the de-duplicated view, exactly `reduce_tasks × rounds` on success
    /// no matter how many attempts retried.
    pub committed_tasks: u64,
    pub output_records: u64,
    pub rounds: Vec<RoundReport>,
}

impl JobReport {
    /// Build the report from a finished job's counters. The engine records
    /// the round count on the `reduce.rounds` counter so the report does
    /// not have to guess from possibly-zero per-round counters.
    pub fn from_counters(counters: &Counters) -> Self {
        let n_rounds = counters.get("reduce.rounds") as usize;
        let rounds = (0..n_rounds)
            .map(|r| RoundReport {
                round: r,
                input_records: counters.get(&format!("reduce.r{r}.input_records")),
                output_records: counters.get(&format!("reduce.r{r}.output_records")),
                verified_groups: counters.get(&format!("reduce.r{r}.verified_groups")),
            })
            .collect();
        Self {
            map_input_records: counters.get("map.input_records"),
            map_output_records: counters.get("map.output_records"),
            shuffle_bytes: counters.get("shuffle.bytes"),
            spill_bytes: counters.get("spill.bytes"),
            spill_records: counters.get("spill.records"),
            task_retries: counters.get("task_retries"),
            attempted_tasks: counters.get("reduce.attempted_tasks"),
            committed_tasks: counters.get("reduce.committed_tasks"),
            output_records: counters.get("output_records"),
            rounds,
        }
    }

    /// Multi-line human-readable rendering (two-space indented).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  map       {} input records -> {} emitted\n",
            self.map_input_records, self.map_output_records
        ));
        out.push_str(&format!("  shuffle   {} bytes\n", self.shuffle_bytes));
        if self.spill_records > 0 {
            out.push_str(&format!(
                "  spill     {} bytes / {} records via disk\n",
                self.spill_bytes, self.spill_records
            ));
        }
        for r in &self.rounds {
            let verified =
                if r.verified_groups > 0 { format!(" ({} groups verified)", r.verified_groups) } else { String::new() };
            out.push_str(&format!(
                "  round {:<3} {} -> {} records{verified}\n",
                r.round, r.input_records, r.output_records
            ));
        }
        if self.task_retries > 0 {
            out.push_str(&format!("  retries   {} task attempts discarded and re-run\n", self.task_retries));
        }
        if self.attempted_tasks > 0 {
            out.push_str(&format!(
                "  tasks     {} committed / {} attempted\n",
                self.committed_tasks, self.attempted_tasks
            ));
        }
        out.push_str(&format!("  output    {} records\n", self.output_records));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_counters() -> Counters {
        let c = Counters::new();
        c.add("map.input_records", 3);
        c.add("map.output_records", 9);
        c.add("shuffle.bytes", 120);
        c.add("spill.bytes", 200);
        c.add("spill.records", 9);
        c.add("task_retries", 2);
        c.inc("reduce.attempted_tasks");
        c.add("reduce.attempted_tasks", 9);
        c.add("reduce.committed_tasks", 8);
        c.add("output_records", 6);
        c.record_max("reduce.rounds", 2);
        c.add("reduce.r0.input_records", 9);
        c.add("reduce.r0.output_records", 6);
        c.add("reduce.r1.input_records", 6);
        c.add("reduce.r1.output_records", 6);
        c.inc("reduce.r1.verified_groups");
        c
    }

    #[test]
    fn report_pulls_the_headline_counters() {
        let r = JobReport::from_counters(&seeded_counters());
        assert_eq!(r.task_retries, 2);
        assert_eq!(r.spill_bytes, 200);
        assert_eq!(r.shuffle_bytes, 120);
        assert_eq!(r.rounds.len(), 2);
        assert_eq!(r.rounds[0], RoundReport { round: 0, input_records: 9, output_records: 6, verified_groups: 0 });
        assert_eq!(r.rounds[1].verified_groups, 1);
    }

    #[test]
    fn render_mentions_retries_and_spill_only_when_present() {
        let noisy = JobReport::from_counters(&seeded_counters()).render();
        assert!(noisy.contains("retries   2"), "{noisy}");
        assert!(noisy.contains("spill     200 bytes / 9 records"), "{noisy}");
        assert!(noisy.contains("tasks     8 committed / 10 attempted"), "{noisy}");
        let quiet = JobReport::from_counters(&Counters::new()).render();
        assert!(!quiet.contains("retries"), "{quiet}");
        assert!(!quiet.contains("spill"), "{quiet}");
        assert!(!quiet.contains("attempted"), "in-process jobs have no attempt ledger: {quiet}");
        assert!(quiet.contains("output    0 records"), "{quiet}");
    }
}
