//! Zero-dependency socket transport for multi-process jobs.
//!
//! A [`Framed`] connection carries length-prefixed frames over a Unix-domain
//! socket (the default for co-located workers) or a loopback TCP stream (the
//! fallback when the filesystem cannot host a socket file). Frame payloads
//! are opaque bytes — callers serialise them with [`crate::codec::Codec`],
//! so the wire format is the same little-endian format every shuffle record
//! already uses in memory.
//!
//! Design points, in the order they bite:
//!
//! - **Framing**: each frame is a `u32` little-endian payload length followed
//!   by the payload. A read that ends exactly on a frame boundary is a *clean
//!   EOF* (`Ok(None)` from [`Framed::recv`]); anywhere else it is a
//!   [`TransportError::TruncatedFrame`] — a peer died mid-write.
//! - **Bounds**: frames above a configurable cap are rejected before any
//!   allocation ([`TransportError::FrameTooLarge`]), so a corrupt header
//!   cannot OOM the driver.
//! - **Time**: all deadlines derive from the sanctioned [`agl_obs::Clock`];
//!   this module never reads the wall clock directly. OS-level read timeouts
//!   are plain `Duration`s handed to the socket, which keeps blocked reads
//!   bounded without any clock polling on the hot path.
//! - **Retry**: [`connect`] retries with capped exponential backoff until a
//!   clock-derived deadline, because the driver races worker processes that
//!   are still binding their listeners.

use agl_obs::{Clock, Obs};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Default cap on a single frame's payload (64 MiB) — far above any shuffle
/// partition the smoke jobs move, far below an OOM.
pub const DEFAULT_MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Polling granularity for accept/connect retry loops.
const POLL_INTERVAL: Duration = Duration::from_millis(2);

/// Initial connect backoff; doubles per attempt up to [`BACKOFF_CAP`].
const BACKOFF_START: Duration = Duration::from_millis(1);
const BACKOFF_CAP: Duration = Duration::from_millis(50);

/// Where a worker listens: a Unix-domain socket path or a TCP address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// Unix-domain socket at the given filesystem path.
    Unix(PathBuf),
    /// TCP address, e.g. `127.0.0.1:7001`. Port 0 binds an ephemeral port;
    /// [`Listener::endpoint`] reports the actual one.
    Tcp(String),
}

impl Endpoint {
    /// Parse `unix:<path>` or `tcp:<addr>`.
    pub fn parse(s: &str) -> Result<Self, TransportError> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(TransportError::BadEndpoint(s.to_string()));
            }
            Ok(Endpoint::Unix(PathBuf::from(path)))
        } else if let Some(addr) = s.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err(TransportError::BadEndpoint(s.to_string()));
            }
            Ok(Endpoint::Tcp(addr.to_string()))
        } else {
            Err(TransportError::BadEndpoint(s.to_string()))
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// Everything that can go wrong on the wire, mapped to a typed error so the
/// driver can distinguish "worker died" from "worker is slow" from "bug".
#[derive(Debug)]
pub enum TransportError {
    /// An endpoint string failed to parse.
    BadEndpoint(String),
    /// Connecting to a peer failed within the deadline.
    Connect {
        /// The endpoint we tried to reach.
        endpoint: String,
        /// Number of attempts made before giving up.
        attempts: u32,
        /// The last OS error observed.
        last: String,
    },
    /// A blocking operation exceeded its deadline or OS-level timeout.
    Timeout {
        /// What was being waited for.
        what: String,
    },
    /// The stream ended inside a frame — the peer died mid-write.
    TruncatedFrame {
        /// Bytes received of the truncated section.
        got: usize,
        /// Bytes expected.
        want: usize,
    },
    /// A frame header announced a payload above the configured cap.
    FrameTooLarge {
        /// The announced payload length.
        len: u32,
        /// The configured cap.
        max: u32,
    },
    /// The peer spoke the framing correctly but violated the RPC protocol
    /// layered on top (unexpected message, bad payload).
    Protocol(String),
    /// Any other socket-level I/O failure.
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::BadEndpoint(s) => {
                write!(f, "bad endpoint {s:?} (expected unix:<path> or tcp:<addr>)")
            }
            TransportError::Connect { endpoint, attempts, last } => {
                write!(f, "connect to {endpoint} failed after {attempts} attempts: {last}")
            }
            TransportError::Timeout { what } => write!(f, "transport timeout waiting for {what}"),
            TransportError::TruncatedFrame { got, want } => {
                write!(f, "truncated frame: peer closed after {got} of {want} bytes")
            }
            TransportError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds cap of {max}")
            }
            TransportError::Protocol(what) => write!(f, "protocol violation: {what}"),
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl TransportError {
    fn from_io(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                TransportError::Timeout { what: "socket read/write".to_string() }
            }
            _ => TransportError::Io(e.to_string()),
        }
    }
}

/// A connected byte stream: Unix-domain or TCP, same API either way.
#[derive(Debug)]
pub enum Conn {
    /// Unix-domain socket stream.
    Unix(UnixStream),
    /// Loopback TCP stream.
    Tcp(TcpStream),
}

impl From<UnixStream> for Conn {
    fn from(s: UnixStream) -> Self {
        Conn::Unix(s)
    }
}

impl From<TcpStream> for Conn {
    fn from(s: TcpStream) -> Self {
        Conn::Tcp(s)
    }
}

impl Conn {
    /// Bound blocking reads: `None` blocks forever, `Some(d)` makes reads
    /// fail with a timeout error after `d`.
    pub fn set_read_timeout(&self, d: Option<Duration>) -> Result<(), TransportError> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(d),
            Conn::Tcp(s) => s.set_read_timeout(d),
        }
        .map_err(TransportError::from_io)
    }

    /// Shut down both directions, unblocking any peer read.
    pub fn shutdown(&self) {
        match self {
            Conn::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Conn::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// A bound listener. Dropping a Unix listener unlinks its socket file, so a
/// gracefully exiting worker leaves nothing behind.
#[derive(Debug)]
pub enum Listener {
    /// Unix-domain listener plus the path it owns (unlinked on drop).
    Unix {
        /// The accepting socket.
        listener: UnixListener,
        /// The socket file, removed when the listener drops.
        path: PathBuf,
    },
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Bind `ep`. A stale Unix socket file at the path is replaced. For
    /// `tcp:<host>:0` the ephemeral port is resolved; read the actual
    /// address back with [`Listener::endpoint`].
    pub fn bind(ep: &Endpoint) -> Result<Self, TransportError> {
        match ep {
            Endpoint::Unix(path) => {
                // A previous worker that was SIGKILLed leaves its socket
                // file; rebinding must not require manual cleanup.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path).map_err(TransportError::from_io)?;
                Ok(Listener::Unix { listener, path: path.clone() })
            }
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr).map_err(TransportError::from_io)?;
                Ok(Listener::Tcp(listener))
            }
        }
    }

    /// The endpoint peers should connect to (with ephemeral TCP ports
    /// resolved to the actual port).
    pub fn endpoint(&self) -> Result<Endpoint, TransportError> {
        match self {
            Listener::Unix { path, .. } => Ok(Endpoint::Unix(path.clone())),
            Listener::Tcp(l) => {
                let addr = l.local_addr().map_err(TransportError::from_io)?;
                Ok(Endpoint::Tcp(addr.to_string()))
            }
        }
    }

    /// Accept one connection, blocking indefinitely.
    pub fn accept(&self) -> Result<Conn, TransportError> {
        match self {
            Listener::Unix { listener, .. } => {
                let (s, _) = listener.accept().map_err(TransportError::from_io)?;
                Ok(Conn::Unix(s))
            }
            Listener::Tcp(l) => {
                let (s, _) = l.accept().map_err(TransportError::from_io)?;
                Ok(Conn::Tcp(s))
            }
        }
    }

    /// Accept one connection within `timeout_ns` of `clock` time, polling a
    /// non-blocking accept. Returns [`TransportError::Timeout`] past the
    /// deadline — a worker whose driver never arrives must exit, not hang.
    pub fn accept_deadline(&self, clock: &Clock, timeout_ns: u64) -> Result<Conn, TransportError> {
        self.set_nonblocking(true)?;
        let start = clock.now();
        let res = loop {
            match self.try_accept() {
                Ok(Some(conn)) => break Ok(conn),
                Ok(None) => {
                    if clock.since(start) >= timeout_ns {
                        break Err(TransportError::Timeout { what: "accept".to_string() });
                    }
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) => break Err(e),
            }
        };
        self.set_nonblocking(false)?;
        res
    }

    fn set_nonblocking(&self, nb: bool) -> Result<(), TransportError> {
        match self {
            Listener::Unix { listener, .. } => listener.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
        .map_err(TransportError::from_io)
    }

    fn try_accept(&self) -> Result<Option<Conn>, TransportError> {
        let res = match self {
            Listener::Unix { listener, .. } => listener.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        };
        match res {
            Ok(conn) => {
                // Accepted sockets inherit non-blocking mode on some
                // platforms; frames are read with blocking semantics.
                conn.set_blocking()?;
                Ok(Some(conn))
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(TransportError::from_io(e)),
        }
    }
}

impl Conn {
    fn set_blocking(&self) -> Result<(), TransportError> {
        match self {
            Conn::Unix(s) => s.set_nonblocking(false),
            Conn::Tcp(s) => s.set_nonblocking(false),
        }
        .map_err(TransportError::from_io)
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix { path, .. } = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Connect to `ep`, retrying with capped exponential backoff until
/// `timeout_ns` of `clock` time has elapsed. The retry exists because the
/// driver spawns worker processes and connects immediately — the workers'
/// listeners may not be bound yet.
pub fn connect(ep: &Endpoint, clock: &Clock, timeout_ns: u64) -> Result<Conn, TransportError> {
    let start = clock.now();
    let mut backoff = BACKOFF_START;
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let res = match ep {
            Endpoint::Unix(path) => UnixStream::connect(path).map(Conn::Unix),
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(Conn::Tcp),
        };
        match res {
            Ok(conn) => return Ok(conn),
            Err(e) => {
                if clock.since(start) >= timeout_ns {
                    return Err(TransportError::Connect { endpoint: ep.to_string(), attempts, last: e.to_string() });
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(BACKOFF_CAP);
            }
        }
    }
}

/// Maps a protocol tag byte (the first payload byte of a frame) to a stable
/// message-type name for metric naming. Each RPC protocol in the workspace
/// exports one namer per direction (e.g. [`crate::dist::driver_msg_name`]).
pub type TagNamer = fn(u8) -> &'static str;

/// Per-message-type telemetry for a [`Framed`] connection, feeding the
/// shared [`MetricsRegistry`](agl_obs::MetricsRegistry) behind an [`Obs`].
///
/// Every frame in the workspace's RPC protocols starts with a one-byte
/// protocol tag, so the stats layer can attribute frames to message types
/// without parsing payloads. Per direction and message type it maintains:
///
/// - counter `rpc.{label}.{dir}.{msg}.frames` — frames moved,
/// - counter `rpc.{label}.{dir}.{msg}.bytes` — payload bytes moved,
/// - histogram `rpc.{label}.{dir}.{msg}.frame_bytes` — payload size spread,
/// - histogram `rpc.{label}.{dir}.{msg}.nanos` — send/recv latency,
///   recorded **only under a monotonic clock**: logical-clock tick deltas
///   depend on thread interleaving and would break byte-identical metrics
///   artifacts for seeded runs.
///
/// Construction returns `None` when `obs` is inert, so the per-frame cost
/// on an uninstrumented connection is a single `Option` branch.
#[derive(Debug)]
pub struct FrameStats {
    obs: Obs,
    /// Real-time clock for latency histograms; `None` under a logical clock.
    timing: Option<Clock>,
    send_prefix: String,
    recv_prefix: String,
    send_namer: TagNamer,
    recv_namer: TagNamer,
}

impl FrameStats {
    /// Build stats for a connection labelled `label` (e.g. `shuffle.w0`,
    /// `ps.s1`). `send_namer`/`recv_namer` translate the leading tag byte of
    /// outgoing/incoming frames — the two directions usually speak different
    /// message enums. Returns `None` when `obs` is disabled.
    pub fn from_obs(obs: &Obs, label: &str, send_namer: TagNamer, recv_namer: TagNamer) -> Option<Arc<FrameStats>> {
        if !obs.is_enabled() {
            return None;
        }
        let timing = obs.clock().filter(|c| !c.is_logical()).cloned();
        Some(Arc::new(FrameStats {
            obs: obs.clone(),
            timing,
            send_prefix: format!("rpc.{label}.send"),
            recv_prefix: format!("rpc.{label}.recv"),
            send_namer,
            recv_namer,
        }))
    }

    fn record(&self, prefix: &str, namer: TagNamer, payload: &[u8], started: Option<u64>) {
        let msg = payload.first().map(|&t| namer(t)).unwrap_or("empty");
        self.obs.metric_add(&format!("{prefix}.{msg}.frames"), 1);
        self.obs.metric_add(&format!("{prefix}.{msg}.bytes"), payload.len() as u64);
        self.obs.observe(&format!("{prefix}.{msg}.frame_bytes"), payload.len() as u64);
        if let (Some(clock), Some(t0)) = (&self.timing, started) {
            self.obs.observe(&format!("{prefix}.{msg}.nanos"), clock.since(t0));
        }
    }

    fn start(&self) -> Option<u64> {
        self.timing.as_ref().map(|c| c.now())
    }
}

/// A framed connection: `u32` little-endian length prefix, then the payload.
#[derive(Debug)]
pub struct Framed {
    conn: Conn,
    max_frame: u32,
    stats: Option<Arc<FrameStats>>,
}

impl Framed {
    /// Wrap `conn` with the default frame cap.
    pub fn new(conn: Conn) -> Self {
        Self { conn, max_frame: DEFAULT_MAX_FRAME, stats: None }
    }

    /// Override the frame cap (tests use tiny caps to exercise rejection).
    pub fn with_max_frame(mut self, max: u32) -> Self {
        self.max_frame = max;
        self
    }

    /// Attach (or detach, with `None`) per-message telemetry. Stats are
    /// shared via `Arc` so many connections can report under one label.
    pub fn with_stats(mut self, stats: Option<Arc<FrameStats>>) -> Self {
        self.stats = stats;
        self
    }

    /// The underlying connection (for timeouts / shutdown).
    pub fn conn(&self) -> &Conn {
        &self.conn
    }

    /// Send one frame. A payload above the cap is refused locally — the
    /// sender's cap and the receiver's cap must agree, and refusing early
    /// gives the error to the side that can fix it.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        if payload.len() as u64 > self.max_frame as u64 {
            return Err(TransportError::FrameTooLarge { len: payload.len() as u32, max: self.max_frame });
        }
        let started = self.stats.as_ref().and_then(|s| s.start());
        let len = (payload.len() as u32).to_le_bytes();
        self.conn.write_all(&len).map_err(TransportError::from_io)?;
        self.conn.write_all(payload).map_err(TransportError::from_io)?;
        self.conn.flush().map_err(TransportError::from_io)?;
        if let Some(stats) = &self.stats {
            stats.record(&stats.send_prefix, stats.send_namer, payload, started);
        }
        Ok(())
    }

    /// Receive one frame. `Ok(None)` is a clean EOF (peer closed between
    /// frames); EOF inside a frame is [`TransportError::TruncatedFrame`].
    pub fn recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        // Latency includes the blocking wait for the peer's frame — recv
        // telemetry measures "time to obtain a message", not wire transit.
        let started = self.stats.as_ref().and_then(|s| s.start());
        let mut header = [0u8; 4];
        let mut got = 0;
        while got < header.len() {
            match self.conn.read(&mut header[got..]) {
                Ok(0) => {
                    if got == 0 {
                        return Ok(None);
                    }
                    return Err(TransportError::TruncatedFrame { got, want: header.len() });
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TransportError::from_io(e)),
            }
        }
        let len = u32::from_le_bytes(header);
        if len > self.max_frame {
            return Err(TransportError::FrameTooLarge { len, max: self.max_frame });
        }
        let mut payload = vec![0u8; len as usize];
        let mut got = 0;
        while got < payload.len() {
            match self.conn.read(&mut payload[got..]) {
                Ok(0) => return Err(TransportError::TruncatedFrame { got, want: payload.len() }),
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TransportError::from_io(e)),
            }
        }
        if let Some(stats) = &self.stats {
            stats.record(&stats.recv_prefix, stats.recv_namer, &payload, started);
        }
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Framed, Framed) {
        let (a, b) = UnixStream::pair().unwrap();
        (Framed::new(Conn::Unix(a)), Framed::new(Conn::Unix(b)))
    }

    #[test]
    fn endpoint_parse_round_trips() {
        let u = Endpoint::parse("unix:/tmp/x.sock").unwrap();
        assert_eq!(u, Endpoint::Unix(PathBuf::from("/tmp/x.sock")));
        assert_eq!(u.to_string(), "unix:/tmp/x.sock");
        let t = Endpoint::parse("tcp:127.0.0.1:7001").unwrap();
        assert_eq!(t.to_string(), "tcp:127.0.0.1:7001");
        assert!(Endpoint::parse("http:x").is_err());
        assert!(Endpoint::parse("unix:").is_err());
        assert!(Endpoint::parse("tcp:").is_err());
    }

    #[test]
    fn frame_round_trip() {
        let (mut a, mut b) = pair();
        a.send(b"hello").unwrap();
        a.send(b"").unwrap();
        assert_eq!(b.recv().unwrap().unwrap(), b"hello");
        assert_eq!(b.recv().unwrap().unwrap(), b"");
    }

    #[test]
    fn clean_eof_between_frames() {
        let (mut a, mut b) = pair();
        a.send(b"last").unwrap();
        drop(a);
        assert_eq!(b.recv().unwrap().unwrap(), b"last");
        assert!(b.recv().unwrap().is_none(), "EOF on a frame boundary is clean");
    }

    #[test]
    fn oversized_frame_rejected_on_send_and_recv() {
        let (a, b) = pair();
        let mut a = a.with_max_frame(8);
        let mut b = b.with_max_frame(4);
        assert!(matches!(a.send(&[0u8; 9]), Err(TransportError::FrameTooLarge { len: 9, max: 8 })));
        // Sender's cap (8) admits what the receiver's cap (4) rejects.
        a.send(&[0u8; 6]).unwrap();
        assert!(matches!(b.recv(), Err(TransportError::FrameTooLarge { len: 6, max: 4 })));
    }

    #[test]
    fn accept_deadline_times_out_without_peer() {
        let dir = std::env::temp_dir().join(format!("agl-transport-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ep = Endpoint::Unix(dir.join("t.sock"));
        let listener = Listener::bind(&ep).unwrap();
        let clock = Clock::monotonic();
        let err = listener.accept_deadline(&clock, 20_000_000).unwrap_err();
        assert!(matches!(err, TransportError::Timeout { .. }));
        drop(listener);
        assert!(!dir.join("t.sock").exists(), "listener drop unlinks the socket file");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn connect_gives_up_after_deadline() {
        let ep = Endpoint::Unix(PathBuf::from("/nonexistent-dir/never.sock"));
        let clock = Clock::monotonic();
        let err = connect(&ep, &clock, 10_000_000).unwrap_err();
        assert!(matches!(err, TransportError::Connect { .. }), "{err}");
    }

    #[test]
    fn connect_succeeds_once_listener_binds() {
        let dir = std::env::temp_dir().join(format!("agl-transport-race-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ep = Endpoint::Unix(dir.join("race.sock"));
        let clock = Clock::monotonic();
        std::thread::scope(|s| {
            let ep2 = ep.clone();
            let clock2 = clock.clone();
            let h = s.spawn(move || connect(&ep2, &clock2, 2_000_000_000));
            // Bind late: connect must retry until the listener exists.
            std::thread::sleep(Duration::from_millis(20));
            let listener = Listener::bind(&ep).unwrap();
            let _conn = listener.accept().unwrap();
            assert!(h.join().unwrap().is_ok());
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    fn test_namer(tag: u8) -> &'static str {
        match tag {
            1 => "ping",
            2 => "pong",
            _ => "unknown",
        }
    }

    #[test]
    fn frame_stats_none_when_obs_inert() {
        assert!(FrameStats::from_obs(&Obs::default(), "t", test_namer, test_namer).is_none());
    }

    #[test]
    fn frame_stats_count_frames_bytes_and_latency() {
        let obs = Obs::enabled();
        let stats = FrameStats::from_obs(&obs, "t", test_namer, test_namer).unwrap();
        let (a, b) = pair();
        let mut a = a.with_stats(Some(stats.clone()));
        let mut b = b.with_stats(Some(stats));
        a.send(&[1, 9, 9]).unwrap();
        a.send(&[1]).unwrap();
        b.recv().unwrap().unwrap();
        b.recv().unwrap().unwrap();
        b.send(&[2, 0]).unwrap();
        a.recv().unwrap().unwrap();
        let m = obs.metrics().unwrap();
        assert_eq!(m.get("rpc.t.send.ping.frames"), 2);
        assert_eq!(m.get("rpc.t.send.ping.bytes"), 4);
        assert_eq!(m.get("rpc.t.recv.ping.frames"), 2);
        assert_eq!(m.get("rpc.t.send.pong.frames"), 1);
        assert_eq!(m.get("rpc.t.recv.pong.bytes"), 2);
        let json = m.to_json();
        assert!(json.contains("rpc.t.send.ping.frame_bytes"), "byte histogram present: {json}");
        assert!(json.contains("rpc.t.send.ping.nanos"), "latency histogram present under monotonic clock");
    }

    #[test]
    fn frame_stats_skip_latency_under_logical_clock() {
        let obs = Obs::enabled_logical();
        let stats = FrameStats::from_obs(&obs, "t", test_namer, test_namer).unwrap();
        let (a, b) = pair();
        let mut a = a.with_stats(Some(stats.clone()));
        let mut b = b.with_stats(Some(stats));
        a.send(&[1]).unwrap();
        b.recv().unwrap().unwrap();
        let json = obs.metrics().unwrap().to_json();
        assert!(json.contains("rpc.t.send.ping.frame_bytes"), "{json}");
        assert!(!json.contains(".nanos"), "no tick-delta histograms under a logical clock: {json}");
    }

    #[test]
    fn tcp_fallback_round_trips() {
        let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".to_string())).unwrap();
        let ep = listener.endpoint().unwrap();
        let clock = Clock::monotonic();
        std::thread::scope(|s| {
            let h = s.spawn(move || {
                let mut f = Framed::new(connect(&ep, &clock, 1_000_000_000).unwrap());
                f.send(b"over tcp").unwrap();
                assert_eq!(f.recv().unwrap().unwrap(), b"echo");
            });
            let mut f = Framed::new(listener.accept().unwrap());
            assert_eq!(f.recv().unwrap().unwrap(), b"over tcp");
            f.send(b"echo").unwrap();
            h.join().unwrap();
        });
    }
}
