//! The multi-round MapReduce driver.
//!
//! Execution model (matching §3.2.1 / §3.4 of the paper):
//!
//! 1. **Map** runs once over the input records, emitting `(key, value)`
//!    pairs that are hash-partitioned into `reduce_tasks` shuffle buckets.
//! 2. **Reduce** runs `reduce_rounds` times. Round `r` groups each
//!    partition's records by key, hands every key's value list to the
//!    [`Reducer`], and re-partitions whatever it emits for round `r+1`.
//!    The last round's emissions form the job output.
//!
//! Tasks are deterministic functions of their input; the engine exploits
//! this for fault tolerance — an attempt named by the [`FaultPlan`] has its
//! output discarded and is re-executed, reproducing the recovery behaviour
//! of a real cluster without changing the job's result.

use crate::counters::Counters;
use crate::fault::{FaultPlan, TaskId};
use crate::hash::partition;
use crate::spill::SpillMode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// One in this many reduce groups is sampled for the debug-mode reorder
/// determinism check (routed by the same FNV-1a hash as the shuffle, so the
/// sample is deterministic across runs and parallelism levels).
const DETERMINISM_SAMPLE_MOD: usize = 4;

/// Upper bound on double-run groups per reduce task, so huge jobs pay a
/// bounded verification cost.
const MAX_VERIFIED_GROUPS_PER_TASK: usize = 4;

/// Acquire `m` even if a panicking holder poisoned it — the engine treats a
/// worker panic as a task failure, not a reason to lose the whole job.
pub(crate) fn lock_ignoring_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A serialised record crossing a shuffle boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyValue {
    pub key: Vec<u8>,
    pub value: Vec<u8>,
}

impl KeyValue {
    pub fn new(key: Vec<u8>, value: Vec<u8>) -> Self {
        Self { key, value }
    }
}

/// User map function. Must be deterministic: re-execution after a simulated
/// crash replays it on the same input and the engine assumes identical
/// output (exactly the contract MapReduce imposes).
pub trait Mapper: Sync {
    fn map(&self, input: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>));
}

/// User reduce function, invoked once per distinct key per round with all of
/// the key's values. `round` is 0-based. Emissions feed the next round, or
/// the job output on the final round. Must be deterministic (see [`Mapper`]).
pub trait Reducer: Sync {
    fn reduce(
        &self,
        round: usize,
        key: &[u8],
        values: &mut dyn Iterator<Item = &[u8]>,
        emit: &mut dyn FnMut(Vec<u8>, Vec<u8>),
    );
}

impl<F> Mapper for F
where
    F: Fn(&[u8], &mut dyn FnMut(Vec<u8>, Vec<u8>)) + Sync,
{
    fn map(&self, input: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        self(input, emit)
    }
}

/// A shuffle-stage combiner: partially aggregates one shuffle bucket's
/// records *before* they cross a task (or, in [`crate::dist`], a process)
/// boundary — the InferTurbo-style hub optimisation, distinct from the
/// map-side [`MapReduceJob::run_with_combiner`] path in that it sees the
/// emissions of *reduce* rounds too.
///
/// Contract:
///
/// * `round` is the round that will **consume** the bucket. The combiner is
///   offered every bucket, including the final round's job output — it must
///   opt in (return `true` from [`ShuffleCombiner::combines`]) only for
///   rounds whose consumer can decode its partial records.
/// * [`ShuffleCombiner::combine`] must be deterministic in the value
///   *multiset* (the engine's reorder determinism harness applies to the
///   downstream reducer, which must absorb partials order-insensitively).
/// * Combining must preserve the reducer's result exactly — for float
///   aggregation that means the reducer folds raw records through the same
///   partial representation the combiner produces (see `agl-infer`'s
///   segmented fold).
pub trait ShuffleCombiner: Sync {
    /// Whether to touch `key`'s group of `n_values` records heading into
    /// `round` — e.g. a degree threshold on the bucket-local message count.
    fn combines(&self, round: usize, key: &[u8], n_values: usize) -> bool;

    /// Replace `values` (all of `key`'s records in this bucket, producer
    /// order) with fewer partially-aggregated records.
    fn combine(&self, round: usize, key: &[u8], values: &mut Vec<Vec<u8>>);
}

/// Apply `combiner` to one shuffle bucket whose records will be consumed by
/// `round`: group by key (stable, so within-key producer order reaches the
/// combiner intact), rewrite opted-in groups, account the saving.
pub(crate) fn combine_bucket(
    combiner: &dyn ShuffleCombiner,
    round: usize,
    mut bucket: Vec<KeyValue>,
    counters: &Counters,
) -> Vec<KeyValue> {
    bucket.sort_by(|a, b| a.key.cmp(&b.key));
    let mut out = Vec::with_capacity(bucket.len());
    let mut i = 0;
    while i < bucket.len() {
        let mut j = i + 1;
        while j < bucket.len() && bucket[j].key == bucket[i].key {
            j += 1;
        }
        if combiner.combines(round, &bucket[i].key, j - i) {
            let key = bucket[i].key.clone();
            let mut values: Vec<Vec<u8>> = bucket[i..j].iter().map(|kv| kv.value.clone()).collect();
            let bytes_in: u64 = values.iter().map(|v| (key.len() + v.len()) as u64).sum();
            counters.add("combine.records_in", values.len() as u64);
            combiner.combine(round, &key, &mut values);
            let bytes_out: u64 = values.iter().map(|v| (key.len() + v.len()) as u64).sum();
            counters.add("combine.records_out", values.len() as u64);
            counters.add("combine.bytes_saved", bytes_in.saturating_sub(bytes_out));
            for v in values {
                out.push(KeyValue::new(key.clone(), v));
            }
        } else {
            out.extend(bucket[i..j].iter().cloned());
        }
        i = j;
    }
    out
}

/// Job configuration.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Number of map tasks the input is split across.
    pub map_tasks: usize,
    /// Number of shuffle partitions / reduce tasks per round.
    pub reduce_tasks: usize,
    /// Number of reduce rounds (K for GraphFlat, K+1 for GraphInfer).
    pub reduce_rounds: usize,
    /// Worker threads executing tasks.
    pub parallelism: usize,
    /// Attempts per task before the job fails.
    pub max_attempts: usize,
    /// Injected failures (tests/chaos runs).
    pub fault_plan: FaultPlan,
    /// Whether shuffle partitions round-trip through disk.
    pub spill: SpillMode,
    /// Declared pipeline shape, validated at construction in debug builds
    /// (see [`crate::plan::JobPlanValidator`]).
    pub plan: Option<crate::plan::JobPlan>,
    /// Double-run a sampled subset of each reduce task's **real** groups
    /// with reordered values and require an identical emission multiset
    /// (see [`crate::plan::check_group_reorder_determinism`]). Defaults to
    /// on in debug builds — i.e. every `cargo test` job — and off in
    /// release; it is a no-op in release builds either way.
    pub verify_determinism: bool,
    /// Observability handle: when enabled, the driver emits per-phase and
    /// per-task spans and lands the job counters in the shared metrics
    /// registry. Disabled (`Obs::default()`) costs nothing on hot paths.
    pub obs: agl_obs::Obs,
    /// Multi-process jobs only: every `metrics_flush_every` completed tasks
    /// a worker ships a cumulative counter snapshot to the driver, so the
    /// merged registry reflects mid-flight progress. Task-count pacing is
    /// deterministic under the logical clock; `0` disables flushing.
    pub metrics_flush_every: u64,
}

impl Default for JobConfig {
    fn default() -> Self {
        Self {
            map_tasks: 4,
            reduce_tasks: 4,
            reduce_rounds: 1,
            parallelism: 4,
            max_attempts: 4,
            fault_plan: FaultPlan::none(),
            spill: SpillMode::InMemory,
            plan: None,
            verify_determinism: cfg!(debug_assertions),
            obs: agl_obs::Obs::default(),
            metrics_flush_every: 4,
        }
    }
}

impl JobConfig {
    /// Config with `rounds` reduce rounds and everything else default.
    pub fn with_rounds(rounds: usize) -> Self {
        Self { reduce_rounds: rounds, ..Self::default() }
    }
}

/// Job failure.
#[derive(Debug)]
pub enum JobError {
    /// A task exhausted `max_attempts`.
    TaskFailed(TaskId),
    /// Shuffle spill I/O failed.
    Io(std::io::Error),
    /// Job output failed to decode — a codec bug between the last round
    /// and the driver.
    Corrupt(String),
    /// A socket-transport failure in a multi-process job (worker died,
    /// connect/read deadline exceeded, frame corruption on the wire).
    Transport(crate::transport::TransportError),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::TaskFailed(t) => write!(f, "task {t:?} exhausted retries"),
            JobError::Io(e) => write!(f, "shuffle I/O error: {e}"),
            JobError::Corrupt(what) => write!(f, "corrupt job output: {what}"),
            JobError::Transport(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<crate::transport::TransportError> for JobError {
    fn from(e: crate::transport::TransportError) -> Self {
        JobError::Transport(e)
    }
}

impl From<std::io::Error> for JobError {
    fn from(e: std::io::Error) -> Self {
        JobError::Io(e)
    }
}

/// Successful job outcome.
#[derive(Debug)]
pub struct JobResult {
    /// Final-round emissions, in partition order then emit order.
    pub output: Vec<KeyValue>,
    /// Job counters (records per phase, shuffle bytes, retries).
    pub counters: Counters,
}

impl JobResult {
    /// Operational summary (retries, spill, shuffle bytes, record flow per
    /// round) derived from the job counters.
    pub fn report(&self) -> crate::report::JobReport {
        crate::report::JobReport::from_counters(&self.counters)
    }
}

/// Output of reducing one shuffle partition — shared by the in-process
/// engine and the multi-process shuffle worker (see [`crate::dist`]), so
/// both modes run byte-identical reduce logic.
pub(crate) struct ReducedPartition {
    /// Emissions re-partitioned for the next round (or job output).
    pub out_buckets: Vec<Vec<KeyValue>>,
    /// Total records emitted.
    pub emitted: u64,
    /// Groups double-run by the debug determinism check.
    pub verified_groups: u64,
    /// First determinism violation observed, if any.
    pub violation: Option<String>,
}

/// Reduce one partition for `round`: group records by key (stable sort, so
/// within a key the producer-order value sequence is deterministic), invoke
/// the reducer per group, re-partition emissions into `r_parts` buckets.
/// `verify_determinism` samples multi-value groups for the reorder
/// double-run; it never changes the output (pinned by an engine test).
pub(crate) fn reduce_partition(
    reducer: &dyn Reducer,
    round: usize,
    mut records: Vec<KeyValue>,
    r_parts: usize,
    verify_determinism: bool,
) -> ReducedPartition {
    records.sort_by(|a, b| a.key.cmp(&b.key));
    let mut out_buckets: Vec<Vec<KeyValue>> = (0..r_parts).map(|_| Vec::new()).collect();
    let mut emitted = 0u64;
    let mut verified_groups = 0usize;
    let mut violation = None;
    let mut i = 0;
    while i < records.len() {
        let mut j = i + 1;
        while j < records.len() && records[j].key == records[i].key {
            j += 1;
        }
        let key = records[i].key.clone();
        // Sample multi-value groups for the reorder determinism check:
        // deterministic by key hash, capped per task to bound the
        // double-run cost.
        let sampled = verify_determinism
            && j - i > 1
            && verified_groups < MAX_VERIFIED_GROUPS_PER_TASK
            && partition(&key, DETERMINISM_SAMPLE_MOD) == 0;
        if sampled {
            verified_groups += 1;
            let values: Vec<Vec<u8>> = records[i..j].iter().map(|kv| kv.value.clone()).collect();
            let mut baseline: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            {
                let mut iter = values.iter().map(Vec::as_slice);
                reducer.reduce(round, &key, &mut iter, &mut |k, v| baseline.push((k, v)));
            }
            if let Err(e) = crate::plan::check_group_reorder_determinism(reducer, round, &key, &values, &baseline) {
                violation.get_or_insert_with(|| e.to_string());
            }
            for (k, v) in baseline {
                emitted += 1;
                let bucket = partition(&k, r_parts);
                out_buckets[bucket].push(KeyValue::new(k, v));
            }
        } else {
            let mut values = records[i..j].iter().map(|kv| kv.value.as_slice());
            reducer.reduce(round, &key, &mut values, &mut |k, v| {
                emitted += 1;
                let bucket = partition(&k, r_parts);
                out_buckets[bucket].push(KeyValue::new(k, v));
            });
        }
        i = j;
    }
    ReducedPartition { out_buckets, emitted, verified_groups: verified_groups as u64, violation }
}

/// The driver. See module docs for the execution model.
pub struct MapReduceJob {
    cfg: JobConfig,
}

impl MapReduceJob {
    pub fn new(cfg: JobConfig) -> Self {
        assert!(cfg.map_tasks > 0 && cfg.reduce_tasks > 0 && cfg.parallelism > 0 && cfg.max_attempts > 0);
        #[cfg(debug_assertions)]
        if let Some(plan) = &cfg.plan {
            let checked = crate::plan::JobPlanValidator::new(plan).validate(&cfg);
            assert!(checked.is_ok(), "invalid job plan: {}", checked.err().map(|e| e.to_string()).unwrap_or_default());
        }
        Self { cfg }
    }

    /// Run the job with a **combiner**: after each map task, records are
    /// locally grouped and pre-reduced with `combiner` before the shuffle —
    /// the classic Hadoop optimisation, valid whenever the reduce function
    /// is associative and emits records the next round can re-consume.
    /// Counters report the shuffle-byte saving.
    pub fn run_with_combiner<M: Mapper, R: Reducer, C: Reducer>(
        &self,
        inputs: &[Vec<u8>],
        mapper: &M,
        reducer: &R,
        combiner: &C,
    ) -> Result<JobResult, JobError> {
        // Wrap the mapper so each map task's emissions are combined locally.
        struct CombiningMapper<'a, M, C> {
            inner: &'a M,
            combiner: &'a C,
        }
        impl<M: Mapper, C: Reducer> Mapper for CombiningMapper<'_, M, C> {
            fn map(&self, input: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
                // Buffer this record's emissions, combine per key, re-emit.
                let mut buffered: Vec<KeyValue> = Vec::new();
                self.inner.map(input, &mut |k, v| buffered.push(KeyValue::new(k, v)));
                buffered.sort_by(|a, b| a.key.cmp(&b.key));
                let mut i = 0;
                while i < buffered.len() {
                    let mut j = i + 1;
                    while j < buffered.len() && buffered[j].key == buffered[i].key {
                        j += 1;
                    }
                    let key = buffered[i].key.clone();
                    let mut values = buffered[i..j].iter().map(|kv| kv.value.as_slice());
                    self.combiner.reduce(0, &key, &mut values, emit);
                    i = j;
                }
            }
        }
        self.run(inputs, &CombiningMapper { inner: mapper, combiner }, reducer)
    }

    /// Run the job with a **shuffle combiner** (see [`ShuffleCombiner`]):
    /// every shuffle bucket — map output and each intermediate round's
    /// emissions — is offered to `combiner` before it crosses the task
    /// boundary. Savings land on the `combine.*` counters.
    pub fn run_with_shuffle_combiner<M: Mapper, R: Reducer>(
        &self,
        inputs: &[Vec<u8>],
        mapper: &M,
        reducer: &R,
        combiner: &dyn ShuffleCombiner,
    ) -> Result<JobResult, JobError> {
        self.run_inner(inputs, mapper, reducer, Some(combiner))
    }

    /// Run the job over `inputs` (each element is one opaque input record).
    pub fn run<M: Mapper, R: Reducer>(
        &self,
        inputs: &[Vec<u8>],
        mapper: &M,
        reducer: &R,
    ) -> Result<JobResult, JobError> {
        self.run_inner(inputs, mapper, reducer, None)
    }

    fn run_inner<M: Mapper, R: Reducer>(
        &self,
        inputs: &[Vec<u8>],
        mapper: &M,
        reducer: &R,
        combiner: Option<&dyn ShuffleCombiner>,
    ) -> Result<JobResult, JobError> {
        // When observability is on, the job counters report straight into
        // the run's shared metrics registry.
        let counters = match self.cfg.obs.metrics() {
            Some(m) => Counters::with_registry(m.clone()),
            None => Counters::new(),
        };
        let mut job_span = self.cfg.obs.span("driver", "mapreduce.job");
        counters.add("map.input_records", inputs.len() as u64);
        counters.record_max("reduce.rounds", self.cfg.reduce_rounds as u64);
        // The sampled double-run only ever fires in debug builds (the same
        // builds that run plan validation); `cfg!` keeps release binaries
        // free of the clone-the-group cost even with the flag left on.
        let verify_determinism = cfg!(debug_assertions) && self.cfg.verify_determinism;
        // First violation seen by any reduce task; re-raised from the driver
        // thread so the report survives `thread::scope`'s generic re-panic.
        let determinism_violation: Mutex<Option<String>> = Mutex::new(None);

        // ---- Map phase ----
        // Inputs are striped across map tasks; each task emits into
        // `reduce_tasks` buckets.
        let r_parts = self.cfg.reduce_tasks;
        let map_phase_span = self.cfg.obs.span("driver", "mapreduce.map");
        let map_outputs: Vec<Vec<Vec<KeyValue>>> =
            self.run_tasks(self.cfg.map_tasks, TaskId::map, "map", &counters, |task| {
                let mut buckets: Vec<Vec<KeyValue>> = (0..r_parts).map(|_| Vec::new()).collect();
                let mut emitted = 0u64;
                for input in inputs.iter().skip(task).step_by(self.cfg.map_tasks) {
                    mapper.map(input, &mut |k, v| {
                        emitted += 1;
                        let p = partition(&k, r_parts);
                        buckets[p].push(KeyValue::new(k, v));
                    });
                }
                counters.add("map.output_records", emitted);
                match combiner {
                    // Map emissions are consumed by round 0.
                    Some(c) => buckets.into_iter().map(|b| combine_bucket(c, 0, b, &counters)).collect(),
                    None => buckets,
                }
            })?;
        drop(map_phase_span);

        // ---- Reduce rounds ----
        let mut buckets_by_task = map_outputs;
        let mut final_output = Vec::new();
        for round in 0..self.cfg.reduce_rounds {
            let is_last = round + 1 == self.cfg.reduce_rounds;
            let mut round_span = self.cfg.obs.span("driver", &format!("mapreduce.round{round}"));
            let mut shuffle_span = self.cfg.obs.span("driver", &format!("mapreduce.shuffle.r{round}"));
            // Gather each partition's records from all producer tasks.
            let mut partitions: Vec<Vec<KeyValue>> = (0..r_parts).map(|_| Vec::new()).collect();
            for task_buckets in buckets_by_task {
                for (p, bucket) in task_buckets.into_iter().enumerate() {
                    partitions[p].extend(bucket);
                }
            }
            // Spill round-trip (models the distributed-FS hop) + byte accounting.
            let mut round_bytes = 0u64;
            let mut round_records = 0u64;
            let mut spilled = Vec::with_capacity(r_parts);
            for (p, records) in partitions.into_iter().enumerate() {
                let bytes: u64 = records.iter().map(|kv| (kv.key.len() + kv.value.len()) as u64).sum();
                round_bytes += bytes;
                round_records += records.len() as u64;
                counters.add("shuffle.bytes", bytes);
                counters.add(&format!("reduce.r{round}.input_records"), records.len() as u64);
                spilled.push(self.cfg.spill.roundtrip(&format!("r{round}-p{p}"), records, &counters)?);
            }
            shuffle_span.counter("bytes", round_bytes);
            shuffle_span.counter("records", round_records);
            drop(shuffle_span);
            round_span.counter("input_records", round_records);

            let round_outputs: Vec<Vec<Vec<KeyValue>>> = self.run_tasks(
                r_parts,
                |i| TaskId::reduce(round, i),
                &format!("reduce.r{round}"),
                &counters,
                |p| {
                    let records = spilled[p].clone();
                    let reduced = reduce_partition(reducer, round, records, r_parts, verify_determinism);
                    if let Some(v) = reduced.violation {
                        lock_ignoring_poison(&determinism_violation).get_or_insert(v);
                    }
                    counters.add(&format!("reduce.r{round}.verified_groups"), reduced.verified_groups);
                    counters.add(&format!("reduce.r{round}.output_records"), reduced.emitted);
                    match (combiner, is_last) {
                        // Emissions of round r are consumed by round r+1;
                        // the last round's buckets are the job output and
                        // must pass through untouched.
                        (Some(c), false) => reduced
                            .out_buckets
                            .into_iter()
                            .map(|b| combine_bucket(c, round + 1, b, &counters))
                            .collect(),
                        _ => reduced.out_buckets,
                    }
                },
            )?;
            if let Some(report) = lock_ignoring_poison(&determinism_violation).take() {
                // Debug-only determinism gate: an order-sensitive reducer
                // invalidates the engine's retry story, so fail the test
                // run loudly, from the driver thread.
                // agl-lint: allow(no-panic) — see above.
                panic!("{report}");
            }
            if is_last {
                for task_buckets in round_outputs {
                    for bucket in task_buckets {
                        final_output.extend(bucket);
                    }
                }
                buckets_by_task = Vec::new();
            } else {
                buckets_by_task = round_outputs;
            }
        }
        if self.cfg.reduce_rounds == 0 {
            for task_buckets in buckets_by_task {
                for bucket in task_buckets {
                    final_output.extend(bucket);
                }
            }
        }
        counters.add("output_records", final_output.len() as u64);
        job_span.counter("output_records", final_output.len() as u64);
        job_span.counter("retries", counters.get("task_retries"));
        Ok(JobResult { output: final_output, counters })
    }

    /// Execute `n` tasks with bounded parallelism and retry-on-injected-fault.
    /// Returns task outputs in task order. Retries are reported on the job's
    /// `task_retries` counter.
    fn run_tasks<T, F>(
        &self,
        n: usize,
        id_of: impl Fn(usize) -> TaskId,
        phase: &str,
        counters: &Counters,
        run: F,
    ) -> Result<Vec<T>, JobError>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        // id_of used from one thread only
    {
        let retries = counters;
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<Result<T, JobError>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let ids: Vec<TaskId> = (0..n).map(&id_of).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.cfg.parallelism.min(n) {
                scope.spawn(|| loop {
                    // Work-stealing ticket: fetch_add hands each worker a unique task index;
                    // task *data* is published by the scope join, not by this counter.
                    // agl-lint: allow(atomics) — unique-ticket counter; no ordering needed.
                    let task = next.fetch_add(1, Ordering::Relaxed);
                    if task >= n {
                        break;
                    }
                    // Track names key on the task index (never the OS
                    // thread), so per-track span order — and therefore a
                    // logical-clock trace — is deterministic under any
                    // worker scheduling.
                    let mut span = if self.cfg.obs.is_enabled() {
                        self.cfg.obs.span(&format!("{phase}.t{task}"), phase)
                    } else {
                        agl_obs::Span::disabled()
                    };
                    let id = ids[task];
                    let mut outcome = Err(JobError::TaskFailed(id));
                    for attempt in 0..self.cfg.max_attempts {
                        // Run the task, then honour the fault plan by
                        // discarding the attempt's output — the same effect a
                        // mid-task machine crash has on a real cluster.
                        let out = run(task);
                        if self.cfg.fault_plan.should_fail(id, attempt) {
                            retries.inc("task_retries");
                            span.counter("retries", 1);
                            drop(out);
                            continue;
                        }
                        outcome = Ok(out);
                        break;
                    }
                    *lock_ignoring_poison(&results[task]) = Some(outcome);
                });
            }
        });
        let mut out = Vec::with_capacity(n);
        for cell in results {
            match cell.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner) {
                Some(Ok(t)) => out.push(t),
                Some(Err(e)) => return Err(e),
                None => return Err(JobError::TaskFailed(ids[out.len()])),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Codec;

    /// Word-count style mapper: input is a space-separated string; emit
    /// (word, 1u64).
    struct WordMap;
    impl Mapper for WordMap {
        fn map(&self, input: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
            for w in input.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                emit(w.to_vec(), 1u64.to_bytes());
            }
        }
    }

    /// Sums counts; emits on every round (pass-through totals).
    struct SumReduce;
    impl Reducer for SumReduce {
        fn reduce(
            &self,
            _round: usize,
            key: &[u8],
            values: &mut dyn Iterator<Item = &[u8]>,
            emit: &mut dyn FnMut(Vec<u8>, Vec<u8>),
        ) {
            let total: u64 = values.map(|v| u64::from_bytes(v).unwrap()).sum();
            emit(key.to_vec(), total.to_bytes());
        }
    }

    fn word_inputs() -> Vec<Vec<u8>> {
        vec![b"the quick brown fox".to_vec(), b"the lazy dog".to_vec(), b"the fox".to_vec()]
    }

    fn sorted_counts(result: &JobResult) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = result
            .output
            .iter()
            .map(|kv| (String::from_utf8(kv.key.clone()).unwrap(), u64::from_bytes(&kv.value).unwrap()))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn word_count_single_round() {
        let job = MapReduceJob::new(JobConfig::default());
        let res = job.run(&word_inputs(), &WordMap, &SumReduce).unwrap();
        let counts = sorted_counts(&res);
        assert_eq!(
            counts,
            vec![
                ("brown".into(), 1),
                ("dog".into(), 1),
                ("fox".into(), 2),
                ("lazy".into(), 1),
                ("quick".into(), 1),
                ("the".into(), 3),
            ]
        );
        assert_eq!(res.counters.get("map.input_records"), 3);
        assert_eq!(res.counters.get("map.output_records"), 9);
    }

    #[test]
    fn multi_round_is_idempotent_for_sum() {
        // Summing sums across three rounds gives the same totals.
        let job = MapReduceJob::new(JobConfig::with_rounds(3));
        let res = job.run(&word_inputs(), &WordMap, &SumReduce).unwrap();
        assert_eq!(sorted_counts(&res)[2], ("fox".into(), 2));
        assert_eq!(res.counters.get("reduce.r2.input_records"), 6);
    }

    #[test]
    fn injected_faults_do_not_change_output() {
        let clean = MapReduceJob::new(JobConfig::default()).run(&word_inputs(), &WordMap, &SumReduce).unwrap();
        let plan = FaultPlan::none()
            .fail_first(TaskId::map(1), 2)
            .fail_first(TaskId::reduce(0, 0), 1)
            .fail_first(TaskId::reduce(0, 3), 3);
        let faulty_cfg = JobConfig { fault_plan: plan, ..JobConfig::default() };
        let faulty = MapReduceJob::new(faulty_cfg).run(&word_inputs(), &WordMap, &SumReduce).unwrap();
        assert_eq!(sorted_counts(&clean), sorted_counts(&faulty));
        assert_eq!(faulty.counters.get("output_records"), clean.counters.get("output_records"));
    }

    #[test]
    fn exhausted_retries_fail_the_job() {
        let plan = FaultPlan::none().fail_first(TaskId::map(0), 99);
        let cfg = JobConfig { fault_plan: plan, max_attempts: 3, ..JobConfig::default() };
        let err = MapReduceJob::new(cfg).run(&word_inputs(), &WordMap, &SumReduce).unwrap_err();
        assert!(matches!(err, JobError::TaskFailed(t) if t == TaskId::map(0)));
    }

    #[test]
    fn spill_to_disk_matches_in_memory() {
        let dir = std::env::temp_dir().join(format!("agl-mr-test-{}", std::process::id()));
        let mem = MapReduceJob::new(JobConfig::default()).run(&word_inputs(), &WordMap, &SumReduce).unwrap();
        let cfg = JobConfig { spill: SpillMode::Disk(dir.clone()), ..JobConfig::default() };
        let disk = MapReduceJob::new(cfg).run(&word_inputs(), &WordMap, &SumReduce).unwrap();
        assert_eq!(sorted_counts(&mem), sorted_counts(&disk));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_rounds_passes_map_output_through() {
        let cfg = JobConfig { reduce_rounds: 0, ..JobConfig::default() };
        let res = MapReduceJob::new(cfg).run(&word_inputs(), &WordMap, &SumReduce).unwrap();
        assert_eq!(res.output.len(), 9, "all map emissions");
    }

    #[test]
    fn deterministic_across_runs_and_parallelism() {
        let run = |par: usize| {
            let cfg = JobConfig { parallelism: par, map_tasks: 3, reduce_tasks: 5, ..JobConfig::default() };
            sorted_counts(&MapReduceJob::new(cfg).run(&word_inputs(), &WordMap, &SumReduce).unwrap())
        };
        assert_eq!(run(1), run(8));
        assert_eq!(run(2), run(2));
    }

    #[test]
    fn combiner_preserves_output_and_cuts_map_emissions() {
        let inputs = vec![b"the the the the fox fox".to_vec(), b"the fox".to_vec()];
        let plain = MapReduceJob::new(JobConfig::default()).run(&inputs, &WordMap, &SumReduce).unwrap();
        let combined = MapReduceJob::new(JobConfig::default())
            .run_with_combiner(&inputs, &WordMap, &SumReduce, &SumReduce)
            .unwrap();
        assert_eq!(sorted_counts(&plain), sorted_counts(&combined));
        // Per-record combining collapses the 4 "the"s of record one.
        assert_eq!(plain.counters.get("map.output_records"), 8);
        assert_eq!(combined.counters.get("map.output_records"), 4);
        assert!(combined.counters.get("shuffle.bytes") < plain.counters.get("shuffle.bytes"));
    }

    /// Emits the first value seen per group — order-sensitive on purpose.
    struct FirstReduce;
    impl Reducer for FirstReduce {
        fn reduce(
            &self,
            _round: usize,
            key: &[u8],
            values: &mut dyn Iterator<Item = &[u8]>,
            emit: &mut dyn FnMut(Vec<u8>, Vec<u8>),
        ) {
            if let Some(v) = values.next() {
                emit(key.to_vec(), v.to_vec());
            }
        }
    }

    /// Maps each u64 input record `v` to `(v % 32, v)` — every key gets a
    /// group of *distinct* values, so an order-sensitive reducer's output
    /// genuinely depends on shuffle arrival order.
    struct PairMap;
    impl Mapper for PairMap {
        fn map(&self, input: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
            let v = u64::from_bytes(input).unwrap();
            emit((v % 32).to_bytes(), v.to_bytes());
        }
    }

    fn pair_inputs() -> Vec<Vec<u8>> {
        // 32 distinct keys with two distinct values each; the deterministic
        // 1-in-4 key sample is certain to catch several of them.
        (0..64u64).map(|v| v.to_bytes()).collect()
    }

    #[cfg(debug_assertions)]
    #[test]
    fn sampled_groups_are_verified_in_debug_test_jobs() {
        let res = MapReduceJob::new(JobConfig::default()).run(&pair_inputs(), &PairMap, &SumReduce).unwrap();
        assert!(res.counters.get("reduce.r0.verified_groups") > 0, "{:?}", res.counters.snapshot());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "order-sensitive in round 0")]
    fn order_sensitive_reducer_caught_on_real_groups() {
        // FirstReduce emits whichever value arrives first; the reversed
        // replay of a sampled real group emits a different multiset, and
        // the engine's debug gate must fail the job loudly.
        let cfg = JobConfig { parallelism: 1, ..JobConfig::default() };
        let _ = MapReduceJob::new(cfg).run(&pair_inputs(), &PairMap, &FirstReduce);
    }

    #[test]
    fn verification_flag_off_skips_the_check() {
        let cfg = JobConfig { verify_determinism: false, ..JobConfig::default() };
        let res = MapReduceJob::new(cfg).run(&pair_inputs(), &PairMap, &FirstReduce).unwrap();
        assert_eq!(res.counters.get("reduce.r0.verified_groups"), 0);
        assert_eq!(res.output.len(), 32, "one record per key");
    }

    #[test]
    fn verification_does_not_change_output_or_record_counters() {
        let on = MapReduceJob::new(JobConfig::default()).run(&pair_inputs(), &PairMap, &SumReduce).unwrap();
        let off = MapReduceJob::new(JobConfig { verify_determinism: false, ..JobConfig::default() })
            .run(&pair_inputs(), &PairMap, &SumReduce)
            .unwrap();
        assert_eq!(on.output, off.output, "emission order is preserved, not just the multiset");
        for name in ["map.output_records", "reduce.r0.input_records", "reduce.r0.output_records", "output_records"] {
            assert_eq!(on.counters.get(name), off.counters.get(name), "{name}");
        }
    }

    #[test]
    fn retries_reach_the_job_counters() {
        let plan = FaultPlan::none().fail_first(TaskId::map(1), 2).fail_first(TaskId::reduce(0, 0), 1);
        let cfg = JobConfig { fault_plan: plan, ..JobConfig::default() };
        let res = MapReduceJob::new(cfg).run(&word_inputs(), &WordMap, &SumReduce).unwrap();
        assert_eq!(res.counters.get("task_retries"), 3);
        let clean = MapReduceJob::new(JobConfig::default()).run(&word_inputs(), &WordMap, &SumReduce).unwrap();
        assert_eq!(clean.counters.get("task_retries"), 0);
    }

    #[test]
    fn instrumented_job_emits_spans_and_report() {
        let obs = agl_obs::Obs::enabled_logical();
        let plan = FaultPlan::none().fail_first(TaskId::map(1), 1);
        let cfg = JobConfig { fault_plan: plan, reduce_rounds: 2, obs: obs.clone(), ..JobConfig::default() };
        let res = MapReduceJob::new(cfg).run(&word_inputs(), &WordMap, &SumReduce).unwrap();

        let names: Vec<String> =
            obs.trace().map(|t| t.events().into_iter().map(|e| e.name).collect()).unwrap_or_default();
        for expected in
            ["mapreduce.job", "mapreduce.map", "mapreduce.round0", "mapreduce.shuffle.r1", "map", "reduce.r1"]
        {
            assert!(names.iter().any(|n| n == expected), "missing span {expected}: {names:?}");
        }
        // Job counters landed in the shared metrics registry.
        let m = obs.metrics().unwrap();
        assert_eq!(m.get("map.input_records"), 3);
        assert!(m.get("shuffle.bytes") > 0);

        let report = res.report();
        assert_eq!(report.task_retries, 1, "the injected retry is visible without grepping counters");
        assert_eq!(report.rounds.len(), 2);
        assert!(report.render().contains("retries   1"));
    }

    #[test]
    fn logical_traces_are_byte_identical_across_runs() {
        let run = || {
            let obs = agl_obs::Obs::enabled_logical();
            let cfg = JobConfig { reduce_rounds: 2, parallelism: 4, obs: obs.clone(), ..JobConfig::default() };
            MapReduceJob::new(cfg).run(&word_inputs(), &WordMap, &SumReduce).unwrap();
            obs.trace().map(|t| t.to_chrome_json()).unwrap_or_default()
        };
        assert_eq!(run(), run(), "same job, logical clock: byte-identical trace");
    }

    #[test]
    fn values_arrive_grouped_per_key() {
        // A reducer that records how many times it is invoked per key: each
        // key must be seen exactly once per round.
        struct CountInvocations;
        impl Reducer for CountInvocations {
            fn reduce(
                &self,
                _r: usize,
                key: &[u8],
                values: &mut dyn Iterator<Item = &[u8]>,
                emit: &mut dyn FnMut(Vec<u8>, Vec<u8>),
            ) {
                let n = values.count() as u64;
                emit(key.to_vec(), n.to_bytes());
            }
        }
        let res = MapReduceJob::new(JobConfig::default()).run(&word_inputs(), &WordMap, &CountInvocations).unwrap();
        let the = res.output.iter().find(|kv| kv.key == b"the").map(|kv| u64::from_bytes(&kv.value).unwrap());
        assert_eq!(the, Some(3));
    }
}
