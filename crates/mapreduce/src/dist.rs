//! Multi-process MapReduce: a driver that streams shuffle partitions to
//! worker *processes* over the [`crate::transport`] layer.
//!
//! The in-process engine ([`crate::engine::MapReduceJob`]) and this driver
//! share one reduce implementation (`engine::reduce_partition`), one hash
//! shuffle, and one codec — so a distributed run produces **byte-identical
//! output** to the in-process run of the same job. The split of labor:
//!
//! - The **driver** runs the map phase locally (map is cheap relative to
//!   the K+1 reduce rounds GraphFlat spends its time in), partitions
//!   emissions with the same FNV-1a shuffle hash, and hands each reduce
//!   partition to a worker over a framed socket connection.
//! - A **shuffle worker** ([`serve_shuffle`]) is a separate OS process: it
//!   accepts one driver connection, reconstructs the job's reducer from an
//!   opaque spec blob (the pipeline owns its meaning), then serves
//!   reduce-partition RPCs until the driver says shutdown — at which point
//!   it ships its counters and trace spans back for the merged report.
//!
//! ## Failure model
//!
//! Worker death is detected as a transport error (EOF, truncated frame,
//! read timeout) on that worker's connection. The partition the worker was
//! running is re-queued and re-executed by a surviving worker — tasks are
//! deterministic, so the re-run emits identical records and the job output
//! is unchanged (the same argument the thread-mode [`crate::fault`] suite
//! tests). When retries for a partition exhaust `max_attempts`, or no
//! worker survives, the driver fails with a typed
//! [`JobError::Transport`] — bounded by the configured timeouts, never a
//! hang.

use crate::codec::{self, Codec, CodecError};
use crate::counters::Counters;
use crate::engine::{
    combine_bucket, lock_ignoring_poison, reduce_partition, JobConfig, JobError, JobResult, KeyValue, Mapper, Reducer,
    ShuffleCombiner,
};
use crate::hash::partition;
use crate::transport::{connect, Endpoint, FrameStats, Framed, Listener, TransportError};
use agl_obs::{Clock, Obs, TraceEvent};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How long a shuffle worker waits for its driver to connect, and how long
/// the driver waits for a worker to answer one RPC.
#[derive(Debug, Clone)]
pub struct DistOptions {
    /// Driver-side connect deadline per worker (with bounded-backoff retry,
    /// because workers may still be binding their listeners).
    pub connect_timeout_ns: u64,
    /// Read deadline for one RPC round-trip on an established connection.
    pub io_timeout_ns: u64,
}

impl Default for DistOptions {
    fn default() -> Self {
        Self { connect_timeout_ns: 10_000_000_000, io_timeout_ns: 30_000_000_000 }
    }
}

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

fn put_kv(buf: &mut Vec<u8>, kv: &KeyValue) {
    codec::put_bytes(buf, &kv.key);
    codec::put_bytes(buf, &kv.value);
}

fn get_kv(input: &mut &[u8]) -> Result<KeyValue, CodecError> {
    let key = codec::get_bytes(input)?.to_vec();
    let value = codec::get_bytes(input)?.to_vec();
    Ok(KeyValue { key, value })
}

fn put_kvs(buf: &mut Vec<u8>, kvs: &[KeyValue]) {
    codec::put_u32(buf, kvs.len() as u32);
    for kv in kvs {
        put_kv(buf, kv);
    }
}

fn get_kvs(input: &mut &[u8]) -> Result<Vec<KeyValue>, CodecError> {
    let n = codec::get_u32(input)? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_kv(input)?);
    }
    Ok(out)
}

fn get_string(input: &mut &[u8]) -> Result<String, CodecError> {
    String::from_utf8(codec::get_bytes(input)?.to_vec()).map_err(|e| CodecError(format!("non-utf8 string: {e}")))
}

/// Driver → worker messages.
#[derive(Debug)]
enum DriverMsg {
    /// First message on the connection: the pipeline-defined reducer spec
    /// (opaque to this crate), the shuffle fan-out, whether the worker
    /// should record a trace to ship back, the job's shared trace identity
    /// (`trace_id` + this worker's span-id `salt`), and the metrics flush
    /// cadence (`flush_every` tasks; 0 disables mid-flight snapshots).
    Init { spec: Vec<u8>, r_parts: u32, trace: bool, trace_id: u64, salt: u64, flush_every: u64 },
    /// Optional second message (combining jobs only — a separate frame so
    /// the `Init` codec, and every golden trace built on it, is unchanged):
    /// the pipeline-defined combiner spec and the job's total reduce-round
    /// count, which the worker needs to skip combining the final round's
    /// output (the job output's record order must match the engine's, and
    /// combining sorts a bucket by key). Acknowledged with `InitOk`; only
    /// [`serve_shuffle_combining`] workers accept it.
    CombineSpec { rounds: u32, spec: Vec<u8> },
    /// Reduce one partition's records for `round`. `ctx` is the driver-side
    /// RPC span issuing this task; the worker's reduce span parents under it.
    Reduce { round: u32, part: u32, ctx: Option<agl_obs::SpanContext>, records: Vec<KeyValue> },
    /// Finish up: reply with `Bye` and exit.
    Shutdown,
}

const DM_INIT: u8 = 0;
const DM_REDUCE: u8 = 1;
const DM_SHUTDOWN: u8 = 2;
const DM_COMBINE: u8 = 3;

/// Metric name for a driver→worker shuffle message tag (see
/// [`crate::transport::FrameStats`]).
pub fn driver_msg_name(tag: u8) -> &'static str {
    match tag {
        DM_INIT => "init",
        DM_REDUCE => "reduce",
        DM_SHUTDOWN => "shutdown",
        DM_COMBINE => "combine_spec",
        _ => "unknown",
    }
}

impl Codec for DriverMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            DriverMsg::Init { spec, r_parts, trace, trace_id, salt, flush_every } => {
                codec::put_u8(buf, DM_INIT);
                codec::put_bytes(buf, spec);
                codec::put_u32(buf, *r_parts);
                codec::put_u8(buf, u8::from(*trace));
                codec::put_u64(buf, *trace_id);
                codec::put_u64(buf, *salt);
                codec::put_u64(buf, *flush_every);
            }
            DriverMsg::Reduce { round, part, ctx, records } => {
                codec::put_u8(buf, DM_REDUCE);
                codec::put_u32(buf, *round);
                codec::put_u32(buf, *part);
                codec::put_span_ctx(buf, *ctx);
                put_kvs(buf, records);
            }
            DriverMsg::CombineSpec { rounds, spec } => {
                codec::put_u8(buf, DM_COMBINE);
                codec::put_u32(buf, *rounds);
                codec::put_bytes(buf, spec);
            }
            DriverMsg::Shutdown => codec::put_u8(buf, DM_SHUTDOWN),
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match codec::get_u8(input)? {
            DM_INIT => {
                let spec = codec::get_bytes(input)?.to_vec();
                let r_parts = codec::get_u32(input)?;
                let trace = codec::get_u8(input)? != 0;
                let trace_id = codec::get_u64(input)?;
                let salt = codec::get_u64(input)?;
                let flush_every = codec::get_u64(input)?;
                Ok(DriverMsg::Init { spec, r_parts, trace, trace_id, salt, flush_every })
            }
            DM_REDUCE => {
                let round = codec::get_u32(input)?;
                let part = codec::get_u32(input)?;
                let ctx = codec::get_span_ctx(input)?;
                let records = get_kvs(input)?;
                Ok(DriverMsg::Reduce { round, part, ctx, records })
            }
            DM_COMBINE => {
                let rounds = codec::get_u32(input)?;
                let spec = codec::get_bytes(input)?.to_vec();
                Ok(DriverMsg::CombineSpec { rounds, spec })
            }
            DM_SHUTDOWN => Ok(DriverMsg::Shutdown),
            t => Err(CodecError(format!("unknown driver message tag {t}"))),
        }
    }
}

/// Worker → driver messages.
#[derive(Debug)]
enum WorkerMsg {
    /// Reducer built; ready for tasks.
    InitOk,
    /// One partition reduced: emissions re-partitioned for the next round.
    ReduceDone { part: u32, emitted: u64, out_buckets: Vec<Vec<KeyValue>> },
    /// Shutdown acknowledgement: worker-local counters and trace events
    /// for the driver's merged report.
    Bye { counters: Vec<(String, u64)>, trace: Vec<TraceEvent> },
    /// Mid-flight metrics snapshot: a *cumulative* view of the worker's
    /// counters, flushed every `flush_every` completed tasks so the driver
    /// sees progress before shutdown. Cumulative + merged with `record_max`
    /// means a lost or duplicated snapshot never skews totals.
    Metrics { counters: Vec<(String, u64)> },
    /// Worker-side setup failure (bad spec).
    Err { msg: String },
}

const WM_INIT_OK: u8 = 0;
const WM_REDUCE_DONE: u8 = 1;
const WM_BYE: u8 = 2;
const WM_ERR: u8 = 3;
const WM_METRICS: u8 = 4;

/// Metric name for a worker→driver shuffle message tag (see
/// [`crate::transport::FrameStats`]).
pub fn worker_msg_name(tag: u8) -> &'static str {
    match tag {
        WM_INIT_OK => "init_ok",
        WM_REDUCE_DONE => "reduce_done",
        WM_BYE => "bye",
        WM_ERR => "err",
        WM_METRICS => "metrics",
        _ => "unknown",
    }
}

impl Codec for WorkerMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WorkerMsg::InitOk => codec::put_u8(buf, WM_INIT_OK),
            WorkerMsg::ReduceDone { part, emitted, out_buckets } => {
                codec::put_u8(buf, WM_REDUCE_DONE);
                codec::put_u32(buf, *part);
                codec::put_u64(buf, *emitted);
                codec::put_u32(buf, out_buckets.len() as u32);
                for b in out_buckets {
                    put_kvs(buf, b);
                }
            }
            WorkerMsg::Bye { counters, trace } => {
                codec::put_u8(buf, WM_BYE);
                codec::put_counters(buf, counters);
                codec::put_u32(buf, trace.len() as u32);
                for e in trace {
                    codec::put_trace_event(buf, e);
                }
            }
            WorkerMsg::Metrics { counters } => {
                codec::put_u8(buf, WM_METRICS);
                codec::put_counters(buf, counters);
            }
            WorkerMsg::Err { msg } => {
                codec::put_u8(buf, WM_ERR);
                codec::put_bytes(buf, msg.as_bytes());
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match codec::get_u8(input)? {
            WM_INIT_OK => Ok(WorkerMsg::InitOk),
            WM_REDUCE_DONE => {
                let part = codec::get_u32(input)?;
                let emitted = codec::get_u64(input)?;
                let n = codec::get_u32(input)? as usize;
                let mut out_buckets = Vec::with_capacity(n);
                for _ in 0..n {
                    out_buckets.push(get_kvs(input)?);
                }
                Ok(WorkerMsg::ReduceDone { part, emitted, out_buckets })
            }
            WM_BYE => {
                let counters = codec::get_counters(input)?;
                let n = codec::get_u32(input)? as usize;
                let mut trace = Vec::with_capacity(n);
                for _ in 0..n {
                    trace.push(codec::get_trace_event(input)?);
                }
                Ok(WorkerMsg::Bye { counters, trace })
            }
            WM_METRICS => Ok(WorkerMsg::Metrics { counters: codec::get_counters(input)? }),
            WM_ERR => Ok(WorkerMsg::Err { msg: get_string(input)? }),
            t => Err(CodecError(format!("unknown worker message tag {t}"))),
        }
    }
}

fn proto(e: CodecError) -> TransportError {
    TransportError::Protocol(e.0)
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Serve one driver as a shuffle worker: accept a connection, build the
/// reducer from the driver's opaque spec via `factory` (handing it the
/// worker's counters so pipeline counters ride back in `Bye`), then reduce
/// partitions until `Shutdown` or the driver's connection closes.
///
/// Returns `Ok(())` on a clean shutdown *and* on driver disappearance —
/// a worker whose driver died must exit, not linger.
pub fn serve_shuffle(
    listener: &Listener,
    accept_timeout_ns: u64,
    factory: &dyn Fn(&[u8], &Counters) -> Result<Box<dyn Reducer>, String>,
) -> Result<(), TransportError> {
    serve_inner(listener, accept_timeout_ns, factory, None)
}

/// [`serve_shuffle`] plus combiner support: when the driver follows `Init`
/// with a `DriverMsg::CombineSpec` frame, `combiner_factory` builds the
/// pipeline's [`ShuffleCombiner`] from the opaque spec, and every non-final
/// round's output buckets are partially aggregated *before* they travel
/// back over the wire — the shuffle-byte saving the combiner exists for.
/// A driver that never sends `CombineSpec` gets plain [`serve_shuffle`]
/// behaviour.
pub fn serve_shuffle_combining(
    listener: &Listener,
    accept_timeout_ns: u64,
    factory: &dyn Fn(&[u8], &Counters) -> Result<Box<dyn Reducer>, String>,
    combiner_factory: &dyn Fn(&[u8], &Counters) -> Result<Box<dyn ShuffleCombiner>, String>,
) -> Result<(), TransportError> {
    serve_inner(listener, accept_timeout_ns, factory, Some(combiner_factory))
}

fn serve_inner(
    listener: &Listener,
    accept_timeout_ns: u64,
    factory: &dyn Fn(&[u8], &Counters) -> Result<Box<dyn Reducer>, String>,
    combiner_factory: Option<&dyn Fn(&[u8], &Counters) -> Result<Box<dyn ShuffleCombiner>, String>>,
) -> Result<(), TransportError> {
    let clock = Clock::monotonic();
    let conn = listener.accept_deadline(&clock, accept_timeout_ns)?;
    let mut framed = Framed::new(conn);
    let Some(first) = framed.recv()? else {
        return Ok(());
    };
    let (spec, r_parts, trace, trace_id, salt, flush_every) = match DriverMsg::from_bytes(&first).map_err(proto)? {
        DriverMsg::Init { spec, r_parts, trace, trace_id, salt, flush_every } => {
            (spec, r_parts as usize, trace, trace_id, salt, flush_every)
        }
        other => return Err(TransportError::Protocol(format!("expected Init, got {other:?}"))),
    };
    // A logical clock makes the shipped trace deterministic for a seeded
    // job; monotonic worker timestamps would not merge meaningfully with
    // the driver's clock anyway. The driver-assigned identity keeps span
    // ids collision-free when this trace merges into the driver's.
    let obs = if trace { Obs::enabled_with_identity(Clock::logical(), trace_id, salt) } else { Obs::default() };
    let counters = Counters::new();
    let reducer = match factory(&spec, &counters) {
        Ok(r) => r,
        Err(msg) => {
            framed.send(&WorkerMsg::Err { msg }.to_bytes())?;
            return Ok(());
        }
    };
    framed.send(&WorkerMsg::InitOk.to_bytes())?;
    let mut tasks_done = 0u64;
    // `(total_rounds, combiner)` once a CombineSpec arrives.
    let mut combiner: Option<(usize, Box<dyn ShuffleCombiner>)> = None;
    loop {
        let Some(bytes) = framed.recv()? else {
            // Driver vanished between frames: exit cleanly so no process
            // leaks even when the driver is SIGKILLed.
            return Ok(());
        };
        match DriverMsg::from_bytes(&bytes).map_err(proto)? {
            DriverMsg::Init { .. } => {
                return Err(TransportError::Protocol("duplicate Init".to_string()));
            }
            DriverMsg::CombineSpec { rounds, spec: cspec } => {
                let Some(build) = combiner_factory else {
                    return Err(TransportError::Protocol(
                        "driver sent CombineSpec to a worker without combiner support".to_string(),
                    ));
                };
                match build(&cspec, &counters) {
                    Ok(c) => combiner = Some((rounds as usize, c)),
                    Err(msg) => {
                        framed.send(&WorkerMsg::Err { msg }.to_bytes())?;
                        return Ok(());
                    }
                }
                framed.send(&WorkerMsg::InitOk.to_bytes())?;
            }
            DriverMsg::Reduce { round, part, ctx, records } => {
                // Parent under the driver RPC span that issued this task —
                // the causal edge the merged Chrome trace renders as a flow
                // arrow from `dist.w{i}` into this worker's lane.
                let span = obs.span_child_of(&format!("reduce.r{round}.p{part}"), "reduce", ctx);
                counters.add(&format!("reduce.r{round}.input_records"), records.len() as u64);
                // verify_determinism=false: the debug double-run never
                // changes output (pinned by an engine test), and the
                // driver-side thread-mode suite already covers it.
                let reduced = reduce_partition(reducer.as_ref(), round as usize, records, r_parts, false);
                counters.add(&format!("reduce.r{round}.output_records"), reduced.emitted);
                counters.inc("worker.tasks");
                // Pre-fold the next round's input while it is still on this
                // side of the wire. The final round is exempt: its buckets
                // are the job output, whose record order must match the
                // engine's (and whose consumer decodes no partials).
                let out_buckets = match &combiner {
                    Some((rounds, c)) if (round as usize) + 1 < *rounds => reduced
                        .out_buckets
                        .into_iter()
                        .map(|b| combine_bucket(c.as_ref(), round as usize + 1, b, &counters))
                        .collect(),
                    _ => reduced.out_buckets,
                };
                drop(span);
                tasks_done += 1;
                // Task-count pacing is the logical-clock analogue of a
                // periodic timer: deterministic for a seeded job, and it
                // fires exactly when there is something new to report.
                if flush_every > 0 && tasks_done % flush_every == 0 {
                    framed.send(&WorkerMsg::Metrics { counters: counters.snapshot() }.to_bytes())?;
                }
                framed.send(&WorkerMsg::ReduceDone { part, emitted: reduced.emitted, out_buckets }.to_bytes())?;
            }
            DriverMsg::Shutdown => {
                let trace_events = obs.trace().map(|t| t.events()).unwrap_or_default();
                framed.send(&WorkerMsg::Bye { counters: counters.snapshot(), trace: trace_events }.to_bytes())?;
                return Ok(());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Driver side
// ---------------------------------------------------------------------------

/// Multi-process job driver. Map runs locally; reduce partitions are
/// dispatched to worker processes listed in `endpoints`.
pub struct DistJob {
    cfg: JobConfig,
    opts: DistOptions,
}

/// Per-round dispatch state shared by the driver's per-worker threads.
///
/// Dispatch is *static*: partition `p` is homed on worker `p % W` via
/// per-worker queues, so a fault-free run assigns every task to the same
/// worker on every execution — the property that makes the merged trace
/// byte-identical for seeded runs. The shared `overflow` queue only ever
/// holds tasks re-queued from a dead worker; survivors steal from it after
/// draining their own queue, restoring the failure-recovery behaviour.
struct RoundState<'a> {
    partition_data: &'a [Vec<KeyValue>],
    queues: Vec<Mutex<VecDeque<(usize, usize)>>>,
    overflow: Mutex<VecDeque<(usize, usize)>>,
    slots: Vec<Mutex<Option<Vec<Vec<KeyValue>>>>>,
    filled: AtomicUsize,
    fatal: Mutex<Option<JobError>>,
    dispatched: &'a AtomicUsize,
}

impl DistJob {
    /// Driver over `cfg` (reduce fan-out, rounds, retry budget, obs) with
    /// the given transport timeouts.
    pub fn new(cfg: JobConfig, opts: DistOptions) -> Self {
        Self { cfg, opts }
    }

    /// Run the job: map `inputs` locally, stream each round's reduce
    /// partitions to the workers at `endpoints`, return the assembled
    /// result. `spec` is forwarded verbatim to every worker's reducer
    /// factory. Output is byte-identical to the in-process engine's.
    pub fn run<M: Mapper>(
        &self,
        endpoints: &[Endpoint],
        spec: &[u8],
        inputs: &[Vec<u8>],
        mapper: &M,
    ) -> Result<JobResult, JobError> {
        self.run_inner(endpoints, spec, inputs, mapper, None, None)
    }

    /// [`DistJob::run`] with shuffle combining: `combine_spec` is shipped to
    /// every worker (which must be a [`serve_shuffle_combining`] process and
    /// builds its own combiner from it), while the driver applies its local
    /// `combiner` to the map phase's buckets — together they pre-fold every
    /// wire hop except the final output. Output is byte-identical to
    /// [`crate::engine::MapReduceJob::run_with_shuffle_combiner`] for a
    /// combiner honouring the [`ShuffleCombiner`] exactness contract.
    pub fn run_with_combiner<M: Mapper>(
        &self,
        endpoints: &[Endpoint],
        spec: &[u8],
        combine_spec: &[u8],
        combiner: &dyn ShuffleCombiner,
        inputs: &[Vec<u8>],
        mapper: &M,
    ) -> Result<JobResult, JobError> {
        self.run_inner(endpoints, spec, inputs, mapper, Some((combine_spec, combiner)), None)
    }

    /// [`DistJob::run`] with a fault-injection hook: `on_dispatch(n)` fires
    /// after the n-th reduce task (1-based, cumulative across rounds) has
    /// been written to a worker — the seam the kill-a-process suite uses to
    /// SIGKILL a worker at a deterministic point mid-job.
    pub fn run_with_hook<M: Mapper>(
        &self,
        endpoints: &[Endpoint],
        spec: &[u8],
        inputs: &[Vec<u8>],
        mapper: &M,
        on_dispatch: Option<&(dyn Fn(usize) + Sync)>,
    ) -> Result<JobResult, JobError> {
        self.run_inner(endpoints, spec, inputs, mapper, None, on_dispatch)
    }

    fn run_inner<M: Mapper>(
        &self,
        endpoints: &[Endpoint],
        spec: &[u8],
        inputs: &[Vec<u8>],
        mapper: &M,
        combine: Option<(&[u8], &dyn ShuffleCombiner)>,
        on_dispatch: Option<&(dyn Fn(usize) + Sync)>,
    ) -> Result<JobResult, JobError> {
        if endpoints.is_empty() {
            return Err(JobError::Transport(TransportError::Protocol("no worker endpoints".to_string())));
        }
        let obs = &self.cfg.obs;
        let counters = match obs.metrics() {
            Some(m) => Counters::with_registry(m.clone()),
            None => Counters::new(),
        };
        let clock = Clock::monotonic();
        let mut job_span = obs.span("driver", "dist.job");
        counters.add("map.input_records", inputs.len() as u64);
        counters.record_max("reduce.rounds", self.cfg.reduce_rounds as u64);
        counters.record_max("dist.workers", endpoints.len() as u64);
        let r_parts = self.cfg.reduce_tasks;

        // Connect to every worker and initialise it. Startup is all-or-
        // nothing: a worker that cannot be reached here is a deployment
        // failure, not a mid-job fault.
        let trace_id = obs.trace().map(|t| t.trace_id()).unwrap_or(0);
        let mut conns: Vec<Option<Framed>> = Vec::with_capacity(endpoints.len());
        for (w, ep) in endpoints.iter().enumerate() {
            let conn = connect(ep, &clock, self.opts.connect_timeout_ns)?;
            conn.set_read_timeout(Some(Duration::from_nanos(self.opts.io_timeout_ns))).map_err(JobError::Transport)?;
            let stats = FrameStats::from_obs(obs, &format!("shuffle.w{w}"), driver_msg_name, worker_msg_name);
            let mut framed = Framed::new(conn).with_stats(stats);
            framed
                .send(
                    &DriverMsg::Init {
                        spec: spec.to_vec(),
                        r_parts: r_parts as u32,
                        trace: obs.is_enabled(),
                        trace_id,
                        // Salt 0 is the driver's; worker `w` gets `w + 1` so
                        // merged span ids stay collision-free.
                        salt: w as u64 + 1,
                        flush_every: self.cfg.metrics_flush_every,
                    }
                    .to_bytes(),
                )
                .map_err(JobError::Transport)?;
            match framed.recv().map_err(JobError::Transport)? {
                Some(bytes) => match WorkerMsg::from_bytes(&bytes).map_err(|e| JobError::Corrupt(e.0))? {
                    WorkerMsg::InitOk => {}
                    WorkerMsg::Err { msg } => {
                        return Err(JobError::Transport(TransportError::Protocol(format!(
                            "worker at {ep} rejected init: {msg}"
                        ))))
                    }
                    other => {
                        return Err(JobError::Transport(TransportError::Protocol(format!(
                            "unexpected init reply from {ep}: {other:?}"
                        ))))
                    }
                },
                None => {
                    return Err(JobError::Transport(TransportError::Protocol(format!(
                        "worker at {ep} closed during init"
                    ))))
                }
            }
            if let Some((combine_spec, _)) = combine {
                framed
                    .send(
                        &DriverMsg::CombineSpec { rounds: self.cfg.reduce_rounds as u32, spec: combine_spec.to_vec() }
                            .to_bytes(),
                    )
                    .map_err(JobError::Transport)?;
                match framed.recv().map_err(JobError::Transport)? {
                    Some(bytes) => match WorkerMsg::from_bytes(&bytes).map_err(|e| JobError::Corrupt(e.0))? {
                        WorkerMsg::InitOk => {}
                        WorkerMsg::Err { msg } => {
                            return Err(JobError::Transport(TransportError::Protocol(format!(
                                "worker at {ep} rejected combine spec: {msg}"
                            ))))
                        }
                        other => {
                            return Err(JobError::Transport(TransportError::Protocol(format!(
                                "unexpected combine-spec reply from {ep}: {other:?}"
                            ))))
                        }
                    },
                    None => {
                        return Err(JobError::Transport(TransportError::Protocol(format!(
                            "worker at {ep} closed during combine-spec handshake"
                        ))))
                    }
                }
            }
            conns.push(Some(framed));
        }

        // ---- Map phase (local) ----
        // Identical striping and collection order to the in-process engine,
        // so the shuffle sees the same record sequence.
        let map_span = obs.span("driver", "dist.map");
        let mut buckets_by_task: Vec<Vec<Vec<KeyValue>>> = Vec::with_capacity(self.cfg.map_tasks);
        for task in 0..self.cfg.map_tasks {
            let mut buckets: Vec<Vec<KeyValue>> = (0..r_parts).map(|_| Vec::new()).collect();
            let mut emitted = 0u64;
            for input in inputs.iter().skip(task).step_by(self.cfg.map_tasks) {
                mapper.map(input, &mut |k, v| {
                    emitted += 1;
                    let p = partition(&k, r_parts);
                    buckets[p].push(KeyValue::new(k, v));
                });
            }
            counters.add("map.output_records", emitted);
            // Map-side combining, mirroring the engine: the driver owns the
            // whole map output, so it pre-folds round 0's input locally.
            let buckets = match combine {
                Some((_, c)) => buckets.into_iter().map(|b| combine_bucket(c, 0, b, &counters)).collect(),
                None => buckets,
            };
            buckets_by_task.push(buckets);
        }
        drop(map_span);

        // ---- Reduce rounds, dispatched over the wire ----
        let dispatched = AtomicUsize::new(0);
        let mut final_output = Vec::new();
        for round in 0..self.cfg.reduce_rounds {
            let is_last = round + 1 == self.cfg.reduce_rounds;
            let mut round_span = obs.span("driver", &format!("dist.round{round}"));
            let mut partitions: Vec<Vec<KeyValue>> = (0..r_parts).map(|_| Vec::new()).collect();
            for task_buckets in buckets_by_task {
                for (p, bucket) in task_buckets.into_iter().enumerate() {
                    partitions[p].extend(bucket);
                }
            }
            let mut round_records = 0u64;
            for records in &partitions {
                let bytes: u64 = records.iter().map(|kv| (kv.key.len() + kv.value.len()) as u64).sum();
                round_records += records.len() as u64;
                counters.add("shuffle.bytes", bytes);
                counters.add(&format!("reduce.r{round}.input_records"), records.len() as u64);
            }
            round_span.counter("input_records", round_records);

            let mut queues: Vec<VecDeque<(usize, usize)>> = (0..endpoints.len()).map(|_| VecDeque::new()).collect();
            for p in 0..r_parts {
                queues[p % endpoints.len()].push_back((p, 0usize));
            }
            let state = RoundState {
                partition_data: &partitions,
                queues: queues.into_iter().map(Mutex::new).collect(),
                overflow: Mutex::new(VecDeque::new()),
                slots: (0..r_parts).map(|_| Mutex::new(None)).collect(),
                filled: AtomicUsize::new(0),
                fatal: Mutex::new(None),
                dispatched: &dispatched,
            };
            std::thread::scope(|scope| {
                let taken: Vec<Option<Framed>> = std::mem::take(&mut conns);
                let handles: Vec<_> = taken
                    .into_iter()
                    .enumerate()
                    .map(|(w, framed)| {
                        let state = &state;
                        let counters = &counters;
                        scope.spawn(move || match framed {
                            Some(f) => self.drive_worker(w, f, round, state, counters, obs, on_dispatch),
                            None => {
                                // A worker lost in an earlier round still
                                // has a home queue this round: hand its
                                // tasks to the survivors.
                                let mut overflow = lock_ignoring_poison(&state.overflow);
                                let mut own = lock_ignoring_poison(&state.queues[w]);
                                overflow.extend(own.drain(..));
                                None
                            }
                        })
                    })
                    .collect();
                conns = handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(conn) => conn,
                        Err(_) => None,
                    })
                    .collect();
            });
            if let Some(e) = lock_ignoring_poison(&state.fatal).take() {
                return Err(e);
            }
            let mut round_outputs = Vec::with_capacity(r_parts);
            for (p, slot) in state.slots.into_iter().enumerate() {
                match slot.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner) {
                    Some(buckets) => round_outputs.push(buckets),
                    None => {
                        return Err(JobError::Transport(TransportError::Protocol(format!(
                            "all workers lost before partition {p} of round {round} completed"
                        ))))
                    }
                }
            }
            if is_last {
                for task_buckets in round_outputs {
                    for bucket in task_buckets {
                        final_output.extend(bucket);
                    }
                }
                buckets_by_task = Vec::new();
            } else {
                buckets_by_task = round_outputs;
            }
        }
        if self.cfg.reduce_rounds == 0 {
            for task_buckets in buckets_by_task {
                for bucket in task_buckets {
                    final_output.extend(bucket);
                }
            }
        }

        // ---- Shutdown + report merge ----
        // Each surviving worker ships back its counters (merged under a
        // `w{i}.` prefix: they describe executed attempts, including
        // re-runs, not the job's exact record flow) and its trace (merged
        // under a `w{i}/` track prefix).
        for (w, slot) in conns.iter_mut().enumerate() {
            let Some(framed) = slot else { continue };
            let bye = framed.send(&DriverMsg::Shutdown.to_bytes()).and_then(|()| framed.recv());
            match bye {
                Ok(Some(bytes)) => {
                    if let Ok(WorkerMsg::Bye { counters: wc, trace }) = WorkerMsg::from_bytes(&bytes) {
                        // `record_max`, not `add`: mid-flight `Metrics`
                        // snapshots already merged prefixes of these
                        // cumulative values, and adding would double-count.
                        for (name, v) in wc {
                            counters.record_max(&format!("w{w}.{name}"), v);
                        }
                        obs.import_trace(&format!("w{w}/"), trace);
                    }
                }
                // A worker that died after its last task already has its
                // partitions safely re-run; losing its counters is fine.
                Ok(None) | Err(_) => {}
            }
        }

        counters.add("output_records", final_output.len() as u64);
        job_span.counter("output_records", final_output.len() as u64);
        job_span.counter("retries", counters.get("task_retries"));
        Ok(JobResult { output: final_output, counters })
    }

    /// One driver thread pumping one worker connection for one round.
    /// Returns the connection if the worker is still alive, `None` if it
    /// died (its in-flight partition is re-queued for the survivors).
    #[allow(clippy::too_many_arguments)]
    fn drive_worker(
        &self,
        w: usize,
        mut framed: Framed,
        round: usize,
        state: &RoundState<'_>,
        counters: &Counters,
        obs: &Obs,
        on_dispatch: Option<&(dyn Fn(usize) + Sync)>,
    ) -> Option<Framed> {
        loop {
            if lock_ignoring_poison(&state.fatal).is_some() {
                return Some(framed);
            }
            // Round barrier: all partitions of round r feed round r+1.
            if state.filled.load(Ordering::SeqCst) == state.slots.len() {
                return Some(framed);
            }
            // Home queue first (static assignment), then stolen work from
            // dead workers.
            let task = lock_ignoring_poison(&state.queues[w])
                .pop_front()
                .or_else(|| lock_ignoring_poison(&state.overflow).pop_front());
            let Some((p, attempt)) = task else {
                // Queues drained but slots outstanding: another worker is
                // in flight (or just died and is about to re-queue). Poll.
                std::thread::sleep(Duration::from_millis(1));
                continue;
            };
            let mut span = obs.span(&format!("dist.w{w}"), &format!("rpc.reduce.r{round}"));
            span.counter("partition", p as u64);
            let ctx = span.context();
            let sent = framed.send(
                &DriverMsg::Reduce {
                    round: round as u32,
                    part: p as u32,
                    ctx,
                    records: state.partition_data[p].clone(),
                }
                .to_bytes(),
            );
            if sent.is_ok() {
                counters.inc("reduce.attempted_tasks");
                let n = state.dispatched.fetch_add(1, Ordering::SeqCst) + 1;
                if let Some(hook) = on_dispatch {
                    hook(n);
                }
            }
            // Absorb any mid-flight metrics snapshots the worker flushed
            // ahead of its reply. Snapshots are cumulative, so merging with
            // `record_max` is idempotent and a final `Bye` supersedes them.
            let mut outcome = sent.and_then(|()| framed.recv());
            let reply = loop {
                let bytes = match outcome {
                    Ok(Some(bytes)) => bytes,
                    Ok(None) | Err(_) => {
                        // Worker died (EOF / timeout / reset): re-queue the
                        // partition for a surviving worker, retire this
                        // connection (and push its remaining home queue to
                        // the survivors too).
                        counters.inc("task_retries");
                        span.counter("retries", 1);
                        if attempt + 1 >= self.cfg.max_attempts {
                            lock_ignoring_poison(&state.fatal).get_or_insert_with(|| {
                                JobError::Transport(TransportError::Protocol(format!(
                                    "partition {p} of round {round} exhausted {} attempts across workers",
                                    self.cfg.max_attempts
                                )))
                            });
                        } else {
                            let mut overflow = lock_ignoring_poison(&state.overflow);
                            overflow.push_back((p, attempt + 1));
                            let mut own = lock_ignoring_poison(&state.queues[w]);
                            overflow.extend(own.drain(..));
                        }
                        return None;
                    }
                };
                match WorkerMsg::from_bytes(&bytes) {
                    Ok(WorkerMsg::Metrics { counters: snapshot }) => {
                        for (name, v) in snapshot {
                            counters.record_max(&format!("w{w}.{name}"), v);
                        }
                        outcome = framed.recv();
                    }
                    other => break other,
                }
            };
            match reply {
                Ok(WorkerMsg::ReduceDone { part, emitted, out_buckets }) if part as usize == p => {
                    counters.add(&format!("reduce.r{round}.output_records"), emitted);
                    counters.inc("reduce.committed_tasks");
                    *lock_ignoring_poison(&state.slots[p]) = Some(out_buckets);
                    state.filled.fetch_add(1, Ordering::SeqCst);
                }
                Ok(other) => {
                    lock_ignoring_poison(&state.fatal).get_or_insert_with(|| {
                        JobError::Transport(TransportError::Protocol(format!(
                            "unexpected reply to reduce.r{round}.p{p} from worker {w}: {other:?}"
                        )))
                    });
                    return Some(framed);
                }
                Err(e) => {
                    lock_ignoring_poison(&state.fatal).get_or_insert_with(|| JobError::Corrupt(e.0));
                    return Some(framed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MapReduceJob;
    use std::path::PathBuf;

    struct WordMap;
    impl Mapper for WordMap {
        fn map(&self, input: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
            for w in input.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                emit(w.to_vec(), 1u64.to_bytes());
            }
        }
    }

    struct SumReduce;
    impl Reducer for SumReduce {
        fn reduce(
            &self,
            _round: usize,
            key: &[u8],
            values: &mut dyn Iterator<Item = &[u8]>,
            emit: &mut dyn FnMut(Vec<u8>, Vec<u8>),
        ) {
            let total: u64 = values.map(|v| u64::from_bytes(v).unwrap()).sum();
            emit(key.to_vec(), total.to_bytes());
        }
    }

    fn word_inputs() -> Vec<Vec<u8>> {
        vec![
            b"the quick brown fox jumps".to_vec(),
            b"the lazy dog naps".to_vec(),
            b"the fox naps too".to_vec(),
            b"quick quick fox".to_vec(),
        ]
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("agl-dist-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sum_factory(_spec: &[u8], _c: &Counters) -> Result<Box<dyn Reducer>, String> {
        Ok(Box::new(SumReduce))
    }

    /// Pre-sums a group's `u64` values into one record — exact for the
    /// commutative+associative integer sum `SumReduce` computes.
    struct SumCombiner;
    impl ShuffleCombiner for SumCombiner {
        fn combines(&self, _round: usize, _key: &[u8], n_values: usize) -> bool {
            n_values >= 2
        }
        fn combine(&self, _round: usize, _key: &[u8], values: &mut Vec<Vec<u8>>) {
            let total: u64 = values.iter().map(|v| u64::from_bytes(v).unwrap()).sum();
            values.clear();
            values.push(total.to_bytes());
        }
    }

    fn sum_combiner_factory(_spec: &[u8], _c: &Counters) -> Result<Box<dyn ShuffleCombiner>, String> {
        Ok(Box::new(SumCombiner))
    }

    fn opts() -> DistOptions {
        DistOptions { connect_timeout_ns: 5_000_000_000, io_timeout_ns: 10_000_000_000 }
    }

    #[test]
    fn distributed_output_is_byte_identical_to_in_process() {
        let dir = temp_dir("smoke");
        let cfg = JobConfig { reduce_rounds: 2, ..JobConfig::default() };
        let expected = MapReduceJob::new(cfg.clone()).run(&word_inputs(), &WordMap, &SumReduce).unwrap();

        let eps: Vec<Endpoint> = (0..2).map(|i| Endpoint::Unix(dir.join(format!("w{i}.sock")))).collect();
        let listeners: Vec<Listener> = eps.iter().map(|e| Listener::bind(e).unwrap()).collect();
        let result = std::thread::scope(|s| {
            for l in &listeners {
                s.spawn(move || serve_shuffle(l, 5_000_000_000, &sum_factory).unwrap());
            }
            DistJob::new(cfg, opts()).run(&eps, b"spec", &word_inputs(), &WordMap).unwrap()
        });
        assert_eq!(result.output, expected.output, "byte-identical output, same order");
        for name in ["map.input_records", "map.output_records", "reduce.r1.input_records", "output_records"] {
            assert_eq!(result.counters.get(name), expected.counters.get(name), "{name}");
        }
        assert_eq!(result.counters.get("task_retries"), 0);
        drop(listeners);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn combining_dist_run_is_byte_identical_to_combining_engine_run() {
        let dir = temp_dir("combine");
        let cfg = JobConfig { reduce_rounds: 2, ..JobConfig::default() };
        let expected = MapReduceJob::new(cfg.clone())
            .run_with_shuffle_combiner(&word_inputs(), &WordMap, &SumReduce, &SumCombiner)
            .unwrap();
        let plain = MapReduceJob::new(cfg.clone()).run(&word_inputs(), &WordMap, &SumReduce).unwrap();

        let eps: Vec<Endpoint> = (0..2).map(|i| Endpoint::Unix(dir.join(format!("w{i}.sock")))).collect();
        let listeners: Vec<Listener> = eps.iter().map(|e| Listener::bind(e).unwrap()).collect();
        let result = std::thread::scope(|s| {
            for l in &listeners {
                s.spawn(move || {
                    serve_shuffle_combining(l, 5_000_000_000, &sum_factory, &sum_combiner_factory).unwrap()
                });
            }
            DistJob::new(cfg, opts())
                .run_with_combiner(&eps, b"spec", b"cspec", &SumCombiner, &word_inputs(), &WordMap)
                .unwrap()
        });
        assert_eq!(result.output, expected.output, "byte-identical to the combining engine run");
        let mut sorted_plain = plain.output.clone();
        let mut sorted_combined = result.output.clone();
        sorted_plain.sort_by(|a, b| (&a.key, &a.value).cmp(&(&b.key, &b.value)));
        sorted_combined.sort_by(|a, b| (&a.key, &a.value).cmp(&(&b.key, &b.value)));
        assert_eq!(sorted_combined, sorted_plain, "combining never changes the result multiset");
        assert!(result.counters.get("combine.records_in") > result.counters.get("combine.records_out"));
        drop(listeners);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plain_worker_rejects_combine_spec() {
        let dir = temp_dir("nocombine");
        let cfg = JobConfig { reduce_rounds: 1, ..JobConfig::default() };
        let ep = Endpoint::Unix(dir.join("w0.sock"));
        let listener = Listener::bind(&ep).unwrap();
        let err = std::thread::scope(|s| {
            // The worker errors out on the CombineSpec frame; the driver
            // sees the connection close during the handshake.
            s.spawn(|| {
                let _ = serve_shuffle(&listener, 5_000_000_000, &sum_factory);
            });
            DistJob::new(cfg, opts())
                .run_with_combiner(std::slice::from_ref(&ep), b"spec", b"cspec", &SumCombiner, &word_inputs(), &WordMap)
                .unwrap_err()
        });
        assert!(matches!(err, JobError::Transport(_)), "{err}");
        drop(listener);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A worker that accepts, inits, then drops the connection on its first
    /// reduce task — the thread-mode analogue of SIGKILL mid-task.
    fn serve_flaky(listener: &Listener) {
        let clock = Clock::monotonic();
        let conn = listener.accept_deadline(&clock, 5_000_000_000).unwrap();
        let mut framed = Framed::new(conn);
        let _init = framed.recv().unwrap().unwrap();
        framed.send(&WorkerMsg::InitOk.to_bytes()).unwrap();
        // Receive the first task, then vanish without replying.
        let _task = framed.recv().unwrap();
    }

    #[test]
    fn dead_worker_partition_is_rerun_deterministically() {
        let dir = temp_dir("flaky");
        let cfg = JobConfig { reduce_rounds: 2, ..JobConfig::default() };
        let expected = MapReduceJob::new(cfg.clone()).run(&word_inputs(), &WordMap, &SumReduce).unwrap();

        let eps: Vec<Endpoint> = (0..2).map(|i| Endpoint::Unix(dir.join(format!("w{i}.sock")))).collect();
        let listeners: Vec<Listener> = eps.iter().map(|e| Listener::bind(e).unwrap()).collect();
        let result = std::thread::scope(|s| {
            s.spawn(|| serve_flaky(&listeners[0]));
            s.spawn(|| serve_shuffle(&listeners[1], 5_000_000_000, &sum_factory).unwrap());
            DistJob::new(cfg, opts()).run(&eps, b"spec", &word_inputs(), &WordMap).unwrap()
        });
        assert_eq!(result.output, expected.output, "lost partition re-ran with identical output");
        assert!(result.counters.get("task_retries") >= 1);
        drop(listeners);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn losing_every_worker_fails_typed_not_hung() {
        let dir = temp_dir("alldead");
        let cfg = JobConfig { reduce_rounds: 1, max_attempts: 2, ..JobConfig::default() };
        let ep = Endpoint::Unix(dir.join("w0.sock"));
        let listener = Listener::bind(&ep).unwrap();
        let err = std::thread::scope(|s| {
            s.spawn(|| serve_flaky(&listener));
            DistJob::new(cfg, opts()).run(std::slice::from_ref(&ep), b"spec", &word_inputs(), &WordMap).unwrap_err()
        });
        assert!(matches!(err, JobError::Transport(_)), "{err}");
        drop(listener);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shutdown_merges_worker_counters_and_trace() {
        let dir = temp_dir("merge");
        let obs = Obs::enabled_logical();
        let cfg = JobConfig { reduce_rounds: 1, obs: obs.clone(), ..JobConfig::default() };
        let ep = Endpoint::Unix(dir.join("w0.sock"));
        let listener = Listener::bind(&ep).unwrap();
        let result = std::thread::scope(|s| {
            s.spawn(|| serve_shuffle(&listener, 5_000_000_000, &sum_factory).unwrap());
            DistJob::new(cfg, opts()).run(std::slice::from_ref(&ep), b"spec", &word_inputs(), &WordMap).unwrap()
        });
        assert!(result.counters.get("w0.worker.tasks") > 0, "{:?}", result.counters.snapshot());
        let tracks: Vec<String> =
            obs.trace().map(|t| t.events().into_iter().map(|e| e.track).collect()).unwrap_or_default();
        assert!(tracks.iter().any(|t| t.starts_with("w0/reduce.r0")), "worker spans merged: {tracks:?}");
        assert!(tracks.iter().any(|t| t == "driver"), "{tracks:?}");
        drop(listener);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn driver_msg_codec_round_trips() {
        let msgs = [
            DriverMsg::Init { spec: vec![1, 2, 3], r_parts: 4, trace: true, trace_id: 77, salt: 2, flush_every: 4 },
            DriverMsg::Reduce {
                round: 1,
                part: 2,
                ctx: Some(agl_obs::SpanContext { trace_id: 77, span_id: 0xFEED }),
                records: vec![KeyValue::new(b"k".to_vec(), b"v".to_vec())],
            },
            DriverMsg::Reduce { round: 0, part: 0, ctx: None, records: vec![] },
            DriverMsg::CombineSpec { rounds: 3, spec: vec![9, 8] },
            DriverMsg::Shutdown,
        ];
        for m in msgs {
            let bytes = m.to_bytes();
            let back = DriverMsg::from_bytes(&bytes).unwrap();
            assert_eq!(format!("{m:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn reduce_with_unknown_ctx_version_is_rejected() {
        let msg = DriverMsg::Reduce {
            round: 0,
            part: 0,
            ctx: Some(agl_obs::SpanContext { trace_id: 1, span_id: 2 }),
            records: vec![],
        };
        let mut bytes = msg.to_bytes();
        // The ctx header version byte sits right after tag + round + part.
        bytes[9] = 250;
        let err = DriverMsg::from_bytes(&bytes).unwrap_err();
        assert!(err.0.contains("unknown span context version 250"), "{err}");
    }

    #[test]
    fn worker_msg_codec_round_trips() {
        let msgs = [
            WorkerMsg::InitOk,
            WorkerMsg::ReduceDone {
                part: 3,
                emitted: 7,
                out_buckets: vec![vec![], vec![KeyValue::new(b"a".to_vec(), b"b".to_vec())]],
            },
            WorkerMsg::Bye {
                counters: vec![("n".to_string(), 9)],
                trace: vec![TraceEvent {
                    track: "t".to_string(),
                    seq: 0,
                    name: "s".to_string(),
                    ts: 1,
                    dur: 2,
                    depth: 0,
                    span_id: 11,
                    parent_id: 12,
                    args: vec![("records".to_string(), 5)],
                }],
            },
            WorkerMsg::Metrics { counters: vec![("worker.tasks".to_string(), 3)] },
            WorkerMsg::Err { msg: "bad spec".to_string() },
        ];
        for m in msgs {
            let bytes = m.to_bytes();
            let back = WorkerMsg::from_bytes(&bytes).unwrap();
            assert_eq!(format!("{m:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn truncated_metrics_snapshot_is_rejected() {
        let msg = WorkerMsg::Metrics { counters: vec![("a".to_string(), 1), ("b".to_string(), 2)] };
        let bytes = msg.to_bytes();
        let err = WorkerMsg::from_bytes(&bytes[..bytes.len() - 5]).unwrap_err();
        assert!(err.0.contains("need"), "truncated decode is a typed error: {err}");
    }

    #[test]
    fn worker_spans_parent_under_driver_rpc_spans() {
        let dir = temp_dir("causal");
        let obs = Obs::enabled_logical();
        let cfg = JobConfig { reduce_rounds: 2, obs: obs.clone(), ..JobConfig::default() };
        let eps: Vec<Endpoint> = (0..2).map(|i| Endpoint::Unix(dir.join(format!("w{i}.sock")))).collect();
        let listeners: Vec<Listener> = eps.iter().map(|e| Listener::bind(e).unwrap()).collect();
        std::thread::scope(|s| {
            for l in &listeners {
                s.spawn(move || serve_shuffle(l, 5_000_000_000, &sum_factory).unwrap());
            }
            DistJob::new(cfg, opts()).run(&eps, b"spec", &word_inputs(), &WordMap).unwrap()
        });
        let events = obs.trace().unwrap().events();
        let driver_ids: std::collections::BTreeSet<u64> =
            events.iter().filter(|e| e.track.starts_with("dist.w")).map(|e| e.span_id).collect();
        let worker_reduces: Vec<&TraceEvent> =
            events.iter().filter(|e| e.track.contains("/reduce.") && e.name == "reduce").collect();
        assert!(!worker_reduces.is_empty(), "worker spans merged into the driver trace");
        for e in &worker_reduces {
            assert!(
                driver_ids.contains(&e.parent_id),
                "worker span {}/{} must parent under a driver rpc span, got parent {}",
                e.track,
                e.name,
                e.parent_id
            );
        }
        // Metrics flushed mid-flight and merged without double-counting:
        // per-worker task counters equal the whole job's committed tasks.
        let m = obs.metrics().unwrap();
        let total_worker_tasks = m.get("w0.worker.tasks") + m.get("w1.worker.tasks");
        assert_eq!(total_worker_tasks, m.get("reduce.committed_tasks"), "attempts == committed when nothing fails");
        assert_eq!(m.get("reduce.attempted_tasks"), m.get("reduce.committed_tasks"));
        assert!(m.get("rpc.shuffle.w0.send.reduce.frames") > 0, "rpc telemetry populated");
        assert!(m.get("rpc.shuffle.w1.recv.reduce_done.bytes") > 0, "rpc byte totals populated");
        drop(listeners);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn killed_worker_keeps_committed_tasks_exact() {
        // The de-duplication pin: a worker that dies mid-task inflates
        // attempts but never the committed count, and merged per-worker
        // counters (record_max over cumulative snapshots) stay exact.
        let dir = temp_dir("dedup");
        let obs = Obs::enabled_logical();
        let cfg = JobConfig { reduce_rounds: 2, obs: obs.clone(), metrics_flush_every: 1, ..JobConfig::default() };
        let eps: Vec<Endpoint> = (0..2).map(|i| Endpoint::Unix(dir.join(format!("w{i}.sock")))).collect();
        let listeners: Vec<Listener> = eps.iter().map(|e| Listener::bind(e).unwrap()).collect();
        std::thread::scope(|s| {
            s.spawn(|| serve_flaky(&listeners[0]));
            s.spawn(|| serve_shuffle(&listeners[1], 5_000_000_000, &sum_factory).unwrap());
            DistJob::new(cfg, opts()).run(&eps, b"spec", &word_inputs(), &WordMap).unwrap()
        });
        let m = obs.metrics().unwrap();
        let committed = m.get("reduce.committed_tasks");
        let attempted = m.get("reduce.attempted_tasks");
        let total = (JobConfig::default().reduce_tasks * 2) as u64;
        assert_eq!(committed, total, "every partition committed exactly once");
        assert!(attempted > committed, "the killed task counts as an attempt: {attempted} vs {committed}");
        assert_eq!(m.get("w1.worker.tasks"), committed, "survivor ran everything, snapshots not double-counted");
        drop(listeners);
        std::fs::remove_dir_all(&dir).ok();
    }
}
