//! `agl-mapreduce` — the MapReduce substrate AGL builds on.
//!
//! The paper's central systems argument is that graph learning can run on
//! *mature, fault-tolerant* infrastructure — MapReduce and parameter servers
//! — instead of bespoke graph stores. GraphFlat (§3.2) and GraphInfer (§3.4)
//! are both expressed as a single Map phase followed by K (or K+1) Reduce
//! rounds, where each round re-shuffles its output by key.
//!
//! This crate reproduces that execution model in-process:
//!
//! * **Byte-oriented records.** Everything crossing the shuffle boundary is
//!   a serialised `(key, value)` pair of byte strings, exactly as on a real
//!   cluster; the [`codec`] module provides the primitives pipelines use to
//!   encode their messages (the paper used protobuf — see DESIGN.md for the
//!   substitution).
//! * **Deterministic hash shuffle** ([`hash`]): records are routed to
//!   `reduce_tasks` partitions by FNV-1a over the key, so a re-executed
//!   task reproduces its routing bit-for-bit.
//! * **Multi-round driver** ([`engine`]): `Map → (shuffle → Reduce)^K`,
//!   each phase running its tasks on a thread pool.
//! * **Fault tolerance** ([`fault`]): an injectable failure plan kills
//!   chosen task attempts; the engine re-executes them, and determinism
//!   guarantees the job output is unchanged (tested).
//! * **Spill-to-disk** ([`spill`]): optionally round-trips every shuffle
//!   partition through files, modelling the distributed-FS hop between
//!   rounds.
//! * **Counters** ([`counters`]): named atomic counters à la Hadoop, used by
//!   the benches to report records/bytes shuffled per round.
//! * **Streaming executor** ([`stream`]): the same job shape run
//!   sequentially in bounded memory — one partition resident at a time,
//!   pending partitions parked in the spill mode — with byte-identical
//!   output to the engine (the substrate of `agl-cli infer-stream`).

pub mod codec;
pub mod config;
pub mod counters;
pub mod dist;
pub mod engine;
pub mod fault;
pub mod hash;
pub mod obsreport;
pub mod plan;
pub mod report;
pub mod spill;
pub mod stream;
pub mod transport;

pub use codec::{Codec, CodecError};
pub use config::EngineConfig;
pub use counters::Counters;
pub use dist::{serve_shuffle, serve_shuffle_combining, DistJob, DistOptions};
pub use engine::{JobConfig, JobError, JobResult, KeyValue, MapReduceJob, Mapper, Reducer, ShuffleCombiner};
pub use fault::{FaultPlan, TaskId, TaskKind};
pub use obsreport::ObsReport;
pub use plan::{JobPlan, JobPlanValidator, PlanError, RoundPlan, WireSig};
pub use report::{JobReport, RoundReport};
pub use spill::SpillMode;
pub use stream::StreamJob;
pub use transport::{Conn, Endpoint, FrameStats, Framed, Listener, TransportError};
