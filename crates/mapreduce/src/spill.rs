//! Shuffle spill: optionally round-trip every shuffle partition through the
//! filesystem, modelling the distributed-FS hop between MapReduce rounds.
//!
//! GraphFlat stores its output *"into the distributed filesystem"* (§3.2.1)
//! and each Reduce round reads what the previous one wrote. `SpillMode::Disk`
//! serialises each partition to a file and reads it back before reduction,
//! so codec bugs or non-byte-clean messages fail loudly in tests; the
//! default `InMemory` mode skips the I/O for speed.

use crate::counters::Counters;
use crate::engine::KeyValue;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;

/// Where shuffle partitions live between phases.
#[derive(Debug, Clone, Default)]
pub enum SpillMode {
    /// Keep partitions in memory (fast path).
    #[default]
    InMemory,
    /// Write each partition to `dir` and read it back.
    Disk(PathBuf),
}

impl SpillMode {
    /// Round-trip a partition according to the mode. `tag` names the
    /// (round, partition) for the file name. Disk round-trips report what
    /// they wrote on the job's `spill.bytes` / `spill.records` counters
    /// (zero in `InMemory` mode — nothing was spilled).
    pub fn roundtrip(&self, tag: &str, records: Vec<KeyValue>, counters: &Counters) -> std::io::Result<Vec<KeyValue>> {
        match self {
            SpillMode::InMemory => Ok(records),
            SpillMode::Disk(dir) => {
                fs::create_dir_all(dir)?;
                let path = dir.join(format!("part-{tag}.bin"));
                let bytes = write_partition(&path, &records)?;
                counters.add("spill.bytes", bytes);
                counters.add("spill.records", records.len() as u64);
                counters.inc("spill.partitions");
                let back = read_partition(&path)?;
                fs::remove_file(&path).ok();
                Ok(back)
            }
        }
    }
}

/// Returns the number of bytes written (payload plus framing).
fn write_partition(path: &std::path::Path, records: &[KeyValue]) -> std::io::Result<u64> {
    let mut w = BufWriter::new(File::create(path)?);
    let mut bytes = 8u64;
    w.write_all(&(records.len() as u64).to_le_bytes())?;
    for kv in records {
        w.write_all(&(kv.key.len() as u32).to_le_bytes())?;
        w.write_all(&kv.key)?;
        w.write_all(&(kv.value.len() as u32).to_le_bytes())?;
        w.write_all(&kv.value)?;
        bytes += 8 + kv.key.len() as u64 + kv.value.len() as u64;
    }
    w.flush()?;
    Ok(bytes)
}

fn read_partition(path: &std::path::Path) -> std::io::Result<Vec<KeyValue>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut n8 = [0u8; 8];
    r.read_exact(&mut n8)?;
    let n = u64::from_le_bytes(n8) as usize;
    let mut out = Vec::with_capacity(n);
    let mut len4 = [0u8; 4];
    for _ in 0..n {
        r.read_exact(&mut len4)?;
        let klen = u32::from_le_bytes(len4) as usize;
        let mut key = vec![0u8; klen];
        r.read_exact(&mut key)?;
        r.read_exact(&mut len4)?;
        let vlen = u32::from_le_bytes(len4) as usize;
        let mut value = vec![0u8; vlen];
        r.read_exact(&mut value)?;
        out.push(KeyValue { key, value });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kvs() -> Vec<KeyValue> {
        vec![
            KeyValue { key: b"a".to_vec(), value: b"1".to_vec() },
            KeyValue { key: vec![], value: vec![0, 255, 7] },
            KeyValue { key: b"hub".to_vec(), value: vec![9; 1000] },
        ]
    }

    #[test]
    fn in_memory_is_identity_and_counts_nothing() {
        let records = kvs();
        let c = Counters::new();
        let out = SpillMode::InMemory.roundtrip("t", records.clone(), &c).unwrap();
        assert_eq!(out, records);
        assert_eq!(c.get("spill.bytes"), 0);
        assert_eq!(c.get("spill.records"), 0);
    }

    #[test]
    fn disk_roundtrip_preserves_records_and_counts_bytes() {
        let dir = std::env::temp_dir().join(format!("agl-spill-test-{}", std::process::id()));
        let records = kvs();
        let payload: u64 = records.iter().map(|kv| (kv.key.len() + kv.value.len()) as u64).sum();
        let c = Counters::new();
        let out = SpillMode::Disk(dir.clone()).roundtrip("r0-p1", records.clone(), &c).unwrap();
        assert_eq!(out, records);
        assert_eq!(c.get("spill.records"), records.len() as u64);
        assert_eq!(c.get("spill.partitions"), 1);
        assert_eq!(c.get("spill.bytes"), 8 + 8 * records.len() as u64 + payload, "payload plus framing");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_roundtrip_empty_partition() {
        let dir = std::env::temp_dir().join(format!("agl-spill-test-e-{}", std::process::id()));
        let c = Counters::new();
        let out = SpillMode::Disk(dir.clone()).roundtrip("r0-p0", vec![], &c).unwrap();
        assert!(out.is_empty());
        assert_eq!(c.get("spill.bytes"), 8, "just the record-count header");
        fs::remove_dir_all(&dir).ok();
    }
}
