//! Shuffle spill: optionally round-trip every shuffle partition through the
//! filesystem, modelling the distributed-FS hop between MapReduce rounds.
//!
//! GraphFlat stores its output *"into the distributed filesystem"* (§3.2.1)
//! and each Reduce round reads what the previous one wrote. `SpillMode::Disk`
//! serialises each partition to a file and reads it back before reduction,
//! so codec bugs or non-byte-clean messages fail loudly in tests; the
//! default `InMemory` mode skips the I/O for speed.

use crate::engine::KeyValue;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;

/// Where shuffle partitions live between phases.
#[derive(Debug, Clone, Default)]
pub enum SpillMode {
    /// Keep partitions in memory (fast path).
    #[default]
    InMemory,
    /// Write each partition to `dir` and read it back.
    Disk(PathBuf),
}

impl SpillMode {
    /// Round-trip a partition according to the mode. `tag` names the
    /// (round, partition) for the file name.
    pub fn roundtrip(&self, tag: &str, records: Vec<KeyValue>) -> std::io::Result<Vec<KeyValue>> {
        match self {
            SpillMode::InMemory => Ok(records),
            SpillMode::Disk(dir) => {
                fs::create_dir_all(dir)?;
                let path = dir.join(format!("part-{tag}.bin"));
                write_partition(&path, &records)?;
                let back = read_partition(&path)?;
                fs::remove_file(&path).ok();
                Ok(back)
            }
        }
    }
}

fn write_partition(path: &std::path::Path, records: &[KeyValue]) -> std::io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&(records.len() as u64).to_le_bytes())?;
    for kv in records {
        w.write_all(&(kv.key.len() as u32).to_le_bytes())?;
        w.write_all(&kv.key)?;
        w.write_all(&(kv.value.len() as u32).to_le_bytes())?;
        w.write_all(&kv.value)?;
    }
    w.flush()
}

fn read_partition(path: &std::path::Path) -> std::io::Result<Vec<KeyValue>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut n8 = [0u8; 8];
    r.read_exact(&mut n8)?;
    let n = u64::from_le_bytes(n8) as usize;
    let mut out = Vec::with_capacity(n);
    let mut len4 = [0u8; 4];
    for _ in 0..n {
        r.read_exact(&mut len4)?;
        let klen = u32::from_le_bytes(len4) as usize;
        let mut key = vec![0u8; klen];
        r.read_exact(&mut key)?;
        r.read_exact(&mut len4)?;
        let vlen = u32::from_le_bytes(len4) as usize;
        let mut value = vec![0u8; vlen];
        r.read_exact(&mut value)?;
        out.push(KeyValue { key, value });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kvs() -> Vec<KeyValue> {
        vec![
            KeyValue { key: b"a".to_vec(), value: b"1".to_vec() },
            KeyValue { key: vec![], value: vec![0, 255, 7] },
            KeyValue { key: b"hub".to_vec(), value: vec![9; 1000] },
        ]
    }

    #[test]
    fn in_memory_is_identity() {
        let records = kvs();
        let out = SpillMode::InMemory.roundtrip("t", records.clone()).unwrap();
        assert_eq!(out, records);
    }

    #[test]
    fn disk_roundtrip_preserves_records() {
        let dir = std::env::temp_dir().join(format!("agl-spill-test-{}", std::process::id()));
        let records = kvs();
        let out = SpillMode::Disk(dir.clone()).roundtrip("r0-p1", records.clone()).unwrap();
        assert_eq!(out, records);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_roundtrip_empty_partition() {
        let dir = std::env::temp_dir().join(format!("agl-spill-test-e-{}", std::process::id()));
        let out = SpillMode::Disk(dir.clone()).roundtrip("r0-p0", vec![]).unwrap();
        assert!(out.is_empty());
        fs::remove_dir_all(&dir).ok();
    }
}
