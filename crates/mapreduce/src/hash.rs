//! Deterministic key hashing for the shuffle.
//!
//! `std` hashers are randomly seeded per process; a re-executed task on a
//! real cluster (and in our fault-injection tests) must route records to the
//! same partition every time, so the shuffle uses an explicit FNV-1a.

/// FNV-1a over a byte string.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Partition a key into one of `n` shuffle buckets.
#[inline]
pub fn partition(key: &[u8], n: usize) -> usize {
    debug_assert!(n > 0);
    (fnv1a(key) % n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_tensor::{seeded_rng, Rng};

    #[test]
    fn known_values_stable() {
        // FNV-1a reference values.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn partition_in_range_and_deterministic() {
        for n in [1usize, 2, 7, 64] {
            for key in [&b"x"[..], b"hub-node", b""] {
                let p = partition(key, n);
                assert!(p < n);
                assert_eq!(p, partition(key, n));
            }
        }
    }

    #[test]
    fn spreads_sequential_keys() {
        // 1000 numeric keys into 10 buckets: no bucket should be empty or
        // hold the majority.
        let mut counts = [0usize; 10];
        for i in 0u64..1000 {
            counts[partition(&i.to_le_bytes(), 10)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 30), "no starved bucket: {counts:?}");
        assert!(counts.iter().all(|&c| c < 300), "no hot bucket: {counts:?}");
    }

    #[test]
    fn prop_partition_bounded() {
        let mut rng = seeded_rng(0xF17A);
        for _ in 0..256 {
            let len = rng.gen_range(0..32usize);
            let key: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
            let n = rng.gen_range(1..128usize);
            assert!(partition(&key, n) < n);
        }
    }
}
