//! Plan-level validation of K-round MapReduce pipelines.
//!
//! GraphFlat chains K+1 reduce rounds and GraphInfer K+2; each round's
//! emissions are the next round's inputs, and the retry story (re-execute
//! a failed task, get the same bytes) silently assumes two things the
//! compiler cannot check: **codec compatibility** between chained rounds —
//! round r must emit records round r+1 can decode — and **reducer
//! determinism** under record reordering. Both have bitten real systems;
//! this module makes them checkable at job construction.
//!
//! A [`JobPlan`] declares the wire signature each round consumes and
//! emits. [`JobPlanValidator::validate`] checks the chain (plus spill
//! sanity) and is run automatically under `debug_assertions` by
//! [`MapReduceJob::new`](crate::engine::MapReduceJob::new) whenever a plan
//! is attached to the [`JobConfig`].
//! [`JobPlanValidator::check_reducer_determinism`] is the sampled
//! double-run check: feed a reducer the same group with values in
//! different orders and require byte-identical emissions.

use crate::engine::{JobConfig, Reducer};
use crate::spill::SpillMode;
use std::fmt;

/// A wire-format signature for records crossing a shuffle boundary.
///
/// Signatures are compared by name: two rounds are codec-compatible iff
/// the upstream's `emits` names the same format as the downstream's
/// `consumes`. Use one stable name per (key, value) encoding pair, e.g.
/// `"flat-key/flat-msg"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireSig(pub &'static str);

impl fmt::Display for WireSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// What one reduce round consumes and emits.
#[derive(Debug, Clone)]
pub struct RoundPlan {
    /// Human-readable round name for diagnostics.
    pub name: String,
    pub consumes: WireSig,
    pub emits: WireSig,
}

/// The declared shape of a K-round pipeline.
#[derive(Debug, Clone)]
pub struct JobPlan {
    /// Signature of the map phase's emissions (consumed by round 0).
    pub map_emits: WireSig,
    /// One entry per reduce round, in execution order.
    pub rounds: Vec<RoundPlan>,
}

impl JobPlan {
    /// A pipeline whose every boundary uses one signature — the common
    /// case when a single tagged message enum crosses all K rounds
    /// (GraphFlat's `FlatMsg`, GraphInfer's `InferMsg`).
    pub fn homogeneous(sig: WireSig, n_rounds: usize) -> Self {
        let rounds =
            (0..n_rounds).map(|r| RoundPlan { name: format!("round-{r}"), consumes: sig, emits: sig }).collect();
        Self { map_emits: sig, rounds }
    }
}

/// Why a plan was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Plan has a different number of rounds than the config will run.
    RoundCountMismatch { plan_rounds: usize, config_rounds: usize },
    /// An upstream phase emits a format the downstream round cannot decode.
    CodecMismatch { boundary: String, emits: &'static str, consumes: &'static str },
    /// The spill configuration cannot work.
    SpillInvalid { reason: String },
    /// The sampled double-run check saw order-dependent emissions.
    NondeterministicReducer { round: usize, detail: String },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::RoundCountMismatch { plan_rounds, config_rounds } => {
                write!(f, "plan declares {plan_rounds} reduce round(s) but the config runs {config_rounds}")
            }
            PlanError::CodecMismatch { boundary, emits, consumes } => {
                write!(f, "codec mismatch at {boundary}: upstream emits `{emits}`, downstream consumes `{consumes}`")
            }
            PlanError::SpillInvalid { reason } => write!(f, "spill configuration invalid: {reason}"),
            PlanError::NondeterministicReducer { round, detail } => {
                write!(f, "reducer is order-sensitive in round {round}: {detail}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Validates a [`JobPlan`] against the [`JobConfig`] that will run it.
#[derive(Debug, Clone)]
pub struct JobPlanValidator<'a> {
    plan: &'a JobPlan,
}

impl<'a> JobPlanValidator<'a> {
    pub fn new(plan: &'a JobPlan) -> Self {
        Self { plan }
    }

    /// Structural validation: round counts, codec chaining, spill sanity.
    ///
    /// Run automatically under `debug_assertions` when the plan is attached
    /// to a config handed to `MapReduceJob::new`.
    pub fn validate(&self, cfg: &JobConfig) -> Result<(), PlanError> {
        if self.plan.rounds.len() != cfg.reduce_rounds {
            return Err(PlanError::RoundCountMismatch {
                plan_rounds: self.plan.rounds.len(),
                config_rounds: cfg.reduce_rounds,
            });
        }
        if let Some(first) = self.plan.rounds.first() {
            if first.consumes != self.plan.map_emits {
                return Err(PlanError::CodecMismatch {
                    boundary: format!("map → {}", first.name),
                    emits: self.plan.map_emits.0,
                    consumes: first.consumes.0,
                });
            }
        }
        for pair in self.plan.rounds.windows(2) {
            if pair[0].emits != pair[1].consumes {
                return Err(PlanError::CodecMismatch {
                    boundary: format!("{} → {}", pair[0].name, pair[1].name),
                    emits: pair[0].emits.0,
                    consumes: pair[1].consumes.0,
                });
            }
        }
        if let SpillMode::Disk(dir) = &cfg.spill {
            if dir.as_os_str().is_empty() {
                return Err(PlanError::SpillInvalid { reason: "empty spill directory".to_string() });
            }
            if dir.is_file() {
                return Err(PlanError::SpillInvalid {
                    reason: format!("spill path {} is an existing file", dir.display()),
                });
            }
        }
        Ok(())
    }

    /// Sampled double-run determinism check: run `reducer` on each sample
    /// group with its values in the given order, reversed, and rotated;
    /// every run must produce byte-identical emissions. Catches reducers
    /// whose output depends on shuffle arrival order — the class of bug
    /// that surfaces only when a retried task re-shuffles.
    pub fn check_reducer_determinism<R: Reducer>(
        &self,
        reducer: &R,
        round: usize,
        samples: &[(Vec<u8>, Vec<Vec<u8>>)],
    ) -> Result<(), PlanError> {
        for (key, values) in samples {
            let baseline = run_once(reducer, round, key, values);
            let mut reversed: Vec<Vec<u8>> = values.clone();
            reversed.reverse();
            let mut rotated: Vec<Vec<u8>> = values.clone();
            if !rotated.is_empty() {
                let mid = rotated.len() / 2;
                rotated.rotate_left(mid);
            }
            for (label, reordered) in [("reversed", &reversed), ("rotated", &rotated)] {
                let out = crate::counters::Counters::silenced(|| run_once(reducer, round, key, reordered));
                if out != baseline {
                    return Err(PlanError::NondeterministicReducer {
                        round,
                        detail: format!(
                            "key {:?}: {label} value order changed emissions ({} vs {} record(s))",
                            preview(key),
                            out.len(),
                            baseline.len()
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Reorder-determinism check for one **real** group sampled by the engine
/// (see `JobConfig::verify_determinism`): re-run `reducer` with the group's
/// values reversed and rotated and require the same **multiset** of
/// emissions as `baseline`.
///
/// Unlike [`JobPlanValidator::check_reducer_determinism`] (hand-fed samples,
/// byte-identical *sequences*), this compares sorted multisets: a reducer
/// that fans one message out per input value legitimately emits in value
/// order, and the engine re-sorts by key at the next shuffle anyway — only
/// the *content* must be order-free. Counter writes during the re-runs are
/// [silenced](crate::counters::Counters::silenced) so exact record counters
/// survive the double-run.
pub fn check_group_reorder_determinism<R: Reducer + ?Sized>(
    reducer: &R,
    round: usize,
    key: &[u8],
    values: &[Vec<u8>],
    baseline: &[(Vec<u8>, Vec<u8>)],
) -> Result<(), PlanError> {
    if values.len() < 2 {
        return Ok(());
    }
    let mut base = baseline.to_vec();
    base.sort();
    let mut reversed = values.to_vec();
    reversed.reverse();
    let mut rotated = values.to_vec();
    rotated.rotate_left(values.len() / 2);
    for (label, reordered) in [("reversed", &reversed), ("rotated", &rotated)] {
        let mut out = crate::counters::Counters::silenced(|| run_once(reducer, round, key, reordered));
        out.sort();
        if out != base {
            return Err(PlanError::NondeterministicReducer {
                round,
                detail: format!(
                    "key {:?}: {label} value order changed the emitted multiset ({} vs {} record(s))",
                    preview(key),
                    out.len(),
                    base.len()
                ),
            });
        }
    }
    Ok(())
}

fn run_once<R: Reducer + ?Sized>(reducer: &R, round: usize, key: &[u8], values: &[Vec<u8>]) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut out = Vec::new();
    let mut iter = values.iter().map(Vec::as_slice);
    reducer.reduce(round, key, &mut iter, &mut |k, v| out.push((k, v)));
    out
}

fn preview(key: &[u8]) -> String {
    let head: Vec<u8> = key.iter().take(8).copied().collect();
    format!("{head:?}{}", if key.len() > 8 { "…" } else { "" })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Codec;

    fn sig(s: &'static str) -> WireSig {
        WireSig(s)
    }

    #[test]
    fn homogeneous_plan_validates() {
        let plan = JobPlan::homogeneous(sig("msg"), 3);
        let cfg = JobConfig { reduce_rounds: 3, ..JobConfig::default() };
        assert!(JobPlanValidator::new(&plan).validate(&cfg).is_ok());
    }

    #[test]
    fn round_count_mismatch_rejected() {
        let plan = JobPlan::homogeneous(sig("msg"), 2);
        let cfg = JobConfig { reduce_rounds: 3, ..JobConfig::default() };
        assert_eq!(
            JobPlanValidator::new(&plan).validate(&cfg),
            Err(PlanError::RoundCountMismatch { plan_rounds: 2, config_rounds: 3 })
        );
    }

    #[test]
    fn inter_round_codec_mismatch_rejected() {
        let mut plan = JobPlan::homogeneous(sig("a"), 2);
        plan.rounds[1].consumes = sig("b");
        let cfg = JobConfig { reduce_rounds: 2, ..JobConfig::default() };
        let err = JobPlanValidator::new(&plan).validate(&cfg);
        assert!(matches!(err, Err(PlanError::CodecMismatch { emits: "a", consumes: "b", .. })), "{err:?}");
    }

    #[test]
    fn map_boundary_mismatch_rejected() {
        let mut plan = JobPlan::homogeneous(sig("a"), 1);
        plan.map_emits = sig("other");
        let cfg = JobConfig { reduce_rounds: 1, ..JobConfig::default() };
        assert!(matches!(
            JobPlanValidator::new(&plan).validate(&cfg),
            Err(PlanError::CodecMismatch { emits: "other", consumes: "a", .. })
        ));
    }

    #[test]
    fn empty_spill_dir_rejected() {
        let plan = JobPlan::homogeneous(sig("msg"), 1);
        let cfg = JobConfig { spill: SpillMode::Disk(std::path::PathBuf::new()), ..JobConfig::default() };
        assert!(matches!(JobPlanValidator::new(&plan).validate(&cfg), Err(PlanError::SpillInvalid { .. })));
    }

    struct SumReduce;
    impl Reducer for SumReduce {
        fn reduce(
            &self,
            _round: usize,
            key: &[u8],
            values: &mut dyn Iterator<Item = &[u8]>,
            emit: &mut dyn FnMut(Vec<u8>, Vec<u8>),
        ) {
            let total: u64 = values.map(|v| u64::from_bytes(v).unwrap()).sum();
            emit(key.to_vec(), total.to_bytes());
        }
    }

    /// Emits the first value it sees — the classic order-dependent bug.
    struct FirstReduce;
    impl Reducer for FirstReduce {
        fn reduce(
            &self,
            _round: usize,
            key: &[u8],
            values: &mut dyn Iterator<Item = &[u8]>,
            emit: &mut dyn FnMut(Vec<u8>, Vec<u8>),
        ) {
            if let Some(v) = values.next() {
                emit(key.to_vec(), v.to_vec());
            }
        }
    }

    fn sample_groups() -> Vec<(Vec<u8>, Vec<Vec<u8>>)> {
        vec![
            (vec![1], vec![3u64.to_bytes(), 5u64.to_bytes(), 7u64.to_bytes()]),
            (vec![2], vec![10u64.to_bytes(), 20u64.to_bytes()]),
        ]
    }

    #[test]
    fn commutative_reducer_passes_double_run() {
        let plan = JobPlan::homogeneous(sig("u64"), 1);
        assert!(JobPlanValidator::new(&plan).check_reducer_determinism(&SumReduce, 0, &sample_groups()).is_ok());
    }

    #[test]
    fn order_sensitive_reducer_caught() {
        let plan = JobPlan::homogeneous(sig("u64"), 1);
        let err = JobPlanValidator::new(&plan).check_reducer_determinism(&FirstReduce, 0, &sample_groups());
        assert!(matches!(err, Err(PlanError::NondeterministicReducer { round: 0, .. })), "{err:?}");
    }

    /// Emits each value back out, one record per value — the emission
    /// *sequence* follows arrival order but the multiset does not.
    struct FanOutReduce;
    impl Reducer for FanOutReduce {
        fn reduce(
            &self,
            _round: usize,
            key: &[u8],
            values: &mut dyn Iterator<Item = &[u8]>,
            emit: &mut dyn FnMut(Vec<u8>, Vec<u8>),
        ) {
            for v in values {
                emit(key.to_vec(), v.to_vec());
            }
        }
    }

    fn group() -> (Vec<u8>, Vec<Vec<u8>>) {
        (vec![9], vec![1u64.to_bytes(), 2u64.to_bytes(), 3u64.to_bytes()])
    }

    fn baseline_of<R: Reducer>(r: &R, key: &[u8], values: &[Vec<u8>]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        let mut iter = values.iter().map(Vec::as_slice);
        r.reduce(0, key, &mut iter, &mut |k, v| out.push((k, v)));
        out
    }

    #[test]
    fn group_reorder_check_accepts_order_free_multisets() {
        let (key, values) = group();
        let base = baseline_of(&FanOutReduce, &key, &values);
        assert!(check_group_reorder_determinism(&FanOutReduce, 0, &key, &values, &base).is_ok());
        let base = baseline_of(&SumReduce, &key, &values);
        assert!(check_group_reorder_determinism(&SumReduce, 0, &key, &values, &base).is_ok());
    }

    #[test]
    fn group_reorder_check_catches_first_value_dependence() {
        let (key, values) = group();
        let base = baseline_of(&FirstReduce, &key, &values);
        let err = check_group_reorder_determinism(&FirstReduce, 0, &key, &values, &base);
        assert!(matches!(err, Err(PlanError::NondeterministicReducer { round: 0, .. })), "{err:?}");
    }

    #[test]
    fn group_reorder_check_skips_singletons() {
        let key = vec![1];
        let values = vec![5u64.to_bytes()];
        let base = baseline_of(&FirstReduce, &key, &values);
        assert!(check_group_reorder_determinism(&FirstReduce, 0, &key, &values, &base).is_ok());
    }
}
