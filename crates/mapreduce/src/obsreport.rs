//! Offline analysis of observability artifacts: the engine behind
//! `agl-cli obs-report`.
//!
//! A distributed run writes two files — a merged Chrome trace (spans from
//! the driver and every worker, causally linked by `sid`/`psid`) and a
//! metrics JSON dump (counters + histograms, including the per-connection
//! RPC telemetry from [`crate::transport::FrameStats`]). [`ObsReport`]
//! reloads them, schema-validates the span identities, and derives the
//! operational questions the ROADMAP's straggler/skew work needs answered:
//! per-stage medians, a per-round straggler ranking across workers, and
//! shuffle bytes per worker. Output is deterministic: every aggregation
//! sorts on stable keys, so a logical-clock run renders byte-identically.

use agl_obs::json::Value;
use std::collections::{BTreeMap, BTreeSet};

/// One span reloaded from the Chrome trace export.
#[derive(Debug, Clone)]
pub struct SpanRow {
    /// Track (lane) name, reconstructed from `thread_name` metadata.
    pub track: String,
    /// Span name.
    pub name: String,
    /// Begin timestamp (clock units as exported).
    pub ts: f64,
    /// Duration (clock units as exported).
    pub dur: f64,
    /// Stable span id (`sid` field).
    pub span_id: u64,
    /// Parent span id (`psid` field, 0 = root).
    pub parent_id: u64,
}

/// Aggregate duration statistics for one span name.
#[derive(Debug, Clone)]
pub struct StageStat {
    /// Span name the row aggregates.
    pub name: String,
    /// Number of spans with that name.
    pub count: usize,
    /// Median duration.
    pub median: f64,
    /// Maximum duration.
    pub max: f64,
    /// Summed duration.
    pub total: f64,
}

/// One worker's reduce-span statistics within one round — a row of the
/// straggler ranking.
#[derive(Debug, Clone)]
pub struct WorkerRoundStat {
    /// Reduce round.
    pub round: u32,
    /// Worker lane prefix (e.g. `w0`).
    pub worker: String,
    /// Reduce tasks the worker executed in the round.
    pub tasks: usize,
    /// Median reduce-span duration.
    pub median: f64,
    /// Maximum reduce-span duration — the straggler sort key.
    pub max: f64,
    /// Summed reduce-span duration.
    pub total: f64,
}

/// The assembled report. Build with [`ObsReport::from_artifacts`], print
/// with [`ObsReport::render`].
#[derive(Debug)]
pub struct ObsReport {
    /// All spans, in export order.
    pub spans: Vec<SpanRow>,
    /// Per-span-name statistics, sorted by name.
    pub stages: Vec<StageStat>,
    /// Per-round worker ranking, slowest (by max duration) first.
    pub stragglers: Vec<WorkerRoundStat>,
    /// `(worker, bytes)` sent to each worker over its shuffle connection,
    /// from `rpc.shuffle.{worker}.send.*.bytes` counters. Empty without a
    /// metrics artifact.
    pub shuffle_bytes: Vec<(String, u64)>,
    /// Spans on worker lanes (track contains `/`).
    pub worker_spans: usize,
    /// Worker-lane spans whose `psid` resolves to another span in the
    /// trace — the causal-linkage health check.
    pub parented_worker_spans: usize,
    /// Total RPC frames across all `rpc.*.frames` counters.
    pub rpc_messages: u64,
    /// Number of `rpc.*` histograms present in the metrics artifact.
    pub rpc_histograms: usize,
}

fn median_of(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Format a duration: integral values (logical ticks) print without a
/// fraction, fractional ones (monotonic microseconds) keep three decimals.
fn fmt_dur(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// `w0/reduce.r1.p3` → `(worker "w0", round 1)`.
fn worker_round(track: &str) -> Option<(String, u32)> {
    let (worker, rest) = track.split_once('/')?;
    let after = rest.strip_prefix("reduce.r")?;
    let digits: String = after.chars().take_while(|c| c.is_ascii_digit()).collect();
    let round = digits.parse().ok()?;
    Some((worker.to_string(), round))
}

impl ObsReport {
    /// Parse the trace artifact (required) and metrics artifact (optional),
    /// validating the schema: a `traceEvents` array whose `X` events all
    /// carry numeric `sid`/`psid` span identities.
    pub fn from_artifacts(trace_json: &str, metrics_json: Option<&str>) -> Result<Self, String> {
        let trace = Value::parse(trace_json).map_err(|e| format!("trace artifact: {e}"))?;
        let events =
            trace.get("traceEvents").and_then(Value::as_arr).ok_or("trace artifact: missing traceEvents array")?;

        let mut tracks: BTreeMap<u64, String> = BTreeMap::new();
        for ev in events {
            if ev.get("ph").and_then(Value::as_str) == Some("M")
                && ev.get("name").and_then(Value::as_str) == Some("thread_name")
            {
                let tid = ev.get("tid").and_then(Value::as_u64).ok_or("metadata event without tid")?;
                let name = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .ok_or("thread_name metadata without args.name")?;
                tracks.insert(tid, name.to_string());
            }
        }

        let mut spans = Vec::new();
        for ev in events {
            if ev.get("ph").and_then(Value::as_str) != Some("X") {
                continue;
            }
            let tid = ev.get("tid").and_then(Value::as_u64).ok_or("X event without tid")?;
            let track = tracks.get(&tid).cloned().ok_or_else(|| format!("X event on unnamed tid {tid}"))?;
            let name = ev.get("name").and_then(Value::as_str).ok_or("X event without name")?.to_string();
            let ts = ev.get("ts").and_then(Value::as_f64).ok_or("X event without ts")?;
            let dur = ev.get("dur").and_then(Value::as_f64).ok_or("X event without dur")?;
            let span_id = ev.get("sid").and_then(Value::as_u64).ok_or("X event without sid span identity")?;
            let parent_id = ev.get("psid").and_then(Value::as_u64).ok_or("X event without psid span identity")?;
            spans.push(SpanRow { track, name, ts, dur, span_id, parent_id });
        }

        // Per-stage (span name) statistics.
        let mut by_name: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
        for s in &spans {
            by_name.entry(&s.name).or_default().push(s.dur);
        }
        let stages = by_name
            .into_iter()
            .map(|(name, mut durs)| {
                durs.sort_by(f64::total_cmp);
                StageStat {
                    name: name.to_string(),
                    count: durs.len(),
                    median: median_of(&durs),
                    max: durs.last().copied().unwrap_or(0.0),
                    total: durs.iter().sum(),
                }
            })
            .collect();

        // Straggler ranking: reduce spans on worker lanes, keyed
        // (round, worker), ranked within each round by max duration.
        let mut by_rw: BTreeMap<(u32, String), Vec<f64>> = BTreeMap::new();
        for s in &spans {
            if let Some((worker, round)) = worker_round(&s.track) {
                by_rw.entry((round, worker)).or_default().push(s.dur);
            }
        }
        let mut stragglers: Vec<WorkerRoundStat> = by_rw
            .into_iter()
            .map(|((round, worker), mut durs)| {
                durs.sort_by(f64::total_cmp);
                WorkerRoundStat {
                    round,
                    worker,
                    tasks: durs.len(),
                    median: median_of(&durs),
                    max: durs.last().copied().unwrap_or(0.0),
                    total: durs.iter().sum(),
                }
            })
            .collect();
        stragglers.sort_by(|a, b| a.round.cmp(&b.round).then(b.max.total_cmp(&a.max)).then(a.worker.cmp(&b.worker)));

        // Causal linkage health: worker spans whose parent exists.
        let all_ids: BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
        let worker_spans = spans.iter().filter(|s| s.track.contains('/')).count();
        let parented_worker_spans =
            spans.iter().filter(|s| s.track.contains('/') && all_ids.contains(&s.parent_id)).count();

        // Metrics-side aggregates.
        let mut shuffle: BTreeMap<String, u64> = BTreeMap::new();
        let mut rpc_messages = 0u64;
        let mut rpc_histograms = 0usize;
        if let Some(mj) = metrics_json {
            let metrics = Value::parse(mj).map_err(|e| format!("metrics artifact: {e}"))?;
            if let Some(Value::Obj(counters)) = metrics.get("counters") {
                for (name, v) in counters {
                    let v = v.as_u64().unwrap_or(0);
                    if name.starts_with("rpc.") && name.ends_with(".frames") {
                        rpc_messages += v;
                    }
                    if let Some(rest) = name.strip_prefix("rpc.shuffle.") {
                        if let Some((worker, tail)) = rest.split_once(".send.") {
                            if tail.ends_with(".bytes") {
                                *shuffle.entry(worker.to_string()).or_insert(0) += v;
                            }
                        }
                    }
                }
            }
            if let Some(Value::Obj(hists)) = metrics.get("histograms") {
                rpc_histograms = hists.iter().filter(|(name, _)| name.starts_with("rpc.")).count();
            }
        }

        Ok(Self {
            spans,
            stages,
            stragglers,
            shuffle_bytes: shuffle.into_iter().collect(),
            worker_spans,
            parented_worker_spans,
            rpc_messages,
            rpc_histograms,
        })
    }

    /// Deterministic human-readable rendering. The `parented_worker_spans=`,
    /// `rpc_messages=` and `rpc_histograms=` lines are stable key=value
    /// pairs for CI assertions.
    pub fn render(&self) -> String {
        let n_tracks: BTreeSet<&str> = self.spans.iter().map(|s| s.track.as_str()).collect();
        let mut out = format!("obs-report: {} spans on {} tracks\n", self.spans.len(), n_tracks.len());
        out.push_str("stages (per span name):\n");
        out.push_str(&format!("  {:<32} {:>6} {:>10} {:>10} {:>10}\n", "stage", "count", "median", "max", "total"));
        for st in &self.stages {
            out.push_str(&format!(
                "  {:<32} {:>6} {:>10} {:>10} {:>10}\n",
                st.name,
                st.count,
                fmt_dur(st.median),
                fmt_dur(st.max),
                fmt_dur(st.total)
            ));
        }
        if !self.stragglers.is_empty() {
            out.push_str("stragglers (per round, slowest max first):\n");
            for s in &self.stragglers {
                out.push_str(&format!(
                    "  round {:<3} {:<6} tasks={} max={} median={} total={}\n",
                    s.round,
                    s.worker,
                    s.tasks,
                    fmt_dur(s.max),
                    fmt_dur(s.median),
                    fmt_dur(s.total)
                ));
            }
        }
        if !self.shuffle_bytes.is_empty() {
            out.push_str("shuffle bytes sent per worker:\n");
            for (worker, bytes) in &self.shuffle_bytes {
                out.push_str(&format!("  {worker:<6} {bytes}\n"));
            }
        }
        out.push_str(&format!(
            "parented_worker_spans={} (of {} worker spans)\n",
            self.parented_worker_spans, self.worker_spans
        ));
        out.push_str(&format!("rpc_messages={}\n", self.rpc_messages));
        out.push_str(&format!("rpc_histograms={}\n", self.rpc_histograms));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_obs::{Clock, Obs};

    fn sample_artifacts() -> (String, String) {
        let obs = Obs::enabled_with_identity(Clock::logical(), 9, 0);
        {
            let rpc = obs.span("dist.w0", "rpc.reduce.r0");
            let ctx = rpc.context();
            let worker = Obs::enabled_with_identity(Clock::logical(), 9, 1);
            {
                let _t = worker.span_child_of("reduce.r0.p0", "reduce", ctx);
            }
            {
                let _t = worker.span_child_of("reduce.r0.p1", "reduce", ctx);
            }
            drop(rpc);
            obs.import_trace("w0/", worker.trace().unwrap().events());
        }
        obs.metric_add("rpc.shuffle.w0.send.reduce.frames", 2);
        obs.metric_add("rpc.shuffle.w0.send.reduce.bytes", 640);
        obs.metric_add("rpc.shuffle.w0.recv.reduce_done.frames", 2);
        obs.observe("rpc.shuffle.w0.send.reduce.frame_bytes", 320);
        let trace = obs.trace().unwrap().to_chrome_json();
        let metrics = obs.metrics().unwrap().to_json();
        (trace, metrics)
    }

    #[test]
    fn report_links_worker_spans_and_ranks_stages() {
        let (trace, metrics) = sample_artifacts();
        let r = ObsReport::from_artifacts(&trace, Some(&metrics)).unwrap();
        assert_eq!(r.worker_spans, 2);
        assert_eq!(r.parented_worker_spans, 2, "both reduce spans parent under the rpc span");
        assert_eq!(r.rpc_messages, 4);
        assert_eq!(r.rpc_histograms, 1);
        assert_eq!(r.shuffle_bytes, vec![("w0".to_string(), 640)]);
        let reduce = r.stages.iter().find(|s| s.name == "reduce").unwrap();
        assert_eq!(reduce.count, 2);
        assert_eq!(r.stragglers.len(), 1);
        assert_eq!(r.stragglers[0].worker, "w0");
        assert_eq!(r.stragglers[0].tasks, 2);
        let text = r.render();
        assert!(text.contains("parented_worker_spans=2 (of 2 worker spans)"), "{text}");
        assert!(text.contains("rpc_messages=4"), "{text}");
        assert!(text.contains("stragglers"), "{text}");
    }

    #[test]
    fn render_is_deterministic() {
        let (trace, metrics) = sample_artifacts();
        let a = ObsReport::from_artifacts(&trace, Some(&metrics)).unwrap().render();
        let b = ObsReport::from_artifacts(&trace, Some(&metrics)).unwrap().render();
        assert_eq!(a, b);
    }

    #[test]
    fn schema_violations_are_typed_errors() {
        assert!(ObsReport::from_artifacts("{}", None).unwrap_err().contains("traceEvents"));
        assert!(ObsReport::from_artifacts("not json", None).is_err());
        // An X event without span identities fails validation.
        let bad = r#"{"traceEvents":[
            {"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"t"}},
            {"name":"x","cat":"agl","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,"args":{}}
        ]}"#;
        assert!(ObsReport::from_artifacts(bad, None).unwrap_err().contains("sid"));
    }

    #[test]
    fn works_without_metrics_artifact() {
        let (trace, _) = sample_artifacts();
        let r = ObsReport::from_artifacts(&trace, None).unwrap();
        assert_eq!(r.rpc_messages, 0);
        assert!(r.shuffle_bytes.is_empty());
        assert_eq!(r.parented_worker_spans, 2);
    }

    #[test]
    fn median_handles_even_and_odd() {
        assert_eq!(median_of(&[]), 0.0);
        assert_eq!(median_of(&[3.0]), 3.0);
        assert_eq!(median_of(&[1.0, 2.0, 10.0]), 2.0);
        assert_eq!(median_of(&[1.0, 3.0]), 2.0);
        assert_eq!(worker_round("w3/reduce.r12.p1"), Some(("w3".to_string(), 12)));
        assert_eq!(worker_round("driver"), None);
        assert_eq!(worker_round("w0/other"), None);
    }
}
