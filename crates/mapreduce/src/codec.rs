//! Length-prefixed binary encoding for records crossing the shuffle.
//!
//! The paper flattens k-hop neighborhoods to protobuf strings; this module
//! is the dependency-light equivalent (see DESIGN.md). All integers are
//! little-endian fixed width; variable-length payloads are `u32`-length
//! prefixed. The format is intentionally boring: the point is that every
//! message crossing a phase boundary survives a byte round-trip, which the
//! property tests pin down.

use std::fmt;

/// Decoding failure: truncated or malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Types that can cross a shuffle boundary.
pub trait Codec: Sized {
    fn encode(&self, buf: &mut Vec<u8>);
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Decode, requiring the whole input to be consumed.
    fn from_bytes(mut input: &[u8]) -> Result<Self, CodecError> {
        let v = Self::decode(&mut input)?;
        if !input.is_empty() {
            return Err(CodecError(format!("{} trailing bytes", input.len())));
        }
        Ok(v)
    }
}

/// Take `n` bytes off the front of `input`.
pub fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], CodecError> {
    if input.len() < n {
        return Err(CodecError(format!("need {n} bytes, have {}", input.len())));
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub fn get_u8(input: &mut &[u8]) -> Result<u8, CodecError> {
    Ok(take(input, 1)?[0])
}

pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn get_u32(input: &mut &[u8]) -> Result<u32, CodecError> {
    let b = take(input, 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn get_u64(input: &mut &[u8]) -> Result<u64, CodecError> {
    let b = take(input, 8)?;
    Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
}

pub fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn get_f32(input: &mut &[u8]) -> Result<f32, CodecError> {
    let b = take(input, 4)?;
    Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

/// `u32` length-prefixed byte string.
pub fn put_bytes(buf: &mut Vec<u8>, v: &[u8]) {
    put_u32(buf, v.len() as u32);
    buf.extend_from_slice(v);
}

pub fn get_bytes<'a>(input: &mut &'a [u8]) -> Result<&'a [u8], CodecError> {
    let n = get_u32(input)? as usize;
    take(input, n)
}

/// `u32`-count-prefixed vector of `f32`.
pub fn put_f32s(buf: &mut Vec<u8>, v: &[f32]) {
    put_u32(buf, v.len() as u32);
    for &x in v {
        put_f32(buf, x);
    }
}

pub fn get_f32s(input: &mut &[u8]) -> Result<Vec<f32>, CodecError> {
    let n = get_u32(input)? as usize;
    if input.len() < n * 4 {
        return Err(CodecError(format!("f32 vec of {n} exceeds remaining {}", input.len())));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_f32(input)?);
    }
    Ok(out)
}

/// Version byte for the span-context wire header; bump on layout change.
const SPAN_CTX_VERSION: u8 = 1;

/// Append an optional span context header: a presence/version byte (`0` =
/// absent, `1` = v1) followed by `trace_id` and `span_id` for v1. Every RPC
/// request carries one so server-side spans can parent under the caller.
pub fn put_span_ctx(buf: &mut Vec<u8>, ctx: Option<agl_obs::SpanContext>) {
    match ctx {
        None => put_u8(buf, 0),
        Some(c) => {
            put_u8(buf, SPAN_CTX_VERSION);
            put_u64(buf, c.trace_id);
            put_u64(buf, c.span_id);
        }
    }
}

/// Decode a span context header written by [`put_span_ctx`]. An unknown
/// version byte is an error — a silently dropped context would sever the
/// causal chain without anyone noticing.
pub fn get_span_ctx(input: &mut &[u8]) -> Result<Option<agl_obs::SpanContext>, CodecError> {
    match get_u8(input)? {
        0 => Ok(None),
        1 => {
            let trace_id = get_u64(input)?;
            let span_id = get_u64(input)?;
            Ok(Some(agl_obs::SpanContext { trace_id, span_id }))
        }
        v => Err(CodecError(format!("unknown span context version {v}"))),
    }
}

/// Append a counter snapshot: `u32` count, then `(name, value)` pairs.
/// Used by the `MetricsSnapshot` / `Bye` messages that ship worker-side
/// metrics to the driver.
pub fn put_counters(buf: &mut Vec<u8>, counters: &[(String, u64)]) {
    put_u32(buf, counters.len() as u32);
    for (name, value) in counters {
        put_bytes(buf, name.as_bytes());
        put_u64(buf, *value);
    }
}

/// Decode a counter snapshot written by [`put_counters`].
pub fn get_counters(input: &mut &[u8]) -> Result<Vec<(String, u64)>, CodecError> {
    let n = get_u32(input)? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = String::from_utf8(get_bytes(input)?.to_vec()).map_err(|e| CodecError(e.to_string()))?;
        out.push((name, get_u64(input)?));
    }
    Ok(out)
}

/// Append one [`agl_obs::TraceEvent`] — the unit every `Bye`/shutdown
/// message uses to ship a worker's spans back to its driver.
pub fn put_trace_event(buf: &mut Vec<u8>, e: &agl_obs::TraceEvent) {
    put_bytes(buf, e.track.as_bytes());
    put_u64(buf, e.seq);
    put_bytes(buf, e.name.as_bytes());
    put_u64(buf, e.ts);
    put_u64(buf, e.dur);
    put_u64(buf, e.depth as u64);
    put_u64(buf, e.span_id);
    put_u64(buf, e.parent_id);
    put_u32(buf, e.args.len() as u32);
    for (k, v) in &e.args {
        put_bytes(buf, k.as_bytes());
        put_u64(buf, *v);
    }
}

fn get_string(input: &mut &[u8]) -> Result<String, CodecError> {
    String::from_utf8(get_bytes(input)?.to_vec()).map_err(|e| CodecError(format!("non-utf8 string: {e}")))
}

/// Decode a trace event written by [`put_trace_event`].
pub fn get_trace_event(input: &mut &[u8]) -> Result<agl_obs::TraceEvent, CodecError> {
    let track = get_string(input)?;
    let seq = get_u64(input)?;
    let name = get_string(input)?;
    let ts = get_u64(input)?;
    let dur = get_u64(input)?;
    let depth = get_u64(input)? as usize;
    let span_id = get_u64(input)?;
    let parent_id = get_u64(input)?;
    let n_args = get_u32(input)? as usize;
    let mut args = Vec::with_capacity(n_args);
    for _ in 0..n_args {
        let k = get_string(input)?;
        let v = get_u64(input)?;
        args.push((k, v));
    }
    Ok(agl_obs::TraceEvent { track, seq, name, ts, dur, depth, span_id, parent_id, args })
}

impl Codec for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, *self);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        get_u64(input)
    }
}

impl Codec for Vec<u8> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_bytes(buf, self);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(get_bytes(input)?.to_vec())
    }
}

impl Codec for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_bytes(buf, self.as_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        String::from_utf8(get_bytes(input)?.to_vec()).map_err(|e| CodecError(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_tensor::{seeded_rng, Rng};

    #[test]
    fn u64_roundtrip() {
        let v = 0xDEAD_BEEF_u64;
        assert_eq!(u64::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut b = 7u64.to_bytes();
        b.push(0);
        assert!(u64::from_bytes(&b).is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let b = 7u64.to_bytes();
        assert!(u64::from_bytes(&b[..5]).is_err());
        let mut short: &[u8] = &[1, 2];
        assert!(get_u32(&mut short).is_err());
    }

    #[test]
    fn nested_bytes_roundtrip() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"hello");
        put_bytes(&mut buf, b"");
        put_u32(&mut buf, 42);
        let mut r: &[u8] = &buf;
        assert_eq!(get_bytes(&mut r).unwrap(), b"hello");
        assert_eq!(get_bytes(&mut r).unwrap(), b"");
        assert_eq!(get_u32(&mut r).unwrap(), 42);
        assert!(r.is_empty());
    }

    #[test]
    fn prop_f32s_roundtrip() {
        let mut rng = seeded_rng(0xC0DEC_01);
        for _ in 0..64 {
            let len = rng.gen_range(0..64usize);
            let v: Vec<f32> = (0..len).map(|_| rng.gen_range(-1e6f32..1e6)).collect();
            let mut buf = Vec::new();
            put_f32s(&mut buf, &v);
            let mut r: &[u8] = &buf;
            let back = get_f32s(&mut r).unwrap();
            assert_eq!(v, back);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn prop_string_roundtrip() {
        let mut rng = seeded_rng(0xC0DEC_02);
        for _ in 0..64 {
            let len = rng.gen_range(0..64usize);
            let s: String = (0..len)
                .map(|_| loop {
                    // Arbitrary scalar values, including multibyte ones.
                    if let Some(c) = char::from_u32(rng.gen_range(0..=0x10_FFFFu32)) {
                        break c;
                    }
                })
                .collect();
            let b = s.clone().to_bytes();
            assert_eq!(String::from_bytes(&b).unwrap(), s);
        }
    }

    #[test]
    fn span_ctx_header_round_trips() {
        let mut buf = Vec::new();
        put_span_ctx(&mut buf, None);
        put_span_ctx(&mut buf, Some(agl_obs::SpanContext { trace_id: 7, span_id: u64::MAX - 1 }));
        let mut r: &[u8] = &buf;
        assert_eq!(get_span_ctx(&mut r).unwrap(), None);
        let ctx = get_span_ctx(&mut r).unwrap().unwrap();
        assert_eq!((ctx.trace_id, ctx.span_id), (7, u64::MAX - 1));
        assert!(r.is_empty());
    }

    #[test]
    fn span_ctx_unknown_version_rejected() {
        let mut r: &[u8] = &[9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        let err = get_span_ctx(&mut r).unwrap_err();
        assert!(err.0.contains("unknown span context version 9"), "{err}");
    }

    #[test]
    fn span_ctx_truncated_rejected() {
        let mut buf = Vec::new();
        put_span_ctx(&mut buf, Some(agl_obs::SpanContext { trace_id: 1, span_id: 2 }));
        let mut r: &[u8] = &buf[..buf.len() - 3];
        assert!(get_span_ctx(&mut r).is_err());
    }

    #[test]
    fn counters_round_trip() {
        let counters = vec![("a.b".to_string(), 0u64), ("w0.reduce".to_string(), u64::MAX)];
        let mut buf = Vec::new();
        put_counters(&mut buf, &counters);
        let mut r: &[u8] = &buf;
        assert_eq!(get_counters(&mut r).unwrap(), counters);
        assert!(r.is_empty());
        // Truncated: count claims more entries than the payload holds.
        let mut short: &[u8] = &buf[..buf.len() - 4];
        assert!(get_counters(&mut short).is_err());
    }

    #[test]
    fn trace_event_round_trips_span_identities() {
        let e = agl_obs::TraceEvent {
            track: "w0/reduce.r0.p1".to_string(),
            seq: 3,
            name: "reduce".to_string(),
            ts: 10,
            dur: 5,
            depth: 1,
            span_id: u64::MAX - 7,
            parent_id: 42,
            args: vec![("records".to_string(), 9)],
        };
        let mut buf = Vec::new();
        put_trace_event(&mut buf, &e);
        let mut r: &[u8] = &buf;
        let back = get_trace_event(&mut r).unwrap();
        assert_eq!(format!("{e:?}"), format!("{back:?}"));
        assert!(r.is_empty());
    }

    #[test]
    fn prop_decode_never_panics() {
        // Malformed input must produce Err, not panic.
        let mut rng = seeded_rng(0xC0DEC_03);
        for _ in 0..128 {
            let len = rng.gen_range(0..128usize);
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
            let _ = u64::from_bytes(&bytes);
            let _ = String::from_bytes(&bytes);
            let mut r: &[u8] = &bytes;
            let _ = get_f32s(&mut r);
        }
    }
}
