//! Injectable task failures.
//!
//! A real MapReduce tolerates machine loss by discarding a failed task's
//! partial output and re-executing it elsewhere. We reproduce the same
//! contract: a [`FaultPlan`] names task attempts that must "crash", the
//! engine discards their output and retries, and — because tasks are
//! deterministic — the job result is unaffected. The integration tests
//! assert output equality with and without injected faults, which is the
//! fault-tolerance property the paper leans on MapReduce for.

use std::collections::HashMap;

/// Which phase a task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    Map,
    /// Reduce round `r` (0-based).
    Reduce(usize),
}

/// Identity of a task within a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId {
    pub kind: TaskKind,
    pub index: usize,
}

impl TaskId {
    pub fn map(index: usize) -> Self {
        Self { kind: TaskKind::Map, index }
    }

    pub fn reduce(round: usize, index: usize) -> Self {
        Self { kind: TaskKind::Reduce(round), index }
    }
}

/// How many attempts of each task should fail before one succeeds.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    failures: HashMap<TaskId, usize>,
}

impl FaultPlan {
    /// A plan with no injected failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Fail the first `attempts` attempts of `task`.
    pub fn fail_first(mut self, task: TaskId, attempts: usize) -> Self {
        self.failures.insert(task, attempts);
        self
    }

    /// Should attempt number `attempt` (0-based) of `task` crash?
    pub fn should_fail(&self, task: TaskId, attempt: usize) -> bool {
        self.failures.get(&task).is_some_and(|&n| attempt < n)
    }

    /// True when the plan injects at least one failure.
    pub fn is_active(&self) -> bool {
        !self.failures.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_first_n_attempts_only() {
        let p = FaultPlan::none().fail_first(TaskId::map(0), 2);
        assert!(p.should_fail(TaskId::map(0), 0));
        assert!(p.should_fail(TaskId::map(0), 1));
        assert!(!p.should_fail(TaskId::map(0), 2));
        assert!(!p.should_fail(TaskId::map(1), 0));
        assert!(!p.should_fail(TaskId::reduce(0, 0), 0));
    }

    #[test]
    fn rounds_are_distinct_tasks() {
        let p = FaultPlan::none().fail_first(TaskId::reduce(1, 3), 1);
        assert!(p.should_fail(TaskId::reduce(1, 3), 0));
        assert!(!p.should_fail(TaskId::reduce(0, 3), 0));
        assert!(p.is_active());
        assert!(!FaultPlan::none().is_active());
    }
}
