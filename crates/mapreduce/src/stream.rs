//! Streaming MapReduce executor: the same `Map → (shuffle → Reduce)^K`
//! job shape as [`crate::engine::MapReduceJob`], run **sequentially in
//! bounded memory**.
//!
//! The thread-pool engine materialises every partition of a round — plus
//! the whole next round's output — in memory at once. This executor instead
//! streams: one map task's buckets, then one reduce partition's records and
//! its emissions, are resident at a time; everything pending is parked in
//! the configured [`SpillMode`] (per-partition files under `Disk`, plain
//! vectors under `InMemory`). The high-water mark is reported on the
//! `stream.peak_resident_bytes` counter, which is what makes the
//! InferTurbo-style full-graph inference claim *checkable*: peak memory is
//! `O(largest partition + its output)`, not `O(graph)`.
//!
//! **Byte-identity.** The executor reproduces the engine's record order
//! exactly — same map striping, same producer-task merge order per
//! partition, same final-round flatten — so for any deterministic job
//! `StreamJob::run` output is byte-identical to `MapReduceJob::run` output
//! (pinned by tests here and by the `infer-stream` CI smoke).

use crate::counters::Counters;
use crate::engine::{
    combine_bucket, lock_ignoring_poison, reduce_partition, JobConfig, JobError, JobResult, KeyValue, Mapper, Reducer,
    ShuffleCombiner,
};
use crate::hash::partition;
use crate::spill::SpillMode;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::Mutex;

/// Payload bytes of one record as accounted by the shuffle counters.
fn kv_bytes(kv: &KeyValue) -> u64 {
    (kv.key.len() + kv.value.len()) as u64
}

fn bucket_bytes(records: &[KeyValue]) -> u64 {
    records.iter().map(kv_bytes).sum()
}

/// Where one round's pending partitions live until they are reduced.
enum Pending {
    /// One vector per partition, appended in producer order.
    Mem(Vec<Vec<KeyValue>>),
    /// One append-only file per partition (`stream-r{round}-p{p}.bin`),
    /// length-framed records, no header; read back at consume time.
    Disk { dir: PathBuf, round: usize, counts: Vec<u64> },
}

impl Pending {
    fn new(spill: &SpillMode, round: usize, r_parts: usize) -> Self {
        match spill {
            SpillMode::InMemory => Pending::Mem((0..r_parts).map(|_| Vec::new()).collect()),
            SpillMode::Disk(dir) => Pending::Disk { dir: dir.clone(), round, counts: vec![0; r_parts] },
        }
    }

    /// Bytes this store currently holds in memory (0 for `Disk`).
    fn mem_bytes(&self) -> u64 {
        match self {
            Pending::Mem(parts) => parts.iter().map(|p| bucket_bytes(p)).sum(),
            Pending::Disk { .. } => 0,
        }
    }

    fn path(dir: &std::path::Path, round: usize, p: usize) -> PathBuf {
        dir.join(format!("stream-r{round}-p{p}.bin"))
    }

    /// Append one producer bucket to partition `p`. Disk appends report on
    /// the same `spill.*` counters the engine's round-trip uses.
    fn append(&mut self, p: usize, bucket: Vec<KeyValue>, counters: &Counters) -> Result<(), JobError> {
        match self {
            Pending::Mem(parts) => {
                parts[p].extend(bucket);
                Ok(())
            }
            Pending::Disk { dir, round, counts } => {
                if bucket.is_empty() {
                    return Ok(());
                }
                std::fs::create_dir_all(&*dir)?;
                let mut w =
                    BufWriter::new(OpenOptions::new().create(true).append(true).open(Self::path(dir, *round, p))?);
                let mut bytes = 0u64;
                for kv in &bucket {
                    w.write_all(&(kv.key.len() as u32).to_le_bytes())?;
                    w.write_all(&kv.key)?;
                    w.write_all(&(kv.value.len() as u32).to_le_bytes())?;
                    w.write_all(&kv.value)?;
                    bytes += 8 + kv_bytes(kv);
                }
                w.flush()?;
                counts[p] += bucket.len() as u64;
                counters.add("spill.bytes", bytes);
                counters.add("spill.records", bucket.len() as u64);
                Ok(())
            }
        }
    }

    /// Consume partition `p`: producer-order records, file removed.
    fn take(&mut self, p: usize, counters: &Counters) -> Result<Vec<KeyValue>, JobError> {
        match self {
            Pending::Mem(parts) => Ok(std::mem::take(&mut parts[p])),
            Pending::Disk { dir, round, counts } => {
                if counts[p] == 0 {
                    return Ok(Vec::new());
                }
                let path = Self::path(dir, *round, p);
                let mut r = BufReader::new(File::open(&path)?);
                let mut out = Vec::with_capacity(counts[p] as usize);
                let mut len4 = [0u8; 4];
                for _ in 0..counts[p] {
                    r.read_exact(&mut len4)?;
                    let mut key = vec![0u8; u32::from_le_bytes(len4) as usize];
                    r.read_exact(&mut key)?;
                    r.read_exact(&mut len4)?;
                    let mut value = vec![0u8; u32::from_le_bytes(len4) as usize];
                    r.read_exact(&mut value)?;
                    out.push(KeyValue { key, value });
                }
                std::fs::remove_file(&path).ok();
                counters.inc("spill.partitions");
                Ok(out)
            }
        }
    }
}

/// The streaming driver. Construction validates the [`crate::plan::JobPlan`]
/// exactly like the engine; `parallelism` is ignored (execution is
/// deliberately sequential — bounded memory is the point).
pub struct StreamJob {
    cfg: JobConfig,
}

impl StreamJob {
    pub fn new(cfg: JobConfig) -> Self {
        assert!(cfg.map_tasks > 0 && cfg.reduce_tasks > 0);
        #[cfg(debug_assertions)]
        if let Some(plan) = &cfg.plan {
            let checked = crate::plan::JobPlanValidator::new(plan).validate(&cfg);
            assert!(checked.is_ok(), "invalid job plan: {}", checked.err().map(|e| e.to_string()).unwrap_or_default());
        }
        Self { cfg }
    }

    /// Run the job streaming, with a [`ShuffleCombiner`] applied to every
    /// bucket before it is parked (map output and intermediate rounds).
    pub fn run_with_shuffle_combiner<M: Mapper, R: Reducer>(
        &self,
        inputs: &[Vec<u8>],
        mapper: &M,
        reducer: &R,
        combiner: &dyn ShuffleCombiner,
    ) -> Result<JobResult, JobError> {
        self.run_inner(inputs, mapper, reducer, Some(combiner))
    }

    /// Run the job streaming. Output is byte-identical to
    /// [`crate::engine::MapReduceJob::run`] with the same config.
    pub fn run<M: Mapper, R: Reducer>(
        &self,
        inputs: &[Vec<u8>],
        mapper: &M,
        reducer: &R,
    ) -> Result<JobResult, JobError> {
        self.run_inner(inputs, mapper, reducer, None)
    }

    fn run_inner<M: Mapper, R: Reducer>(
        &self,
        inputs: &[Vec<u8>],
        mapper: &M,
        reducer: &R,
        combiner: Option<&dyn ShuffleCombiner>,
    ) -> Result<JobResult, JobError> {
        let counters = match self.cfg.obs.metrics() {
            Some(m) => Counters::with_registry(m.clone()),
            None => Counters::new(),
        };
        let mut job_span = self.cfg.obs.span("driver", "stream.job");
        counters.add("map.input_records", inputs.len() as u64);
        counters.record_max("reduce.rounds", self.cfg.reduce_rounds as u64);
        let verify_determinism = cfg!(debug_assertions) && self.cfg.verify_determinism;
        let determinism_violation: Mutex<Option<String>> = Mutex::new(None);
        let r_parts = self.cfg.reduce_tasks;

        // ---- Map phase, one task resident at a time ----
        // Zero-round jobs keep the engine's task-major output order, so
        // buckets bypass the per-partition stores entirely.
        let mut zero_round_output = Vec::new();
        let mut pending = Pending::new(&self.cfg.spill, 0, r_parts);
        let map_span = self.cfg.obs.span("driver", "stream.map");
        for task in 0..self.cfg.map_tasks {
            let mut buckets: Vec<Vec<KeyValue>> = (0..r_parts).map(|_| Vec::new()).collect();
            let mut emitted = 0u64;
            for input in inputs.iter().skip(task).step_by(self.cfg.map_tasks) {
                mapper.map(input, &mut |k, v| {
                    emitted += 1;
                    let p = partition(&k, r_parts);
                    buckets[p].push(KeyValue::new(k, v));
                });
            }
            counters.add("map.output_records", emitted);
            if let Some(c) = combiner {
                buckets = buckets.into_iter().map(|b| combine_bucket(c, 0, b, &counters)).collect();
            }
            let task_bytes: u64 = buckets.iter().map(|b| bucket_bytes(b)).sum();
            counters.record_max("stream.peak_resident_bytes", pending.mem_bytes() + task_bytes);
            if self.cfg.reduce_rounds == 0 {
                for bucket in buckets {
                    zero_round_output.extend(bucket);
                }
            } else {
                for (p, bucket) in buckets.into_iter().enumerate() {
                    pending.append(p, bucket, &counters)?;
                }
            }
        }
        drop(map_span);
        if self.cfg.reduce_rounds == 0 {
            counters.add("output_records", zero_round_output.len() as u64);
            job_span.counter("output_records", zero_round_output.len() as u64);
            return Ok(JobResult { output: zero_round_output, counters });
        }

        // ---- Reduce rounds, one partition resident at a time ----
        let mut final_output = Vec::new();
        for round in 0..self.cfg.reduce_rounds {
            let is_last = round + 1 == self.cfg.reduce_rounds;
            let mut round_span = self.cfg.obs.span("driver", &format!("stream.round{round}"));
            let mut next = Pending::new(&self.cfg.spill, round + 1, r_parts);
            let mut round_records = 0u64;
            for p in 0..r_parts {
                let records = pending.take(p, &counters)?;
                let part_bytes = bucket_bytes(&records);
                round_records += records.len() as u64;
                counters.add("shuffle.bytes", part_bytes);
                counters.add(&format!("reduce.r{round}.input_records"), records.len() as u64);
                let reduced = reduce_partition(reducer, round, records, r_parts, verify_determinism);
                if let Some(v) = reduced.violation {
                    lock_ignoring_poison(&determinism_violation).get_or_insert(v);
                }
                counters.add(&format!("reduce.r{round}.verified_groups"), reduced.verified_groups);
                counters.add(&format!("reduce.r{round}.output_records"), reduced.emitted);
                let out_buckets: Vec<Vec<KeyValue>> = match (combiner, is_last) {
                    (Some(c), false) => {
                        reduced.out_buckets.into_iter().map(|b| combine_bucket(c, round + 1, b, &counters)).collect()
                    }
                    _ => reduced.out_buckets,
                };
                let out_bytes: u64 = out_buckets.iter().map(|b| bucket_bytes(b)).sum();
                let resident = pending.mem_bytes()
                    + next.mem_bytes()
                    + part_bytes
                    + out_bytes
                    + if is_last { bucket_bytes(&final_output) } else { 0 };
                counters.record_max("stream.peak_resident_bytes", resident);
                if is_last {
                    for bucket in out_buckets {
                        final_output.extend(bucket);
                    }
                } else {
                    for (q, bucket) in out_buckets.into_iter().enumerate() {
                        next.append(q, bucket, &counters)?;
                    }
                }
            }
            round_span.counter("input_records", round_records);
            if let Some(report) = lock_ignoring_poison(&determinism_violation).take() {
                // Same debug-only gate as the engine: an order-sensitive
                // reducer breaks the retry story — fail the test run loudly.
                // agl-lint: allow(no-panic) — see above.
                panic!("{report}");
            }
            pending = next;
        }
        counters.add("output_records", final_output.len() as u64);
        job_span.counter("output_records", final_output.len() as u64);
        job_span.counter("peak_resident_bytes", counters.get("stream.peak_resident_bytes"));
        Ok(JobResult { output: final_output, counters })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Codec;
    use crate::engine::MapReduceJob;

    struct WordMap;
    impl Mapper for WordMap {
        fn map(&self, input: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
            for w in input.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                emit(w.to_vec(), 1u64.to_bytes());
            }
        }
    }

    struct SumReduce;
    impl Reducer for SumReduce {
        fn reduce(
            &self,
            _round: usize,
            key: &[u8],
            values: &mut dyn Iterator<Item = &[u8]>,
            emit: &mut dyn FnMut(Vec<u8>, Vec<u8>),
        ) {
            let total: u64 = values.map(|v| u64::from_bytes(v).unwrap()).sum();
            emit(key.to_vec(), total.to_bytes());
        }
    }

    fn word_inputs() -> Vec<Vec<u8>> {
        vec![
            b"the quick brown fox jumps over".to_vec(),
            b"the lazy dog naps".to_vec(),
            b"the fox naps too".to_vec(),
            b"quick quick fox".to_vec(),
        ]
    }

    /// A u64-sum shuffle combiner: collapses every group of counts into one
    /// partial sum whenever the group has at least `threshold` records.
    struct SumCombiner {
        threshold: usize,
    }
    impl ShuffleCombiner for SumCombiner {
        fn combines(&self, _round: usize, _key: &[u8], n_values: usize) -> bool {
            n_values >= self.threshold
        }
        fn combine(&self, _round: usize, _key: &[u8], values: &mut Vec<Vec<u8>>) {
            let total: u64 = values.iter().map(|v| u64::from_bytes(v).unwrap()).sum();
            values.clear();
            values.push(total.to_bytes());
        }
    }

    #[test]
    fn streamed_output_is_byte_identical_to_engine() {
        for rounds in [1usize, 2, 3] {
            let cfg = JobConfig { reduce_rounds: rounds, map_tasks: 3, reduce_tasks: 5, ..JobConfig::default() };
            let engine = MapReduceJob::new(cfg.clone()).run(&word_inputs(), &WordMap, &SumReduce).unwrap();
            let stream = StreamJob::new(cfg).run(&word_inputs(), &WordMap, &SumReduce).unwrap();
            assert_eq!(stream.output, engine.output, "rounds={rounds}: emission order preserved, not just multiset");
            for name in ["map.output_records", "reduce.r0.input_records", "output_records"] {
                assert_eq!(stream.counters.get(name), engine.counters.get(name), "{name}");
            }
        }
    }

    #[test]
    fn disk_spill_matches_in_memory_and_bounds_memory() {
        let dir = std::env::temp_dir().join(format!("agl-stream-test-{}", std::process::id()));
        let mem_cfg = JobConfig { reduce_rounds: 2, ..JobConfig::default() };
        let disk_cfg = JobConfig { spill: SpillMode::Disk(dir.clone()), ..mem_cfg.clone() };
        let mem = StreamJob::new(mem_cfg).run(&word_inputs(), &WordMap, &SumReduce).unwrap();
        let disk = StreamJob::new(disk_cfg).run(&word_inputs(), &WordMap, &SumReduce).unwrap();
        assert_eq!(mem.output, disk.output);
        assert!(disk.counters.get("spill.bytes") > 0, "pending partitions went through disk");
        assert!(
            disk.counters.get("stream.peak_resident_bytes") <= mem.counters.get("stream.peak_resident_bytes"),
            "disk-parked pending never exceeds the in-memory high-water mark"
        );
        assert!(mem.counters.get("stream.peak_resident_bytes") > 0);
        // All pending files consumed and removed.
        assert!(std::fs::read_dir(&dir).map(|d| d.count() == 0).unwrap_or(true), "no leaked pending files");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_rounds_passes_map_output_through_in_engine_order() {
        let cfg = JobConfig { reduce_rounds: 0, ..JobConfig::default() };
        let engine = MapReduceJob::new(cfg.clone()).run(&word_inputs(), &WordMap, &SumReduce).unwrap();
        let stream = StreamJob::new(cfg).run(&word_inputs(), &WordMap, &SumReduce).unwrap();
        assert_eq!(stream.output, engine.output);
    }

    #[test]
    fn shuffle_combiner_cuts_records_without_changing_u64_sums() {
        let cfg = JobConfig { reduce_rounds: 2, ..JobConfig::default() };
        let plain = StreamJob::new(cfg.clone()).run(&word_inputs(), &WordMap, &SumReduce).unwrap();
        let combined = StreamJob::new(cfg.clone())
            .run_with_shuffle_combiner(&word_inputs(), &WordMap, &SumReduce, &SumCombiner { threshold: 2 })
            .unwrap();
        // Integer sums are exactly associative, so the output matches even
        // without a partial-aware reducer.
        assert_eq!(plain.output, combined.output);
        assert!(combined.counters.get("combine.records_in") > combined.counters.get("combine.records_out"));
        assert!(combined.counters.get("combine.bytes_saved") > 0);
        // Engine path agrees with the streaming path under the combiner too.
        let engine = MapReduceJob::new(cfg)
            .run_with_shuffle_combiner(&word_inputs(), &WordMap, &SumReduce, &SumCombiner { threshold: 2 })
            .unwrap();
        assert_eq!(engine.output, combined.output);
    }

    #[test]
    fn threshold_gates_combining() {
        let cfg = JobConfig::default();
        let never = StreamJob::new(cfg.clone())
            .run_with_shuffle_combiner(&word_inputs(), &WordMap, &SumReduce, &SumCombiner { threshold: usize::MAX })
            .unwrap();
        assert_eq!(never.counters.get("combine.records_in"), 0, "threshold too high: combiner never fires");
        let plain = StreamJob::new(cfg).run(&word_inputs(), &WordMap, &SumReduce).unwrap();
        assert_eq!(never.output, plain.output);
    }
}
