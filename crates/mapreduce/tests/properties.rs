//! Property-based tests of the MapReduce engine: for arbitrary inputs and
//! arbitrary engine shapes, the job must equal a single-threaded reference
//! computation, and injected faults must never change the answer.

use agl_mapreduce::codec::Codec;
use agl_mapreduce::{FaultPlan, JobConfig, JobResult, MapReduceJob, Mapper, Reducer, TaskId};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Mapper: input is a list of (key_byte, count) pairs; emit each.
struct PairMap;
impl Mapper for PairMap {
    fn map(&self, input: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        for chunk in input.chunks_exact(2) {
            emit(vec![chunk[0]], (chunk[1] as u64).to_bytes());
        }
    }
}

struct SumReduce;
impl Reducer for SumReduce {
    fn reduce(&self, _round: usize, key: &[u8], values: &mut dyn Iterator<Item = &[u8]>, emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        let total: u64 = values.map(|v| u64::from_bytes(v).unwrap()).sum();
        emit(key.to_vec(), total.to_bytes());
    }
}

fn reference_sums(inputs: &[Vec<u8>]) -> BTreeMap<u8, u64> {
    let mut out = BTreeMap::new();
    for input in inputs {
        for chunk in input.chunks_exact(2) {
            *out.entry(chunk[0]).or_insert(0u64) += chunk[1] as u64;
        }
    }
    out
}

fn job_sums(result: &JobResult) -> BTreeMap<u8, u64> {
    result
        .output
        .iter()
        .map(|kv| (kv.key[0], u64::from_bytes(&kv.value).unwrap()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any engine shape computes the same grouped sums as the reference.
    #[test]
    fn prop_engine_matches_reference(
        inputs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..20), 0..12),
        map_tasks in 1usize..6,
        reduce_tasks in 1usize..6,
        parallelism in 1usize..5,
        rounds in 1usize..4,
    ) {
        // Make chunks_exact(2) well-defined.
        let inputs: Vec<Vec<u8>> = inputs.into_iter().map(|mut v| { v.truncate(v.len() / 2 * 2); v }).collect();
        let cfg = JobConfig { map_tasks, reduce_tasks, parallelism, reduce_rounds: rounds, ..JobConfig::default() };
        let result = MapReduceJob::new(cfg).run(&inputs, &PairMap, &SumReduce).unwrap();
        prop_assert_eq!(job_sums(&result), reference_sums(&inputs));
    }

    /// Any single injected fault is invisible in the output.
    #[test]
    fn prop_faults_are_invisible(
        inputs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 2..16), 1..8),
        fail_map in any::<bool>(),
        task_index in 0usize..4,
        attempts in 1usize..3,
        round in 0usize..2,
    ) {
        let inputs: Vec<Vec<u8>> = inputs.into_iter().map(|mut v| { v.truncate(v.len() / 2 * 2); v }).collect();
        let task = if fail_map { TaskId::map(task_index) } else { TaskId::reduce(round, task_index) };
        let cfg = JobConfig { reduce_rounds: 2, ..JobConfig::default() };
        let clean = MapReduceJob::new(cfg.clone()).run(&inputs, &PairMap, &SumReduce).unwrap();
        let chaotic = JobConfig { fault_plan: FaultPlan::none().fail_first(task, attempts), ..cfg };
        let faulty = MapReduceJob::new(chaotic).run(&inputs, &PairMap, &SumReduce).unwrap();
        prop_assert_eq!(job_sums(&clean), job_sums(&faulty));
    }

    /// Output order is deterministic: repeated runs produce identical
    /// key-value sequences, not just identical multisets.
    #[test]
    fn prop_output_order_deterministic(
        inputs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 0..8),
        parallelism in 1usize..5,
    ) {
        let inputs: Vec<Vec<u8>> = inputs.into_iter().map(|mut v| { v.truncate(v.len() / 2 * 2); v }).collect();
        let run = |par: usize| {
            let cfg = JobConfig { parallelism: par, ..JobConfig::default() };
            MapReduceJob::new(cfg).run(&inputs, &PairMap, &SumReduce).unwrap().output
        };
        prop_assert_eq!(run(parallelism), run(parallelism));
        // And parallelism itself does not change the sequence.
        prop_assert_eq!(run(parallelism), run(1));
    }
}
