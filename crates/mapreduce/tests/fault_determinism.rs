//! Replay determinism under injected faults.
//!
//! The engine's whole fault-tolerance story (§3.2's reliance on mature
//! MapReduce infrastructure) rests on re-executed tasks reproducing their
//! output bit-for-bit. These tests inject mid-shuffle failures — map tasks
//! and reduce tasks of both rounds — and require the job output to be
//! **bit-identical** (same bytes, same order) to the failure-free run,
//! across three input seeds and both spill modes.

use agl_mapreduce::{Codec, FaultPlan, JobConfig, MapReduceJob, Mapper, Reducer, SpillMode, TaskId};

/// xorshift64* — deterministic input generator, no external RNG deps.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

fn seeded_inputs(seed: u64, n: usize) -> Vec<Vec<u8>> {
    let mut state = seed | 1;
    (0..n).map(|_| xorshift(&mut state).to_bytes()).collect()
}

/// Key each record by `v % 24`, pass the value through.
struct ModMap;
impl Mapper for ModMap {
    fn map(&self, input: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        let v = u64::from_bytes(input).unwrap();
        emit((v % 24).to_bytes(), v.to_bytes());
    }
}

/// Wrapping-sum per group, re-emitted under the same key — associative and
/// commutative, so it survives both re-execution and multi-round chaining.
struct WrapSumReduce;
impl Reducer for WrapSumReduce {
    fn reduce(
        &self,
        _round: usize,
        key: &[u8],
        values: &mut dyn Iterator<Item = &[u8]>,
        emit: &mut dyn FnMut(Vec<u8>, Vec<u8>),
    ) {
        let total = values.map(|v| u64::from_bytes(v).unwrap()).fold(0u64, u64::wrapping_add);
        emit(key.to_vec(), total.to_bytes());
    }
}

/// Failures spread across the whole pipeline: a map task plus reduce tasks
/// of both rounds, some failing several attempts in a row.
fn mid_shuffle_faults() -> FaultPlan {
    FaultPlan::none()
        .fail_first(TaskId::map(2), 1)
        .fail_first(TaskId::reduce(0, 1), 2)
        .fail_first(TaskId::reduce(0, 3), 1)
        .fail_first(TaskId::reduce(1, 0), 1)
}

fn run(inputs: &[Vec<u8>], fault_plan: FaultPlan, spill: SpillMode) -> agl_mapreduce::JobResult {
    let cfg = JobConfig { reduce_rounds: 2, fault_plan, spill, ..JobConfig::default() };
    MapReduceJob::new(cfg).run(inputs, &ModMap, &WrapSumReduce).unwrap()
}

#[test]
fn injected_mid_shuffle_failures_replay_bit_identically_across_seeds() {
    for seed in [0x11u64, 0x22, 0x33] {
        let inputs = seeded_inputs(seed, 96);
        let clean = run(&inputs, FaultPlan::none(), SpillMode::InMemory);
        let faulty = run(&inputs, mid_shuffle_faults(), SpillMode::InMemory);
        // Bit-identical: same records in the same order, not just the same
        // multiset — re-execution must be a true replay.
        assert_eq!(clean.output, faulty.output, "seed {seed:#x}");
        assert_eq!(clean.counters.get("output_records"), faulty.counters.get("output_records"), "seed {seed:#x}");
        assert_eq!(faulty.counters.get("task_retries"), 5, "seed {seed:#x}: 1+2+1+1 injected failures");
        assert_eq!(clean.counters.get("task_retries"), 0, "seed {seed:#x}");
    }
}

#[test]
fn fault_replay_is_bit_identical_through_disk_spill() {
    let dir = std::env::temp_dir().join(format!("agl-mr-fault-det-{}", std::process::id()));
    let inputs = seeded_inputs(0x44, 96);
    let clean = run(&inputs, FaultPlan::none(), SpillMode::Disk(dir.clone()));
    let faulty = run(&inputs, mid_shuffle_faults(), SpillMode::Disk(dir.clone()));
    assert_eq!(clean.output, faulty.output);
    // And the spilled runs agree with the in-memory ones byte-for-byte.
    let mem = run(&inputs, FaultPlan::none(), SpillMode::InMemory);
    assert_eq!(clean.output, mem.output);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn faulty_runs_agree_across_parallelism_levels() {
    let inputs = seeded_inputs(0x55, 64);
    let base = run(&inputs, mid_shuffle_faults(), SpillMode::InMemory);
    for par in [1, 2, 8] {
        let cfg =
            JobConfig { reduce_rounds: 2, fault_plan: mid_shuffle_faults(), parallelism: par, ..JobConfig::default() };
        let out = MapReduceJob::new(cfg).run(&inputs, &ModMap, &WrapSumReduce).unwrap();
        assert_eq!(base.output, out.output, "parallelism {par}");
    }
}
