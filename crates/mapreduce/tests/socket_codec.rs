//! The length-prefixed codec over a *real* socket: partial reads across
//! frame boundaries, oversized-frame rejection, mid-stream EOF, and
//! interleaved duplex traffic. All tests are seeded and sleep-free — the
//! peer threads write deliberately fragmented byte sequences and the reader
//! blocks until they arrive, so scheduling cannot change outcomes.

use agl_mapreduce::codec::Codec;
use agl_mapreduce::transport::{Conn, Framed, TransportError};
use std::io::Write;
use std::os::unix::net::UnixStream;

/// Deterministic xorshift for payload bytes — seeded, no RNG dependency.
fn seeded_bytes(seed: u64, n: usize) -> Vec<u8> {
    let mut s = seed.max(1);
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s & 0xff) as u8
        })
        .collect()
}

/// Build the raw wire bytes of one frame.
fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut buf = (payload.len() as u32).to_le_bytes().to_vec();
    buf.extend_from_slice(payload);
    buf
}

#[test]
fn partial_reads_across_frame_boundaries() {
    let (mut raw, sock) = UnixStream::pair().unwrap();
    let mut framed = Framed::new(Conn::from(sock));
    let payloads: Vec<Vec<u8>> = (0..5).map(|i| seeded_bytes(0x9e37 + i, 64 * (i as usize + 1))).collect();

    std::thread::scope(|s| {
        s.spawn(move || {
            // One contiguous byte stream of 5 frames, written in chunks that
            // straddle every header/payload boundary: 7 bytes at a time.
            let mut wire = Vec::new();
            for p in &payloads {
                wire.extend_from_slice(&frame_bytes(p));
            }
            for chunk in wire.chunks(7) {
                raw.write_all(chunk).unwrap();
                raw.flush().unwrap();
            }
            drop(raw);
        });
        for (i, expected) in (0..5u64).zip([64usize, 128, 192, 256, 320]) {
            let got = framed.recv().unwrap().unwrap();
            assert_eq!(got, seeded_bytes(0x9e37 + i, expected), "frame {i}");
        }
        assert!(framed.recv().unwrap().is_none(), "clean EOF after the last frame");
    });
}

#[test]
fn oversized_frame_rejected_before_allocation() {
    let (mut raw, sock) = UnixStream::pair().unwrap();
    let mut framed = Framed::new(Conn::from(sock)).with_max_frame(1024);
    // Header announces 1 GiB; no payload follows. The receiver must reject
    // on the header alone rather than trying to allocate.
    raw.write_all(&(1u32 << 30).to_le_bytes()).unwrap();
    let err = framed.recv().unwrap_err();
    assert!(matches!(err, TransportError::FrameTooLarge { len, max: 1024 } if len == 1 << 30), "{err}");
}

#[test]
fn eof_inside_header_and_inside_payload_are_truncations() {
    // EOF after 2 of 4 header bytes.
    let (mut raw, sock) = UnixStream::pair().unwrap();
    let mut framed = Framed::new(Conn::from(sock));
    raw.write_all(&[0xab, 0xcd]).unwrap();
    drop(raw);
    assert!(
        matches!(framed.recv().unwrap_err(), TransportError::TruncatedFrame { got: 2, want: 4 }),
        "death inside the length header is a truncation"
    );

    // EOF after 10 of 32 payload bytes.
    let (mut raw, sock) = UnixStream::pair().unwrap();
    let mut framed = Framed::new(Conn::from(sock));
    raw.write_all(&32u32.to_le_bytes()).unwrap();
    raw.write_all(&seeded_bytes(7, 10)).unwrap();
    drop(raw);
    assert!(
        matches!(framed.recv().unwrap_err(), TransportError::TruncatedFrame { got: 10, want: 32 }),
        "death inside the payload is a truncation"
    );
}

#[test]
fn interleaved_duplex_pull_push() {
    // Two peers ping-ponging codec-encoded (u64 request, Vec<u8> reply)
    // pairs concurrently in both directions on one connection — the shape
    // of PS pull/push traffic. Each side validates every reply it gets.
    let (a, b) = UnixStream::pair().unwrap();
    let rounds = 50u64;
    std::thread::scope(|s| {
        let client = s.spawn(move || {
            let mut f = Framed::new(Conn::from(a));
            for i in 0..rounds {
                f.send(&i.to_bytes()).unwrap();
                let reply = f.recv().unwrap().unwrap();
                assert_eq!(reply, seeded_bytes(i + 1, 16 + (i as usize % 5)), "reply {i}");
                // Push half: send a blob, expect its length echoed back.
                let blob = seeded_bytes(i + 1000, 8 * (i as usize % 7 + 1));
                f.send(&blob).unwrap();
                let ack = u64::from_bytes(&f.recv().unwrap().unwrap()).unwrap();
                assert_eq!(ack, blob.len() as u64);
            }
            drop(f);
        });
        let server = s.spawn(move || {
            let mut f = Framed::new(Conn::from(b));
            for i in 0..rounds {
                let req = u64::from_bytes(&f.recv().unwrap().unwrap()).unwrap();
                assert_eq!(req, i);
                f.send(&seeded_bytes(i + 1, 16 + (i as usize % 5))).unwrap();
                let blob = f.recv().unwrap().unwrap();
                f.send(&(blob.len() as u64).to_bytes()).unwrap();
            }
            assert!(f.recv().unwrap().is_none(), "client closed cleanly");
        });
        client.join().unwrap();
        server.join().unwrap();
    });
}

#[test]
fn codec_values_survive_the_wire_byte_for_byte() {
    // A codec round-trip through a socket must equal the in-memory
    // encoding: the wire adds framing, never re-encodes.
    let (sock_a, sock_b) = UnixStream::pair().unwrap();
    let mut tx = Framed::new(Conn::from(sock_a));
    let mut rx = Framed::new(Conn::from(sock_b));
    let value = "graph-feature \u{2603} bytes".to_string();
    let encoded = value.to_bytes();
    tx.send(&encoded).unwrap();
    let received = rx.recv().unwrap().unwrap();
    assert_eq!(received, encoded);
    assert_eq!(String::from_bytes(&received).unwrap(), value);
}
