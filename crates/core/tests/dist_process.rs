//! Process-level distributed suite: drives the real `agl-cli` binary —
//! driver and workers as separate OS processes over Unix-domain sockets —
//! and asserts the CI-gated properties: byte-identical output vs the
//! in-process engines, deterministic recovery from a SIGKILLed shuffle
//! worker, a typed (non-hanging) failure from a SIGKILLed PS shard, and no
//! leaked processes or socket files afterwards.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn cli() -> &'static str {
    env!("CARGO_BIN_EXE_agl-cli")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("agl-distproc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dist_run(dir: &Path, extra: &[&str]) -> Output {
    let mut cmd = Command::new(cli());
    cmd.args([
        "dist-run",
        "--dir",
        dir.to_str().unwrap(),
        "--nodes",
        "120",
        "--hops",
        "1",
        "--epochs",
        "2",
        "--shuffle-workers",
        "2",
        "--ps-shards",
        "2",
        "--train-workers",
        "2",
    ]);
    cmd.args(extra);
    cmd.output().expect("spawn agl-cli dist-run")
}

fn stdout_field(out: &Output, key: &str) -> String {
    let text = String::from_utf8_lossy(&out.stdout);
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= line in output:\n{text}"))
        .to_string()
}

fn assert_no_leaks(dir: &Path) {
    let socks: Vec<_> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "sock"))
                .map(|e| e.path())
                .collect()
        })
        .unwrap_or_default();
    assert!(socks.is_empty(), "leaked socket files: {socks:?}");
    let pgrep = Command::new("pgrep").args(["-f", "dist-worker -[-]role"]).output();
    if let Ok(p) = pgrep {
        let pids = String::from_utf8_lossy(&p.stdout);
        assert!(pids.trim().is_empty(), "leaked dist-worker processes: {pids}");
    }
}

#[test]
fn distributed_smoke_is_byte_identical_to_in_process() {
    let dir = temp_dir("smoke");
    let out = dist_run(&dir, &["--verify", "true"]);
    assert!(
        out.status.success(),
        "dist-run failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    // verified=true means the driver compared every GraphFeature byte and
    // every final model parameter bit against a full in-process re-run.
    assert_eq!(stdout_field(&out, "verified"), "true");
    assert_eq!(stdout_field(&out, "task_retries"), "0");
    assert_no_leaks(&dir);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkilled_shuffle_worker_is_rerun_deterministically() {
    let dir = temp_dir("killshuffle");
    // SIGKILL shuffle worker 0 right after its first reduce dispatch; the
    // survivor must absorb the lost partitions and the output must still
    // verify bit-for-bit against the in-process run.
    let out = dist_run(&dir, &["--verify", "true", "--kill-shuffle-after", "1"]);
    assert!(
        out.status.success(),
        "dist-run did not recover from the killed worker:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(stdout_field(&out, "verified"), "true");
    let retries: u64 = stdout_field(&out, "task_retries").parse().unwrap();
    assert!(retries >= 1, "expected at least one task retry after the kill, got {retries}");
    assert_no_leaks(&dir);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkilled_ps_shard_fails_typed_and_bounded() {
    let dir = temp_dir("killps");
    // SIGKILL PS shard 0 mid-epoch with a 2s read deadline: the run must
    // exit non-zero with a typed ps error — promptly, never a hang (the
    // test harness itself is the outer timeout).
    let out = dist_run(&dir, &["--kill-ps-after", "5", "--io-timeout-secs", "2", "--epochs", "3"]);
    assert!(
        !out.status.success(),
        "dist-run unexpectedly succeeded with a killed PS shard:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("ps transport error") || stderr.contains("ps protocol violation"),
        "expected a typed ps error on stderr, got: {stderr}"
    );
    assert_no_leaks(&dir);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dist_worker_rejects_unknown_role() {
    let out = Command::new(cli())
        .args(["dist-worker", "--role", "mapper", "--listen", "unix:/tmp/never-bound.sock"])
        .output()
        .expect("spawn agl-cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown role"));
}
