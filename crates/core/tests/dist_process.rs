//! Process-level distributed suite: drives the real `agl-cli` binary —
//! driver and workers as separate OS processes over Unix-domain sockets —
//! and asserts the CI-gated properties: byte-identical output vs the
//! in-process engines, deterministic recovery from a SIGKILLed shuffle
//! worker, a typed (non-hanging) failure from a SIGKILLed PS shard, and no
//! leaked processes or socket files afterwards.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn cli() -> &'static str {
    env!("CARGO_BIN_EXE_agl-cli")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("agl-distproc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dist_run(dir: &Path, extra: &[&str]) -> Output {
    let mut cmd = Command::new(cli());
    cmd.args([
        "dist-run",
        "--dir",
        dir.to_str().unwrap(),
        "--nodes",
        "120",
        "--hops",
        "1",
        "--epochs",
        "2",
        "--shuffle-workers",
        "2",
        "--ps-shards",
        "2",
        "--train-workers",
        "2",
    ]);
    cmd.args(extra);
    cmd.output().expect("spawn agl-cli dist-run")
}

fn stdout_field(out: &Output, key: &str) -> String {
    let text = String::from_utf8_lossy(&out.stdout);
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= line in output:\n{text}"))
        .to_string()
}

fn assert_no_leaks(dir: &Path) {
    let socks: Vec<_> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "sock"))
                .map(|e| e.path())
                .collect()
        })
        .unwrap_or_default();
    assert!(socks.is_empty(), "leaked socket files: {socks:?}");
    let pgrep = Command::new("pgrep").args(["-f", "dist-worker -[-]role"]).output();
    if let Ok(p) = pgrep {
        let pids = String::from_utf8_lossy(&p.stdout);
        assert!(pids.trim().is_empty(), "leaked dist-worker processes: {pids}");
    }
}

#[test]
fn distributed_smoke_is_byte_identical_to_in_process() {
    let dir = temp_dir("smoke");
    let out = dist_run(&dir, &["--verify", "true"]);
    assert!(
        out.status.success(),
        "dist-run failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    // verified=true means the driver compared every GraphFeature byte and
    // every final model parameter bit against a full in-process re-run.
    assert_eq!(stdout_field(&out, "verified"), "true");
    assert_eq!(stdout_field(&out, "task_retries"), "0");
    assert_no_leaks(&dir);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkilled_shuffle_worker_is_rerun_deterministically() {
    let dir = temp_dir("killshuffle");
    // SIGKILL shuffle worker 0 right after its first reduce dispatch; the
    // survivor must absorb the lost partitions and the output must still
    // verify bit-for-bit against the in-process run.
    let out = dist_run(&dir, &["--verify", "true", "--kill-shuffle-after", "1"]);
    assert!(
        out.status.success(),
        "dist-run did not recover from the killed worker:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(stdout_field(&out, "verified"), "true");
    let retries: u64 = stdout_field(&out, "task_retries").parse().unwrap();
    assert!(retries >= 1, "expected at least one task retry after the kill, got {retries}");
    assert_no_leaks(&dir);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkilled_ps_shard_fails_typed_and_bounded() {
    let dir = temp_dir("killps");
    // SIGKILL PS shard 0 mid-epoch with a 2s read deadline: the run must
    // exit non-zero with a typed ps error — promptly, never a hang (the
    // test harness itself is the outer timeout).
    let out = dist_run(&dir, &["--kill-ps-after", "5", "--io-timeout-secs", "2", "--epochs", "3"]);
    assert!(
        !out.status.success(),
        "dist-run unexpectedly succeeded with a killed PS shard:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("ps transport error") || stderr.contains("ps protocol violation"),
        "expected a typed ps error on stderr, got: {stderr}"
    );
    assert_no_leaks(&dir);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn traced_dist_run_is_deterministic_and_golden_pinned() {
    // Two same-seed 2-worker runs under the logical clock must produce
    // byte-identical merged trace and metrics artifacts, and the trace is
    // additionally pinned to a golden file so cross-process span-merge
    // drift (ordering, ids, parenting) shows up as a diff. Regenerate a
    // deliberate change with
    // `AGL_UPDATE_GOLDEN=1 cargo test -p agl --test dist_process`.
    let mut artifacts = Vec::new();
    for run in 0..2 {
        let dir = temp_dir(&format!("traced{run}"));
        let trace = dir.join("trace.json");
        let metrics = dir.join("metrics.json");
        let out = dist_run(
            &dir,
            &[
                "--epochs",
                "1",
                "--clock",
                "logical",
                "--trace-out",
                trace.to_str().unwrap(),
                "--metrics-out",
                metrics.to_str().unwrap(),
            ],
        );
        assert!(
            out.status.success(),
            "traced dist-run failed:\nstdout: {}\nstderr: {}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        artifacts.push((std::fs::read_to_string(&trace).unwrap(), std::fs::read_to_string(&metrics).unwrap()));
        assert_no_leaks(&dir);
        std::fs::remove_dir_all(&dir).ok();
    }
    assert_eq!(artifacts[0].0, artifacts[1].0, "logical-clock merged trace must be byte-identical across runs");
    assert_eq!(artifacts[0].1, artifacts[1].1, "logical-clock metrics dump must be byte-identical across runs");

    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/dist_trace.json");
    if std::env::var_os("AGL_UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &artifacts[0].0).expect("write golden");
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden file missing — regenerate with AGL_UPDATE_GOLDEN=1 cargo test -p agl --test dist_process");
    assert_eq!(
        artifacts[0].0, golden,
        "merged dist trace drifted from tests/golden/dist_trace.json; if the change \
         is deliberate, regenerate with AGL_UPDATE_GOLDEN=1"
    );

    // The offline analyzer must see the merge as causally linked: every
    // worker span parented under a driver RPC span, RPC telemetry nonzero.
    let report = agl::mapreduce::ObsReport::from_artifacts(&golden, None).expect("obs-report parses the golden");
    assert!(report.worker_spans > 0, "no worker spans in the merged trace");
    assert_eq!(
        report.parented_worker_spans, report.worker_spans,
        "every worker span must parent under a driver RPC span"
    );
}

#[test]
fn dist_worker_rejects_unknown_role() {
    let out = Command::new(cli())
        .args(["dist-worker", "--role", "mapper", "--listen", "unix:/tmp/never-bound.sock"])
        .output()
        .expect("spawn agl-cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown role"));
}
