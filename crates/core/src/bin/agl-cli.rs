//! `agl-cli` — the §3.5 command line:
//!
//! ```text
//! GraphFlat    -n node_table -e edge_table -h hops -s sampling_strategy;
//! GraphTrainer -m model_name -i input -t train_strategy -c dist_configs;
//! GraphInfer   -m model -i input -c infer_configs;
//! ```
//!
//! as subcommands over plain tab-separated tables:
//!
//! ```text
//! agl-cli demo  --out-dir data                     # write a synthetic dataset
//! agl-cli flat  --nodes data/nodes.tsv --edges data/edges.tsv \
//!               --hops 2 --sampling uniform:10 --out data/features
//! agl-cli train --store data/features --model gat --hidden 8 --out data/model.agl \
//!               --epochs 5 --workers 4 --consistency ssp:4
//! agl-cli infer --model data/model.agl --nodes data/nodes.tsv \
//!               --edges data/edges.tsv --out data/scores.tsv
//! agl-cli serve-bench --synthetic-nodes 1000 --shards 4     # online read path
//! agl-cli serve --workers 2 --synthetic-nodes 300           # multi-process shards
//! agl-cli obs-report --trace t.json --metrics m.json        # analyze artifacts
//! ```
//!
//! Node table: `id \t f1,f2,... \t l1,l2,...` (labels optional).
//! Edge table: `src \t dst \t weight`.
//!
//! Every subcommand additionally accepts the observability flags
//! `--trace-out trace.json` (Chrome trace-event file), `--metrics-out
//! metrics.json` (counter/gauge/histogram dump) and `--clock
//! logical|monotonic`; either `*-out` flag switches instrumentation on and
//! prints the per-run span/metric summaries.

use agl::prelude::*;
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("demo") => cmd_demo(&parse_flags(&args[1..])),
        Some("flat") => cmd_flat(&parse_flags(&args[1..])),
        Some("train") => cmd_train(&parse_flags(&args[1..])),
        Some("infer") => cmd_infer(&parse_flags(&args[1..])),
        Some("infer-stream") => cmd_infer_stream(&parse_flags(&args[1..])),
        Some("dist-run") => cmd_dist_run(&parse_flags(&args[1..])),
        Some("dist-worker") => cmd_dist_worker(&parse_flags(&args[1..])),
        Some("serve") => cmd_serve(&parse_flags(&args[1..])),
        Some("serve-bench") => cmd_serve_bench(&parse_flags(&args[1..])),
        Some("serve-worker") => cmd_serve_worker(&parse_flags(&args[1..])),
        Some("obs-report") => cmd_obs_report(&parse_flags(&args[1..])),
        _ => {
            eprintln!(
                "usage: agl-cli <demo|flat|train|infer|infer-stream|dist-run|dist-worker|serve|serve-bench|serve-worker|obs-report> [--flag value]..."
            );
            eprintln!("see crate docs for the table formats and flags");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type Flags = HashMap<String, String>;
type CliResult = Result<(), Box<dyn std::error::Error>>;

fn parse_flags(args: &[String]) -> Flags {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args.get(i + 1).cloned().unwrap_or_default();
            flags.insert(name.to_string(), value);
            i += 2;
        } else {
            i += 1;
        }
    }
    flags
}

fn flag<'a>(flags: &'a Flags, name: &str) -> Result<&'a str, String> {
    flags.get(name).map(String::as_str).ok_or_else(|| format!("missing --{name}"))
}

fn flag_or<'a>(flags: &'a Flags, name: &str, default: &'a str) -> &'a str {
    flags.get(name).map(String::as_str).unwrap_or(default)
}

/// `--trace-out <path>` / `--metrics-out <path>` switch tracing on for the
/// run; `--clock logical|monotonic` (default `monotonic`) picks the
/// timestamp source — logical ticks make the trace byte-identical across
/// runs of a deterministic job.
fn parse_obs(flags: &Flags) -> Result<Obs, String> {
    if !flags.contains_key("trace-out") && !flags.contains_key("metrics-out") {
        return Ok(Obs::default());
    }
    match flag_or(flags, "clock", "monotonic") {
        "monotonic" => Ok(Obs::enabled()),
        "logical" => Ok(Obs::enabled_logical()),
        other => Err(format!("unknown clock {other:?} (logical|monotonic)")),
    }
}

/// Write the `--trace-out` / `--metrics-out` files and print the
/// human-readable span + metric summaries. No-op for a disabled handle.
fn write_obs_outputs(flags: &Flags, obs: &Obs) -> CliResult {
    let Some(trace) = obs.trace() else { return Ok(()) };
    if let Some(path) = flags.get("trace-out") {
        fs::write(path, trace.to_chrome_json())?;
        println!("trace: {} spans -> {path} (load in chrome://tracing or Perfetto)", trace.events().len());
    }
    let metrics = obs.metrics().expect("enabled obs handle carries a registry");
    if let Some(path) = flags.get("metrics-out") {
        fs::write(path, metrics.to_json())?;
        println!("metrics -> {path}");
    }
    print!("{}", trace.render());
    print!("{}", metrics.render());
    Ok(())
}

fn parse_sampling(s: &str) -> Result<SamplingStrategy, String> {
    if s == "none" {
        return Ok(SamplingStrategy::None);
    }
    let (kind, max) = s.split_once(':').ok_or_else(|| format!("bad sampling {s:?}, want e.g. uniform:10"))?;
    let max_degree: usize = max.parse().map_err(|_| format!("bad sampling cap {max:?}"))?;
    match kind {
        "uniform" => Ok(SamplingStrategy::Uniform { max_degree }),
        "weighted" => Ok(SamplingStrategy::Weighted { max_degree }),
        "topk" => Ok(SamplingStrategy::TopK { max_degree }),
        _ => Err(format!("unknown sampling kind {kind:?}")),
    }
}

// ---- table I/O ----

fn parse_floats(s: &str) -> Result<Vec<f32>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',').map(|x| x.trim().parse::<f32>().map_err(|e| format!("bad float {x:?}: {e}"))).collect()
}

fn read_node_table(path: &str) -> Result<NodeTable, Box<dyn std::error::Error>> {
    let text = fs::read_to_string(path)?;
    let mut ids = Vec::new();
    let mut feats: Vec<Vec<f32>> = Vec::new();
    let mut labels: Vec<Vec<f32>> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.split('\t');
        let id: u64 =
            cols.next().ok_or("empty line")?.trim().parse().map_err(|e| format!("{path}:{}: bad id: {e}", ln + 1))?;
        let f = parse_floats(cols.next().unwrap_or(""))?;
        let l = parse_floats(cols.next().unwrap_or(""))?;
        ids.push(NodeId(id));
        feats.push(f);
        labels.push(l);
    }
    if ids.is_empty() {
        return Err(format!("{path}: no nodes").into());
    }
    let fdim = feats[0].len();
    let ldim = labels.iter().map(Vec::len).max().unwrap_or(0);
    let mut fmat = Matrix::zeros(ids.len(), fdim);
    let mut lmat = Matrix::zeros(ids.len(), ldim);
    for (i, (f, l)) in feats.iter().zip(&labels).enumerate() {
        if f.len() != fdim {
            return Err(format!("{path}: node {} has {} features, expected {fdim}", ids[i], f.len()).into());
        }
        fmat.row_mut(i).copy_from_slice(f);
        lmat.row_mut(i)[..l.len()].copy_from_slice(l);
    }
    Ok(NodeTable::new(ids, fmat, (ldim > 0).then_some(lmat)))
}

fn read_edge_table(path: &str) -> Result<EdgeTable, Box<dyn std::error::Error>> {
    let text = fs::read_to_string(path)?;
    let mut pairs = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.split('\t');
        let src: u64 = cols.next().ok_or("empty")?.trim().parse().map_err(|e| format!("{path}:{}: {e}", ln + 1))?;
        let dst: u64 =
            cols.next().ok_or("missing dst")?.trim().parse().map_err(|e| format!("{path}:{}: {e}", ln + 1))?;
        let weight: f32 =
            cols.next().map_or(Ok(1.0), |w| w.trim().parse()).map_err(|e| format!("{path}:{}: {e}", ln + 1))?;
        pairs.push(agl::graph::tables::EdgeRow { src: NodeId(src), dst: NodeId(dst), weight });
    }
    Ok(EdgeTable::new(pairs, None))
}

// ---- subcommands ----

fn cmd_demo(flags: &Flags) -> CliResult {
    let dir = flag(flags, "out-dir")?;
    let n: usize = flag_or(flags, "nodes", "2000").parse()?;
    fs::create_dir_all(dir)?;
    let ds = uug_like(UugConfig { n_nodes: n, feature_dim: 8, ..UugConfig::default() });
    let g = ds.graph();
    let mut nf = String::new();
    let labels = g.labels().unwrap();
    for (i, id) in g.node_ids().iter().enumerate() {
        let feats: Vec<String> = g.features().row(i).iter().map(|v| format!("{v:.4}")).collect();
        nf.push_str(&format!("{}\t{}\t{}\n", id.0, feats.join(","), labels[(i, 0)]));
    }
    fs::write(Path::new(dir).join("nodes.tsv"), nf)?;
    let mut ef = String::new();
    for (dst, src, w) in g.in_adj().iter_entries() {
        ef.push_str(&format!("{}\t{}\t{w}\n", g.node_id(src).0, g.node_id(dst).0));
    }
    fs::write(Path::new(dir).join("edges.tsv"), ef)?;
    let train_ids: Vec<String> = ds.train.node_ids().iter().map(|n| n.0.to_string()).collect();
    fs::write(Path::new(dir).join("train_ids.txt"), train_ids.join("\n"))?;
    println!("wrote {} nodes / {} edges / {} train ids under {dir}/", g.n_nodes(), g.n_edges(), ds.train.len());
    Ok(())
}

fn cmd_flat(flags: &Flags) -> CliResult {
    let nodes = read_node_table(flag(flags, "nodes")?)?;
    let edges = read_edge_table(flag(flags, "edges")?)?;
    let hops: usize = flag_or(flags, "hops", "2").parse()?;
    let sampling = parse_sampling(flag_or(flags, "sampling", "none"))?;
    let out = flag(flags, "out")?;
    let shards: usize = flag_or(flags, "shards", "8").parse()?;
    let targets = match flags.get("targets") {
        None => TargetSpec::All,
        Some(path) if path == "all" => TargetSpec::All,
        Some(path) => {
            let ids = fs::read_to_string(path)?
                .lines()
                .filter(|l| !l.trim().is_empty())
                .map(|l| l.trim().parse::<u64>().map(NodeId))
                .collect::<Result<Vec<_>, _>>()?;
            TargetSpec::Ids(ids)
        }
    };
    let obs = parse_obs(flags)?;
    let job = AglJob::new()
        .hops(hops)
        .sampling(sampling)
        .seed(flag_or(flags, "seed", "42").parse()?)
        .reindex(flag_or(flags, "hub-threshold", "10000").parse()?, flag_or(flags, "fanout", "4").parse()?)
        .obs(obs.clone());
    let result = job.graph_flat(&nodes, &edges, &targets)?;
    let store = agl::flat::FeatureStore::create(out, shards, &result.examples)?;
    println!(
        "GraphFlat: {} GraphFeatures -> {} ({} shards, {:.1} MB)",
        result.examples.len(),
        out,
        store.n_shards(),
        store.disk_bytes()? as f64 / 1e6
    );
    for (name, v) in result.counters.snapshot() {
        if name.starts_with("flat.") {
            println!("  {name} = {v}");
        }
    }
    println!("job report:");
    print!("{}", JobReport::from_counters(&result.counters).render());
    write_obs_outputs(flags, &obs)
}

fn model_kind(name: &str, heads: usize) -> Result<ModelKind, String> {
    match name {
        "gcn" => Ok(ModelKind::Gcn),
        "sage" | "graphsage" => Ok(ModelKind::Sage),
        "gat" => Ok(ModelKind::Gat { heads }),
        _ => Err(format!("unknown model {name:?} (gcn|sage|gat)")),
    }
}

/// `--consistency sync | async | ssp:<slack>` — the worker-coordination
/// mode for `--workers > 1`.
fn parse_consistency(s: &str) -> Result<Consistency, String> {
    match s {
        "sync" => Ok(Consistency::Sync),
        "async" => Ok(Consistency::Async),
        _ => match s.strip_prefix("ssp:") {
            Some(slack) => match slack.parse() {
                Ok(slack) => Ok(Consistency::Ssp { slack }),
                Err(_) => Err(format!("bad SSP slack {slack:?} (want ssp:<u64>)")),
            },
            None => Err(format!("unknown consistency {s:?} (sync|async|ssp:<slack>)")),
        },
    }
}

fn cmd_train(flags: &Flags) -> CliResult {
    let store = agl::flat::FeatureStore::open(flag(flags, "store")?)?;
    let examples = store.read_all()?;
    if examples.is_empty() {
        return Err("store is empty".into());
    }
    let sample = decode_graph_feature(&examples[0].graph_feature).map_err(|e| e.to_string())?;
    let in_dim = sample.features.cols();
    let out_dim = examples.iter().map(|e| e.label.len()).max().unwrap_or(1).max(1);
    let layers: usize = flag_or(flags, "layers", "2").parse()?;
    let hidden: usize = flag_or(flags, "hidden", "16").parse()?;
    let heads: usize = flag_or(flags, "heads", "2").parse()?;
    let loss = match flag_or(flags, "loss", if out_dim == 1 { "bce" } else { "softmax" }) {
        "softmax" => Loss::SoftmaxCrossEntropy,
        "bce" => Loss::BceWithLogits,
        other => return Err(format!("unknown loss {other:?}").into()),
    };
    let kind = model_kind(flag_or(flags, "model", "gcn"), heads)?;
    let cfg = ModelConfig::new(kind, in_dim, hidden, out_dim, layers, loss)
        .with_dropout(flag_or(flags, "dropout", "0").parse()?)
        .with_seed(flag_or(flags, "seed", "42").parse()?);
    let mut model = GnnModel::new(cfg);
    let obs = parse_obs(flags)?;
    let opts = TrainOptions {
        epochs: flag_or(flags, "epochs", "10").parse()?,
        lr: flag_or(flags, "lr", "0.01").parse()?,
        batch_size: flag_or(flags, "batch-size", "32").parse()?,
        pruning: flag_or(flags, "pruning", "true").parse()?,
        partitions: flag_or(flags, "partitions", "1").parse()?,
        consistency: parse_consistency(flag_or(flags, "consistency", "sync"))?,
        ..TrainOptions::default()
    }
    .with_obs(obs.clone());
    let workers: usize = flag_or(flags, "workers", "1").parse()?;
    println!(
        "training {} ({} params) on {} triples, {} workers ({})",
        kind.name(),
        model.param_count(),
        examples.len(),
        workers,
        opts.consistency
    );
    if workers > 1 {
        let result = train_distributed(&mut model, &examples, None, workers, &opts);
        for e in &result.epochs {
            println!("epoch {:>3}: loss {:.4} ({:.2}s)", e.epoch + 1, e.loss, e.duration.as_secs_f64());
        }
        println!(
            "ps: {} steps, max staleness {}, {} gate waits ({:.1} ms waited)",
            result.ps_stats.steps,
            result.max_staleness,
            result.ps_stats.ssp_waits,
            result.ps_stats.ssp_wait_nanos as f64 / 1e6
        );
    } else {
        let result = LocalTrainer::new(opts.clone()).train(&mut model, &examples);
        for e in &result.epochs {
            println!("epoch {:>3}: loss {:.4} ({:.2}s)", e.epoch + 1, e.loss, e.duration.as_secs_f64());
        }
    }
    let metrics = LocalTrainer::evaluate(&model, &examples, &opts);
    println!("train metrics: loss {:.4} headline {:.4}", metrics.loss, metrics.headline());
    let out = flag(flags, "out")?;
    fs::write(out, model_to_bytes(&model))?;
    println!("model saved to {out}");
    write_obs_outputs(flags, &obs)
}

/// `agl-cli dist-run` — multi-process GraphFlat + PS training on a
/// synthetic graph:
///
/// ```text
/// agl-cli dist-run --dir /tmp/agl-dist --shuffle-workers 2 --ps-shards 2 \
///                  --nodes 300 --hops 2 --epochs 2 --verify true
/// ```
///
/// Spawns `agl-cli dist-worker` children on Unix-domain sockets under
/// `--dir`, drives them, prints the merged report, and exits non-zero on
/// any failure. `--kill-shuffle-after N` / `--kill-ps-after N` SIGKILL a
/// worker mid-job (fault-injection suites); `--verify true` re-runs
/// in-process and asserts bit-identical output.
fn cmd_dist_run(flags: &Flags) -> CliResult {
    let dir = flag(flags, "dir")?;
    let obs = parse_obs(flags)?;
    let cfg = agl::DistRunConfig {
        n_nodes: flag_or(flags, "nodes", "300").parse()?,
        hops: flag_or(flags, "hops", "2").parse()?,
        shuffle_workers: flag_or(flags, "shuffle-workers", "2").parse()?,
        ps_shards: flag_or(flags, "ps-shards", "2").parse()?,
        train_workers: flag_or(flags, "train-workers", "2").parse()?,
        epochs: flag_or(flags, "epochs", "2").parse()?,
        seed: flag_or(flags, "seed", "42").parse()?,
        socket_dir: dir.into(),
        worker_bin: std::env::current_exe()?,
        verify: flag_or(flags, "verify", "false").parse()?,
        kill_shuffle_after: flags.get("kill-shuffle-after").map(|v| v.parse()).transpose()?,
        kill_ps_after: flags.get("kill-ps-after").map(|v| v.parse()).transpose()?,
        opts: agl::mapreduce::DistOptions {
            connect_timeout_ns: flag_or(flags, "connect-timeout-secs", "10").parse::<u64>()? * 1_000_000_000,
            io_timeout_ns: flag_or(flags, "io-timeout-secs", "30").parse::<u64>()? * 1_000_000_000,
        },
        obs: obs.clone(),
    };
    let summary = agl::run_distributed_job(&cfg)?;
    println!(
        "dist-run: {} GraphFeatures, {} shuffle workers + {} ps shards, {} trainer workers",
        summary.examples, cfg.shuffle_workers, cfg.ps_shards, cfg.train_workers
    );
    // Machine-readable lines (the CI smoke suite and EXPERIMENTS.md parse
    // these).
    println!("flat_wall_ms={:.1}", summary.flat_wall_ns as f64 / 1e6);
    println!("train_wall_ms={:.1}", summary.train_wall_ns as f64 / 1e6);
    println!("task_retries={}", summary.task_retries);
    println!("final_loss={:.6}", summary.final_loss);
    println!("ps_pulls={} ps_pushes={}", summary.ps_stats.pulls, summary.ps_stats.pushes);
    println!("verified={}", summary.verified);
    println!("job report:");
    print!("{}", summary.report);
    write_obs_outputs(flags, &obs)
}

/// `agl-cli obs-report --trace trace.json [--metrics metrics.json]` —
/// offline analysis of the artifacts a traced run wrote: per-stage span
/// medians, per-round straggler ranking, shuffle bytes per worker, RPC
/// telemetry totals, and the count of worker spans causally parented under
/// driver RPC spans. Output is deterministic for a logical-clock trace, so
/// CI can diff it across same-seed runs.
fn cmd_obs_report(flags: &Flags) -> CliResult {
    let trace = fs::read_to_string(flag(flags, "trace")?)?;
    let metrics = flags.get("metrics").map(|p| fs::read_to_string(p)).transpose()?;
    let report = agl::mapreduce::ObsReport::from_artifacts(&trace, metrics.as_deref())?;
    print!("{}", report.render());
    Ok(())
}

/// `agl-cli dist-worker --role shuffle|infer-shuffle|ps --listen
/// unix:<path>` — one worker process: binds the endpoint, serves its
/// protocol until the driver shuts it down (or vanishes), then exits.
/// Spawned by `dist-run` (`shuffle`/`ps`) and `infer-stream --workers N`
/// (`infer-shuffle`, a combining shuffle worker that rebuilds the
/// GraphInfer reducer/combiner pair from the shipped spec); runnable by
/// hand for debugging.
fn cmd_dist_worker(flags: &Flags) -> CliResult {
    let ep = agl::mapreduce::Endpoint::parse(flag(flags, "listen")?)?;
    let accept_timeout_ns = flag_or(flags, "accept-timeout-secs", "60").parse::<u64>()? * 1_000_000_000;
    let listener = agl::mapreduce::Listener::bind(&ep)?;
    match flag(flags, "role")? {
        "shuffle" => agl::mapreduce::serve_shuffle(&listener, accept_timeout_ns, &agl::flat::flat_reducer_from_spec)?,
        "infer-shuffle" => agl::mapreduce::serve_shuffle_combining(
            &listener,
            accept_timeout_ns,
            &agl::infer::infer_reducer_from_spec,
            &agl::infer::infer_combiner_from_spec,
        )?,
        "ps" => agl::ps::serve_ps_shard(&listener, accept_timeout_ns)?,
        other => return Err(format!("unknown role {other:?} (shuffle|infer-shuffle|ps)").into()),
    }
    Ok(())
}

/// Shared serving setup: an [`AglJob`] carrying the seed/obs/serve knobs.
fn serve_job(flags: &Flags, obs: &Obs) -> Result<AglJob, Box<dyn std::error::Error>> {
    Ok(AglJob::new()
        .sampling(parse_sampling(flag_or(flags, "sampling", "none"))?)
        .seed(flag_or(flags, "seed", "42").parse()?)
        .obs(obs.clone())
        .serve(agl::serve::ServeConfig {
            shards: flag_or(flags, "shards", "4").parse()?,
            topk: flag_or(flags, "topk", "8").parse()?,
            ..agl::serve::ServeConfig::default()
        }))
}

/// The `InferOutput` to serve: `--model/--nodes/--edges` files when given
/// (same inputs as `infer`), otherwise a synthetic UUG-like graph scored by
/// a freshly seeded model (`--synthetic-nodes`, default 1000). Both paths
/// are deterministic under `--seed`.
fn serving_output(flags: &Flags, job: &AglJob) -> Result<InferOutput, Box<dyn std::error::Error>> {
    if flags.contains_key("model") {
        let model = model_from_bytes(&fs::read(flag(flags, "model")?)?)?;
        let nodes = read_node_table(flag(flags, "nodes")?)?;
        let edges = read_edge_table(flag(flags, "edges")?)?;
        Ok(job.graph_infer(&model, &nodes, &edges)?)
    } else {
        let n: usize = flag_or(flags, "synthetic-nodes", "1000").parse()?;
        let seed: u64 = flag_or(flags, "seed", "42").parse()?;
        let ds = uug_like(UugConfig { n_nodes: n, feature_dim: 8, seed, ..UugConfig::default() });
        let (nodes, edges) = ds.graph().to_tables();
        let model =
            GnnModel::new(ModelConfig::new(ModelKind::Gcn, 8, 16, 8, 2, Loss::SoftmaxCrossEntropy).with_seed(seed));
        Ok(job.graph_infer(&model, &nodes, &edges)?)
    }
}

/// `agl-cli serve-bench` — build the sharded store and drive the seeded
/// power-law closed-loop workload against it:
///
/// ```text
/// agl-cli serve-bench --synthetic-nodes 1000 --shards 4 --topk 8 \
///                     --load-workers 4 --batches 250 --batch-size 16
/// ```
///
/// Prints the latency/QPS report plus machine-readable `qps=` /
/// `lookup_p99_ns=` lines (the CI smoke suite and EXPERIMENTS.md parse
/// these).
fn cmd_serve_bench(flags: &Flags) -> CliResult {
    let obs = parse_obs(flags)?;
    let job = serve_job(flags, &obs)?;
    let output = serving_output(flags, &job)?;
    let store = job.build_serving(&output);
    let load = LoadConfig {
        workers: flag_or(flags, "load-workers", "4").parse()?,
        batches_per_worker: flag_or(flags, "batches", "250").parse()?,
        batch_size: flag_or(flags, "batch-size", "16").parse()?,
        topk_every: flag_or(flags, "topk-every", "10").parse()?,
        gamma: flag_or(flags, "gamma", "2.1").parse()?,
    };
    println!(
        "serve-bench: {} vectors (dim {}) across {} shards, {} closed-loop workers",
        store.len(),
        store.dim(),
        store.n_shards(),
        load.workers
    );
    let report = run_load(&store, &job.serve_config(), &load);
    println!("{}", report.render());
    println!("qps={}", report.qps);
    println!("lookup_p50_ns={}", report.lookup_p50);
    println!("lookup_p99_ns={}", report.lookup_p99);
    println!("topk_p99_ns={}", report.topk_p99);
    write_obs_outputs(flags, &obs)
}

/// `agl-cli serve --workers N` — sharded multi-process serving: spawn one
/// `serve-worker` per shard under the `ChildReaper` supervision `dist-run`
/// uses, load each with its hash-partition, then verify a sample of point
/// lookups and one top-k fan-out against the in-process store
/// (bit-identical by construction). Exits non-zero on any mismatch.
fn cmd_serve(flags: &Flags) -> CliResult {
    let obs = parse_obs(flags)?;
    let workers: usize = flag_or(flags, "workers", "2").parse()?;
    if workers == 0 {
        return Err("--workers must be > 0".into());
    }
    let dir = Path::new(flag_or(flags, "dir", "/tmp/agl-serve")).to_path_buf();
    fs::create_dir_all(&dir)?;
    let job = serve_job(flags, &obs)?;
    let output = serving_output(flags, &job)?;
    let local = job.build_serving(&output);

    let reaper = agl::ChildReaper::new();
    let bin = std::env::current_exe()?;
    let mut eps = Vec::new();
    for i in 0..workers {
        let sock = dir.join(format!("serve{i}.sock"));
        let _ = fs::remove_file(&sock);
        let ep = agl::mapreduce::Endpoint::Unix(sock.clone());
        let args = vec!["serve-worker".to_string(), "--listen".to_string(), ep.to_string()];
        reaper.spawn(&bin, &args, sock)?;
        eps.push(ep);
    }
    let clock = Clock::monotonic();
    let timeout_ns = flag_or(flags, "connect-timeout-secs", "10").parse::<u64>()? * 1_000_000_000;
    let vectors = output.scores.iter().map(|s| (s.node, s.probs.clone()));
    let flush_every: u64 = flag_or(flags, "metrics-flush-every", "4").parse()?;
    let mut remote =
        agl::serve::RemoteStore::connect_with_obs(&eps, vectors, &clock, timeout_ns, obs.clone(), flush_every)?;
    println!("serve: {} vectors (dim {}) across {} worker processes", local.len(), remote.dim(), workers);

    // Spot-check: a deterministic sample of point lookups plus one top-k
    // fan-out, each compared against the in-process store.
    let stride = (output.scores.len() / 16).max(1);
    let sample: Vec<NodeId> = output.scores.iter().step_by(stride).map(|s| s.node).collect();
    let answers = remote.lookup(&sample)?;
    let mut verified = true;
    for (id, got) in sample.iter().zip(&answers) {
        verified &= got.as_deref() == local.get(*id).as_deref();
    }
    let probe = sample[0];
    let want = local.topk_neighbors(probe, job.serve_config().topk).unwrap_or_default();
    let query = local.get(probe).map(|r| r.to_vec()).unwrap_or_default();
    let have = remote.topk(&query, job.serve_config().topk, Some(probe))?;
    verified &= have == want;
    remote.shutdown();
    println!("lookups={} topk={}", sample.len(), have.len());
    println!("verified={verified}");
    if !verified {
        return Err("remote answers diverged from the in-process store".into());
    }
    write_obs_outputs(flags, &obs)
}

/// `agl-cli serve-worker --listen unix:<path>` — one shard-host process:
/// binds the endpoint, serves the owning driver until `Shutdown` or EOF.
/// Spawned by `serve`; runnable by hand for debugging.
fn cmd_serve_worker(flags: &Flags) -> CliResult {
    let ep = agl::mapreduce::Endpoint::parse(flag(flags, "listen")?)?;
    agl::serve::serve_shard_worker(&ep)?;
    Ok(())
}

/// `agl-cli infer-stream` — streaming full-graph inference (the
/// InferTurbo-style GAS pipeline with shuffle combining):
///
/// ```text
/// agl-cli infer-stream --model data/model.agl --nodes data/nodes.tsv \
///                      --edges data/edges.tsv --out data/scores.tsv
/// agl-cli infer-stream --synthetic-nodes 400 --verify true       # smoke
/// agl-cli infer-stream --synthetic-nodes 400 --workers 2 \
///                      --dir /tmp/agl-infer --verify true        # multi-process
/// ```
///
/// `--degree-threshold N|none` tunes (or disables) the combiner;
/// `--mode materialized` runs the fully-materialized engine instead of the
/// bounded-memory streamed one (the EXPERIMENTS.md cost-ratio baseline);
/// `--workers N` farms the reduce rounds out to `dist-worker
/// --role infer-shuffle` child processes; `--verify true` re-runs the
/// materialized in-process baseline and asserts the scores are
/// bit-identical. Prints machine-readable `key=value` lines (the CI smoke
/// suite and EXPERIMENTS.md parse these).
fn cmd_infer_stream(flags: &Flags) -> CliResult {
    let obs = parse_obs(flags)?;
    let (model, nodes, edges) = if flags.contains_key("model") {
        let model = model_from_bytes(&fs::read(flag(flags, "model")?)?)?;
        let nodes = read_node_table(flag(flags, "nodes")?)?;
        let edges = read_edge_table(flag(flags, "edges")?)?;
        (model, nodes, edges)
    } else {
        let n: usize = flag_or(flags, "synthetic-nodes", "400").parse()?;
        let seed: u64 = flag_or(flags, "seed", "42").parse()?;
        let ds = uug_like(UugConfig { n_nodes: n, feature_dim: 8, seed, ..UugConfig::default() });
        let (nodes, edges) = ds.graph().to_tables();
        let model =
            GnnModel::new(ModelConfig::new(ModelKind::Gcn, 8, 16, 8, 2, Loss::SoftmaxCrossEntropy).with_seed(seed));
        (model, nodes, edges)
    };
    let mut job = AglJob::new()
        .sampling(parse_sampling(flag_or(flags, "sampling", "none"))?)
        .seed(flag_or(flags, "seed", "42").parse()?)
        .obs(obs.clone());
    match flags.get("degree-threshold").map(String::as_str) {
        None => {}
        Some("none") => job = job.combine_threshold(None),
        Some(t) => job = job.combine_threshold(Some(t.parse()?)),
    }
    let si = job.stream_infer();
    let workers: usize = flag_or(flags, "workers", "0").parse()?;
    let mode = flag_or(flags, "mode", "streamed");
    let wall = agl::obs::Clock::monotonic();
    let t0 = wall.now();

    let result = if mode == "materialized" {
        si.run_materialized(&model, &nodes, &edges)?
    } else if workers > 0 {
        let dir = Path::new(flag_or(flags, "dir", "/tmp/agl-infer-stream")).to_path_buf();
        fs::create_dir_all(&dir)?;
        let reaper = agl::ChildReaper::new();
        let bin = std::env::current_exe()?;
        let mut eps = Vec::new();
        for i in 0..workers {
            let sock = dir.join(format!("infer{i}.sock"));
            let _ = fs::remove_file(&sock);
            let ep = agl::mapreduce::Endpoint::Unix(sock.clone());
            let args = vec![
                "dist-worker".to_string(),
                "--role".to_string(),
                "infer-shuffle".to_string(),
                "--listen".to_string(),
                ep.to_string(),
            ];
            reaper.spawn(&bin, &args, sock)?;
            eps.push(ep);
        }
        let opts = agl::mapreduce::DistOptions {
            connect_timeout_ns: flag_or(flags, "connect-timeout-secs", "10").parse::<u64>()? * 1_000_000_000,
            io_timeout_ns: flag_or(flags, "io-timeout-secs", "30").parse::<u64>()? * 1_000_000_000,
        };
        job.graph_infer_stream_distributed(&model, &nodes, &edges, &eps, &opts)?
        // `reaper` drops here: surviving children are killed and reaped,
        // socket files removed — the CI leak checks rely on this.
    } else {
        si.run(&model, &nodes, &edges)?
    };
    let elapsed_ms = wall.since(t0) as f64 / 1e6;

    if let Some(out) = flags.get("out") {
        let mut f = fs::File::create(out)?;
        for s in &result.scores {
            let probs: Vec<String> = s.probs.iter().map(|p| format!("{p:.6}")).collect();
            writeln!(f, "{}\t{}", s.node.0, probs.join(","))?;
        }
        println!("infer-stream: {} scores -> {out}", result.scores.len());
    }

    let mut verified = true;
    if flag_or(flags, "verify", "false").parse::<bool>()? {
        let baseline = si.run_materialized(&model, &nodes, &edges)?;
        // NodeScore is PartialEq over f32 — equality is bit-identity.
        verified = result.scores == baseline.scores;
    }

    // Machine-readable lines (the CI smoke suite and EXPERIMENTS.md parse
    // these).
    println!("scores={}", result.scores.len());
    println!("mode={mode}");
    println!("elapsed_ms={elapsed_ms:.1}");
    println!("gas={}", si.gas_eligible(&model));
    println!("embeddings_computed={}", result.counters.get("infer.embeddings_computed"));
    println!("peak_resident_bytes={}", result.counters.get("stream.peak_resident_bytes"));
    println!(
        "combine_records_in={} combine_records_out={} combine_bytes_saved={}",
        result.counters.get("combine.records_in"),
        result.counters.get("combine.records_out"),
        result.counters.get("combine.bytes_saved")
    );
    if flag_or(flags, "verify", "false").parse::<bool>()? {
        println!("verified={verified}");
    }
    println!("job report:");
    print!("{}", JobReport::from_counters(&result.counters).render());
    write_obs_outputs(flags, &obs)?;
    if !verified {
        return Err("streamed scores diverged from the materialized baseline".into());
    }
    Ok(())
}

fn cmd_infer(flags: &Flags) -> CliResult {
    let model = model_from_bytes(&fs::read(flag(flags, "model")?)?)?;
    let nodes = read_node_table(flag(flags, "nodes")?)?;
    let edges = read_edge_table(flag(flags, "edges")?)?;
    let obs = parse_obs(flags)?;
    let job = AglJob::new()
        .sampling(parse_sampling(flag_or(flags, "sampling", "none"))?)
        .seed(flag_or(flags, "seed", "42").parse()?)
        .obs(obs.clone());
    let result = job.graph_infer(&model, &nodes, &edges)?;
    let out = flag(flags, "out")?;
    let mut f = fs::File::create(out)?;
    for s in &result.scores {
        let probs: Vec<String> = s.probs.iter().map(|p| format!("{p:.6}")).collect();
        writeln!(f, "{}\t{}", s.node.0, probs.join(","))?;
    }
    println!(
        "GraphInfer: {} scores -> {out} ({} embeddings computed)",
        result.scores.len(),
        result.counters.get("infer.embeddings_computed")
    );
    println!("job report:");
    print!("{}", JobReport::from_counters(&result.counters).render());
    write_obs_outputs(flags, &obs)
}
