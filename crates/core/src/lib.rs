//! `agl` — the integrated AGL system facade.
//!
//! This crate wires the three modules of the paper together behind the
//! §3.5-shaped API:
//!
//! ```text
//! GraphFlat    -n node_table -e edge_table -h hops -s sampling_strategy
//! GraphTrainer -m model_name -i input -t train_strategy -c dist_configs
//! GraphInfer   -m model -i input -c infer_configs
//! ```
//!
//! becomes
//!
//! ```
//! use agl::prelude::*;
//!
//! // A toy attributed digraph: 0 <- 1 <- 2, labels on every node.
//! let nodes = NodeTable::new(
//!     vec![NodeId(0), NodeId(1), NodeId(2)],
//!     Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]),
//!     Some(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 0.0]])),
//! );
//! let edges = EdgeTable::from_pairs([(1, 0), (2, 1)]);
//!
//! // GraphFlat: 2-hop GraphFeatures for all nodes.
//! let flat = AglJob::new()
//!     .hops(2)
//!     .graph_flat(&nodes, &edges, &TargetSpec::All)
//!     .unwrap();
//! assert_eq!(flat.examples.len(), 3);
//!
//! // GraphTrainer: a 2-layer GCN on the triples.
//! let cfg = ModelConfig::new(ModelKind::Gcn, 2, 4, 2, 2, Loss::SoftmaxCrossEntropy);
//! let mut model = GnnModel::new(cfg);
//! let opts = TrainOptions { epochs: 3, ..TrainOptions::default() };
//! LocalTrainer::new(opts).train(&mut model, &flat.examples);
//!
//! // GraphInfer: scores for every node via MapReduce slices.
//! let scores = AglJob::new().graph_infer(&model, &nodes, &edges).unwrap();
//! assert_eq!(scores.scores.len(), 3);
//! ```
//!
//! Everything underneath is re-exported: the numeric substrate
//! (`agl_tensor`), graph structures (`agl_graph`), the MapReduce engine
//! (`agl_mapreduce`), layers/losses (`agl_nn`), the parameter server
//! (`agl_ps`), the three AGL modules (`agl_flat`, `agl_trainer`,
//! `agl_infer`), the online serving read path (`agl_serve`), the in-memory
//! comparison engine (`agl_baseline`), dataset generators (`agl_datasets`)
//! and the cluster model (`agl_cluster_sim`).

pub use agl_baseline as baseline;
pub use agl_cluster_sim as cluster_sim;
pub use agl_datasets as datasets;
pub use agl_flat as flat;
pub use agl_graph as graph;
pub use agl_infer as infer;
pub use agl_mapreduce as mapreduce;
pub use agl_nn as nn;
pub use agl_obs as obs;
pub use agl_ps as ps;
pub use agl_serve as serve;
pub use agl_tensor as tensor;
pub use agl_trainer as trainer;

/// The in-repo deterministic RNG (replaces the `rand` crate so the
/// workspace builds offline) — re-exported for convenience.
pub use agl_tensor::rng;

pub mod api;
pub mod dist;
pub mod prelude;

pub use api::AglJob;
pub use dist::{run_distributed_job, ChildReaper, DistRunConfig, DistRunSummary};
