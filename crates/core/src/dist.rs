//! Multi-process AGL: GraphFlat shuffle workers and parameter-server
//! shards as separate OS processes, driven over the `agl-mapreduce`
//! socket transport.
//!
//! This is the process-topology half of the paper's deployment story: the
//! driver (this module, via `agl-cli dist-run`) spawns `agl-cli
//! dist-worker` children — each binding a Unix-domain socket and serving
//! either the shuffle protocol ([`agl_mapreduce::serve_shuffle`] with the
//! GraphFlat reducer factory) or one PS shard
//! ([`agl_ps::serve_ps_shard`]) — runs GraphFlat and distributed training
//! against them, merges every worker's counters and trace spans into one
//! report, and tears the fleet down.
//!
//! Fault semantics are real: the kill-injection hooks SIGKILL a live child
//! mid-job. A killed shuffle worker's lost partitions are re-dispatched to
//! the surviving workers (byte-identical output, `task_retries > 0`); a
//! killed PS shard surfaces as a typed error within the socket read
//! deadline — never a hang.
//!
//! The `--verify` mode re-runs the whole job in-process and asserts the
//! distributed run matched bit-for-bit: GraphFeature bytes from GraphFlat,
//! and the final model parameter bits from training (elementwise PS
//! sharding composes exactly across process boundaries).

use agl_datasets::{uug_like, UugConfig};
use agl_flat::{FlatConfig, GraphFlat, TargetSpec, TrainingExample};
use agl_graph::{EdgeTable, NodeTable};
use agl_mapreduce::transport::Endpoint;
use agl_mapreduce::{DistOptions, JobReport};
use agl_nn::{GnnModel, Loss, ModelConfig, ModelKind};
use agl_obs::{Clock, Obs};
use agl_ps::{Consistency, OptSpec, PsClient, PsNetError, PsStats, RemotePs};
use agl_trainer::{DistTrainer, TrainOptions};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// One distributed run, end to end.
#[derive(Debug, Clone)]
pub struct DistRunConfig {
    /// Synthetic-graph size (UUG-like generator).
    pub n_nodes: usize,
    /// GraphFlat neighborhood depth K.
    pub hops: usize,
    /// Shuffle worker processes.
    pub shuffle_workers: usize,
    /// Parameter-server shard processes.
    pub ps_shards: usize,
    /// Trainer worker threads (in the driver process).
    pub train_workers: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Dataset / model / sampling seed.
    pub seed: u64,
    /// Directory for the workers' Unix-domain sockets.
    pub socket_dir: PathBuf,
    /// Binary to spawn for workers (`agl-cli` itself).
    pub worker_bin: PathBuf,
    /// Re-run everything in-process and assert bit-identical results.
    pub verify: bool,
    /// SIGKILL shuffle worker 0 after this many reduce-task dispatches.
    pub kill_shuffle_after: Option<usize>,
    /// SIGKILL PS shard 0 after this many parameter pulls.
    pub kill_ps_after: Option<u64>,
    /// Socket connect / RPC-read deadlines.
    pub opts: DistOptions,
    /// Observability sink for the whole job. When enabled, the driver's
    /// trace identity is propagated to every worker process over the wire,
    /// worker spans/counters are merged back on shutdown, and RPC telemetry
    /// is recorded per shard. Inert by default (zero cost).
    pub obs: Obs,
}

impl Default for DistRunConfig {
    fn default() -> Self {
        Self {
            n_nodes: 300,
            hops: 2,
            shuffle_workers: 2,
            ps_shards: 2,
            train_workers: 2,
            epochs: 2,
            seed: 42,
            socket_dir: std::env::temp_dir().join(format!("agl-dist-{}", std::process::id())),
            worker_bin: PathBuf::new(),
            verify: false,
            kill_shuffle_after: None,
            kill_ps_after: None,
            opts: DistOptions::default(),
            obs: Obs::default(),
        }
    }
}

/// What the run measured — wall-clock splits come from
/// [`agl_obs::Clock::monotonic`], so they are honest process time.
#[derive(Debug, Clone)]
pub struct DistRunSummary {
    /// GraphFeatures produced.
    pub examples: usize,
    /// GraphFlat wall time (nanoseconds).
    pub flat_wall_ns: u64,
    /// Training wall time (nanoseconds).
    pub train_wall_ns: u64,
    /// Reduce-task retries the shuffle driver performed (>0 after a kill).
    pub task_retries: u64,
    /// Final-epoch training loss.
    pub final_loss: f32,
    /// Aggregated PS traffic stats.
    pub ps_stats: PsStats,
    /// Whether `--verify` ran and matched bit-for-bit.
    pub verified: bool,
    /// Rendered merged job report (driver + per-worker counters).
    pub report: String,
}

/// Child-process fleet with kill-on-drop semantics: whatever happens in the
/// driver — success, typed error, panic — every child is SIGKILLed and
/// reaped, and every socket file is removed. This guard is what the CI
/// leak checks (`pgrep` + socket-file listing) rely on.
pub struct ChildReaper {
    children: Mutex<Vec<Option<Child>>>,
    socks: Mutex<Vec<PathBuf>>,
}

impl ChildReaper {
    /// Empty fleet.
    pub fn new() -> Self {
        Self { children: Mutex::new(Vec::new()), socks: Mutex::new(Vec::new()) }
    }

    fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Spawn a worker child and track it (and its socket path) for cleanup.
    /// Returns the child's index for targeted kills.
    pub fn spawn(&self, bin: &Path, args: &[String], sock: PathBuf) -> std::io::Result<usize> {
        let child = Command::new(bin).args(args).stdin(Stdio::null()).spawn()?;
        let mut children = Self::lock(&self.children);
        children.push(Some(child));
        Self::lock(&self.socks).push(sock);
        Ok(children.len() - 1)
    }

    /// SIGKILL child `idx` (and reap it). The fault-injection primitive —
    /// this is a real `kill -9`, not a simulated failure.
    pub fn kill(&self, idx: usize) {
        let mut children = Self::lock(&self.children);
        if let Some(slot) = children.get_mut(idx) {
            if let Some(mut child) = slot.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }

    /// Number of children spawned so far (dead ones included).
    pub fn len(&self) -> usize {
        Self::lock(&self.children).len()
    }

    /// True when no children have been spawned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for ChildReaper {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ChildReaper {
    fn drop(&mut self) {
        for slot in Self::lock(&self.children).iter_mut() {
            if let Some(mut child) = slot.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        for sock in Self::lock(&self.socks).iter() {
            let _ = std::fs::remove_file(sock);
        }
    }
}

/// PS-client wrapper that SIGKILLs a shard child after the n-th pull —
/// the "kill a PS shard mid-epoch" fault injection. Everything else
/// delegates to the wrapped client.
struct KillAfterPulls<'a, C: PsClient> {
    inner: &'a C,
    reaper: &'a ChildReaper,
    child_idx: usize,
    after: u64,
    pulls: AtomicU64,
    fired: AtomicBool,
}

impl<C: PsClient> PsClient for KillAfterPulls<'_, C> {
    fn pull_with_version(&self, worker: usize) -> Result<(Vec<f32>, u64), PsNetError> {
        let n = self.pulls.fetch_add(1, Ordering::SeqCst) + 1;
        if n >= self.after && !self.fired.swap(true, Ordering::SeqCst) {
            self.reaper.kill(self.child_idx);
        }
        self.inner.pull_with_version(worker)
    }
    fn push(&self, worker: usize, grads: &[f32]) -> Result<(), PsNetError> {
        self.inner.push(worker, grads)
    }
    fn retire(&self, worker: usize) -> Result<(), PsNetError> {
        self.inner.retire(worker)
    }
    fn snapshot(&self) -> Result<Vec<f32>, PsNetError> {
        self.inner.snapshot()
    }
    fn stats(&self) -> Result<PsStats, PsNetError> {
        self.inner.stats()
    }
    fn consistency(&self) -> Consistency {
        self.inner.consistency()
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
}

fn synthetic_tables(cfg: &DistRunConfig) -> (NodeTable, EdgeTable) {
    let ds = uug_like(UugConfig { n_nodes: cfg.n_nodes, feature_dim: 8, seed: cfg.seed, ..UugConfig::default() });
    ds.graph().to_tables()
}

fn flat_config(cfg: &DistRunConfig) -> FlatConfig {
    FlatConfig { k_hops: cfg.hops, ..FlatConfig::default() }.with_seed(cfg.seed)
}

fn train_options(cfg: &DistRunConfig) -> TrainOptions {
    TrainOptions { epochs: cfg.epochs, lr: 0.05, batch_size: 16, ..TrainOptions::default() }
}

fn build_model(examples: &[TrainingExample], seed: u64) -> Result<GnnModel, String> {
    let sample = agl_flat::decode_graph_feature(&examples[0].graph_feature).map_err(|e| e.to_string())?;
    let in_dim = sample.features.cols();
    let out_dim = examples.iter().map(|e| e.label.len()).max().unwrap_or(1).max(1);
    let loss = if out_dim == 1 { Loss::BceWithLogits } else { Loss::SoftmaxCrossEntropy };
    Ok(GnnModel::new(ModelConfig::new(ModelKind::Sage, in_dim, 8, out_dim, 2, loss).with_seed(seed)))
}

/// Run one full distributed job: spawn the worker fleet, GraphFlat over
/// shuffle-worker processes, distributed training over PS-shard processes,
/// merge reports, tear everything down. See [`DistRunConfig`] for the
/// fault-injection and verification knobs.
pub fn run_distributed_job(cfg: &DistRunConfig) -> Result<DistRunSummary, Box<dyn std::error::Error>> {
    assert!(cfg.shuffle_workers > 0 && cfg.ps_shards > 0 && cfg.train_workers > 0);
    std::fs::create_dir_all(&cfg.socket_dir)?;
    let clock = Clock::monotonic();
    let reaper = ChildReaper::new();
    let accept_secs = "60";

    // ---- fleet ----
    let mut shuffle_eps = Vec::new();
    let mut shuffle_idx = Vec::new();
    for i in 0..cfg.shuffle_workers {
        let sock = cfg.socket_dir.join(format!("shuffle{i}.sock"));
        let ep = Endpoint::Unix(sock.clone());
        let args = vec![
            "dist-worker".to_string(),
            "--role".to_string(),
            "shuffle".to_string(),
            "--listen".to_string(),
            ep.to_string(),
            "--accept-timeout-secs".to_string(),
            accept_secs.to_string(),
        ];
        shuffle_idx.push(reaper.spawn(&cfg.worker_bin, &args, sock)?);
        shuffle_eps.push(ep);
    }
    let mut ps_eps = Vec::new();
    let mut ps_idx = Vec::new();
    for i in 0..cfg.ps_shards {
        let sock = cfg.socket_dir.join(format!("ps{i}.sock"));
        let ep = Endpoint::Unix(sock.clone());
        let args = vec![
            "dist-worker".to_string(),
            "--role".to_string(),
            "ps".to_string(),
            "--listen".to_string(),
            ep.to_string(),
            "--accept-timeout-secs".to_string(),
            accept_secs.to_string(),
        ];
        ps_idx.push(reaper.spawn(&cfg.worker_bin, &args, sock)?);
        ps_eps.push(ep);
    }

    // ---- GraphFlat across shuffle-worker processes ----
    let (nodes, edges) = synthetic_tables(cfg);
    let targets = TargetSpec::All;
    let mut flat_cfg = flat_config(cfg);
    flat_cfg.engine.obs = cfg.obs.clone();
    let flat = GraphFlat::new(flat_cfg);
    let killed = AtomicBool::new(false);
    let kill_hook = cfg.kill_shuffle_after.map(|after| {
        let reaper = &reaper;
        let killed = &killed;
        let victim = shuffle_idx[0];
        move |dispatched: usize| {
            if dispatched >= after && !killed.swap(true, Ordering::SeqCst) {
                reaper.kill(victim);
            }
        }
    });
    let flat_start = clock.now();
    let out = match &kill_hook {
        Some(h) => flat.run_distributed_with_hook(&nodes, &edges, &targets, &shuffle_eps, &cfg.opts, Some(h)),
        None => flat.run_distributed(&nodes, &edges, &targets, &shuffle_eps, &cfg.opts),
    }?;
    let flat_wall_ns = clock.since(flat_start);
    let task_retries = out.counters.get("task_retries");
    if cfg.kill_shuffle_after.is_some() && task_retries == 0 {
        return Err("kill-shuffle injection fired but the driver recorded no task retries".into());
    }

    // ---- distributed training across PS-shard processes ----
    let mut opts = train_options(cfg);
    opts.engine.obs = cfg.obs.clone();
    let mut model = build_model(&out.examples, cfg.seed)?;
    let remote = RemotePs::connect_with_obs(
        &ps_eps,
        &model.param_vector(),
        cfg.train_workers,
        opts.consistency,
        OptSpec::Adam { lr: opts.lr },
        cfg.opts.connect_timeout_ns,
        cfg.opts.io_timeout_ns,
        cfg.obs.clone(),
    )?;
    let mut trainer = DistTrainer::new(cfg.train_workers, opts);
    trainer.n_shards = cfg.ps_shards;
    let train_start = clock.now();
    let result = match cfg.kill_ps_after {
        Some(after) => {
            let killer = KillAfterPulls {
                inner: &remote,
                reaper: &reaper,
                child_idx: ps_idx[0],
                after,
                pulls: AtomicU64::new(0),
                fired: AtomicBool::new(false),
            };
            trainer.train_with_client(&mut model, &out.examples, None, &killer)
        }
        None => trainer.train_with_client(&mut model, &out.examples, None, &remote),
    };
    let train_wall_ns = clock.since(train_start);
    remote.shutdown();
    let result = result?;

    // ---- verification against the in-process engines ----
    let mut verified = false;
    if cfg.verify {
        let local_flat = GraphFlat::new(flat_config(cfg)).run(&nodes, &edges, &targets)?;
        if local_flat.examples.len() != out.examples.len() {
            return Err(format!(
                "verify: {} examples in-process vs {} distributed",
                local_flat.examples.len(),
                out.examples.len()
            )
            .into());
        }
        for (a, b) in local_flat.examples.iter().zip(&out.examples) {
            if a.target != b.target || a.label != b.label || a.graph_feature != b.graph_feature {
                return Err(format!("verify: GraphFeature mismatch at target {}", a.target).into());
            }
        }
        let mut local_model = build_model(&local_flat.examples, cfg.seed)?;
        // Fresh options: the in-process re-run must stay off the job trace,
        // or its spans would duplicate the distributed run's.
        let mut local_trainer = DistTrainer::new(cfg.train_workers, train_options(cfg));
        local_trainer.n_shards = cfg.ps_shards;
        local_trainer.train(&mut local_model, &local_flat.examples, None);
        let (dist_p, local_p) = (model.param_vector(), local_model.param_vector());
        let diverged =
            dist_p.len() != local_p.len() || dist_p.iter().zip(&local_p).any(|(a, b)| a.to_bits() != b.to_bits());
        if diverged {
            return Err("verify: final model parameters differ from the in-process run".into());
        }
        verified = true;
    }

    let final_loss = result.epochs.last().map(|e| e.loss as f32).unwrap_or(f32::NAN);
    Ok(DistRunSummary {
        examples: out.examples.len(),
        flat_wall_ns,
        train_wall_ns,
        task_retries,
        final_loss,
        ps_stats: result.ps_stats,
        verified,
        report: JobReport::from_counters(&out.counters).render(),
    })
    // `reaper` drops here: any child still alive is killed and reaped, and
    // every socket file is removed.
}
