//! One-stop imports for AGL applications.

pub use crate::api::{train_and_evaluate, train_distributed, AglJob};
pub use agl_baseline::FullGraphEngine;
pub use agl_cluster_sim::{
    simulate_mr_job, simulate_ssp_training, simulate_sync_training, speedup_curve, ClusterConfig, MrJobModel,
    SspSimReport, TrainingWorkload,
};
pub use agl_datasets::{cora_like, ppi_like, uug_like, Dataset, PpiConfig, Split, UugConfig};
pub use agl_flat::{
    decode_graph_feature, encode_graph_feature, FlatConfig, FlatOutput, GraphFlat, SamplingStrategy, TargetSpec,
    TrainingExample,
};
pub use agl_graph::{EdgeTable, Graph, NodeId, NodeTable, SubEdge, Subgraph};
pub use agl_infer::{
    GraphInfer, InferConfig, InferOutput, NodeScore, OriginalInference, StreamInfer, DEFAULT_DEGREE_THRESHOLD,
};
pub use agl_mapreduce::{EngineConfig, JobReport, RoundReport};
pub use agl_nn::{model_from_bytes, model_to_bytes, Adam, GnnModel, Loss, ModelConfig, ModelKind, Optimizer, Sgd};
pub use agl_obs::{Clock, MetricsRegistry, Obs, TraceSink};
pub use agl_ps::{Consistency, ParameterServer};
pub use agl_serve::{
    run_load, update_incremental, EmbeddingStore, GraphDelta, LoadConfig, LoadReport, Neighbor, RequestBatcher,
    ServeConfig, UpdateReport,
};
pub use agl_tensor::{seeded_rng, Coo, Csr, ExecCtx, Matrix, Rng, SliceRandom, SmallRng};
pub use agl_trainer::{
    accuracy, auc, macro_f1, micro_f1, precision_recall, DistTrainer, LocalTrainer, Metrics, TrainOptions, TrainResult,
};
