//! The high-level job API (paper §3.5).

use agl_flat::{FlatConfig, FlatOutput, GraphFlat, SamplingStrategy, TargetSpec};
use agl_graph::{EdgeTable, NodeTable};
use agl_infer::{GraphInfer, InferConfig, InferOutput};
use agl_mapreduce::JobError;
use agl_nn::GnnModel;
use agl_trainer::metrics::Metrics;
use agl_trainer::{Consistency, DistTrainer, LocalTrainer, TrainOptions};

/// Builder for GraphFlat / GraphInfer / GraphTrainer runs with shared knobs
/// — the command-line surface of §3.5 as a typed API.
#[derive(Debug, Clone, Default)]
pub struct AglJob {
    flat: FlatConfig,
    infer: InferConfig,
    train: TrainOptions,
}

impl AglJob {
    pub fn new() -> Self {
        Self::default()
    }

    /// `-h hops`: neighborhood depth K.
    pub fn hops(mut self, k: usize) -> Self {
        self.flat.k_hops = k;
        self
    }

    /// `-s sampling_strategy`, applied to both GraphFlat and GraphInfer so
    /// inference stays consistent with training data (§3.4).
    pub fn sampling(mut self, s: SamplingStrategy) -> Self {
        self.flat.sampling = s;
        self.infer.sampling = s;
        self
    }

    /// Hub re-indexing threshold + fanout (§3.2.2).
    pub fn reindex(mut self, threshold: usize, fanout: u32) -> Self {
        self.flat.hub_threshold = threshold;
        self.flat.reindex_fanout = fanout;
        self
    }

    /// Seed for the sampling framework.
    pub fn seed(mut self, seed: u64) -> Self {
        self.flat.seed = seed;
        self.infer.seed = seed;
        self
    }

    /// Engine sizing (map tasks, reduce tasks, thread parallelism).
    pub fn engine(mut self, map_tasks: usize, reduce_tasks: usize, parallelism: usize) -> Self {
        self.flat.map_tasks = map_tasks;
        self.flat.reduce_tasks = reduce_tasks;
        self.flat.parallelism = parallelism;
        self.infer.map_tasks = map_tasks;
        self.infer.reduce_tasks = reduce_tasks;
        self.infer.parallelism = parallelism;
        self
    }

    /// Worker-coordination mode for distributed training: `Sync`, `Async`,
    /// or `Ssp { slack }` — the one place a job picks it.
    pub fn consistency(mut self, c: Consistency) -> Self {
        self.train.consistency = c;
        self
    }

    /// Training hyper-parameters (batch size, epochs, lr, ablation axes).
    pub fn train_options(mut self, opts: TrainOptions) -> Self {
        // `consistency(...)` and `train_options(...)` may be chained in
        // either order; the explicit options win wholesale.
        self.train = opts;
        self
    }

    /// Attach one observability handle to every stage this job runs:
    /// GraphFlat, GraphInfer, and the trainer (parameter server included).
    /// Spans land in the handle's trace sink, counters in its metrics
    /// registry. Chain *after* [`train_options`](Self::train_options) —
    /// explicit options replace the whole training config, handle included.
    pub fn obs(mut self, obs: agl_obs::Obs) -> Self {
        self.flat.obs = obs.clone();
        self.infer.obs = obs.clone();
        self.train.obs = obs;
        self
    }

    /// Direct access to the full training configuration.
    pub fn train_config(&self) -> &TrainOptions {
        &self.train
    }

    /// Direct access to the full GraphFlat configuration.
    pub fn flat_config(&self) -> &FlatConfig {
        &self.flat
    }

    /// Direct access to the full GraphInfer configuration.
    pub fn infer_config(&self) -> &InferConfig {
        &self.infer
    }

    /// **GraphFlat**: generate `<TargetedNodeId, Label, GraphFeature>`
    /// triples (§3.2).
    pub fn graph_flat(
        &self,
        nodes: &NodeTable,
        edges: &EdgeTable,
        targets: &TargetSpec,
    ) -> Result<FlatOutput, JobError> {
        GraphFlat::new(self.flat.clone()).run(nodes, edges, targets)
    }

    /// **GraphInfer**: score every node with a trained model via the
    /// K+1-slice MapReduce pipeline (§3.4).
    pub fn graph_infer(&self, model: &GnnModel, nodes: &NodeTable, edges: &EdgeTable) -> Result<InferOutput, JobError> {
        GraphInfer::new(self.infer.clone()).run(model, nodes, edges)
    }

    /// **GraphTrainer**, distributed: data-parallel workers against an
    /// in-process parameter server under this job's training options —
    /// including the [`consistency`](Self::consistency) mode.
    pub fn train_distributed(
        &self,
        model: &mut GnnModel,
        train: &[agl_flat::TrainingExample],
        val: Option<&[agl_flat::TrainingExample]>,
        n_workers: usize,
    ) -> agl_trainer::DistTrainResult {
        DistTrainer::new(n_workers, self.train.clone()).train(model, train, val)
    }
}

/// **GraphTrainer** in one call: train on triples, evaluate on a held-out
/// triple set, return the validation metrics (§3.3).
pub fn train_and_evaluate(
    model: &mut GnnModel,
    train: &[agl_flat::TrainingExample],
    eval: &[agl_flat::TrainingExample],
    opts: &TrainOptions,
) -> Metrics {
    LocalTrainer::new(opts.clone()).train(model, train);
    LocalTrainer::evaluate(model, eval, opts)
}

/// Distributed **GraphTrainer**: data-parallel workers against an
/// in-process parameter server (`-t train_strategy -c dist_configs`). The
/// coordination mode is `opts.consistency`.
pub fn train_distributed(
    model: &mut GnnModel,
    train: &[agl_flat::TrainingExample],
    val: Option<&[agl_flat::TrainingExample]>,
    n_workers: usize,
    opts: &TrainOptions,
) -> agl_trainer::DistTrainResult {
    DistTrainer::new(n_workers, opts.clone()).train(model, train, val)
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_graph::NodeId;
    use agl_nn::{Loss, ModelConfig, ModelKind};
    use agl_tensor::Matrix;

    fn toy() -> (NodeTable, EdgeTable) {
        let n = 20u64;
        let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut feats = Matrix::zeros(n as usize, 2);
        let mut labels = Matrix::zeros(n as usize, 2);
        for i in 0..n as usize {
            let c = i % 2;
            labels[(i, c)] = 1.0;
            feats[(i, 0)] = if c == 0 { 1.0 } else { -1.0 };
            feats[(i, 1)] = 0.1;
        }
        let nodes = NodeTable::new(ids, feats, Some(labels));
        let edges = EdgeTable::from_pairs((0..n - 2).map(|i| (i, i + 2)));
        (nodes, edges)
    }

    #[test]
    fn end_to_end_flat_train_infer() {
        let (nodes, edges) = toy();
        let job = AglJob::new().hops(2).seed(5);
        let flat = job.graph_flat(&nodes, &edges, &TargetSpec::All).unwrap();
        assert_eq!(flat.examples.len(), 20);

        let mut model = GnnModel::new(ModelConfig::new(ModelKind::Gcn, 2, 8, 2, 2, Loss::SoftmaxCrossEntropy));
        let opts = TrainOptions { epochs: 15, lr: 0.05, ..TrainOptions::default() };
        let metrics = train_and_evaluate(&mut model, &flat.examples, &flat.examples, &opts);
        assert!(metrics.accuracy.unwrap() > 0.9, "{:?}", metrics.accuracy);

        let scores = job.graph_infer(&model, &nodes, &edges).unwrap();
        assert_eq!(scores.scores.len(), 20);
    }

    #[test]
    fn builder_knobs_propagate() {
        let job = AglJob::new()
            .hops(3)
            .sampling(SamplingStrategy::TopK { max_degree: 7 })
            .reindex(100, 8)
            .engine(2, 3, 5)
            .seed(9)
            .consistency(Consistency::Ssp { slack: 4 });
        assert_eq!(job.flat_config().k_hops, 3);
        assert_eq!(job.flat_config().hub_threshold, 100);
        assert_eq!(job.flat_config().reindex_fanout, 8);
        assert_eq!(job.flat_config().reduce_tasks, 3);
        assert_eq!(job.infer_config().parallelism, 5);
        assert_eq!(job.infer_config().sampling, SamplingStrategy::TopK { max_degree: 7 });
        assert_eq!(job.infer_config().seed, 9);
        assert_eq!(job.train_config().consistency, Consistency::Ssp { slack: 4 });
        // Defaults elsewhere stay intact.
        assert_eq!(job.train_config().batch_size, TrainOptions::default().batch_size);
    }

    #[test]
    fn obs_handle_reaches_all_three_stages() {
        let (nodes, edges) = toy();
        let obs = agl_obs::Obs::enabled_logical();
        let job = AglJob::new().hops(2).seed(5).obs(obs.clone());

        let flat = job.graph_flat(&nodes, &edges, &TargetSpec::All).unwrap();
        let mut model = GnnModel::new(ModelConfig::new(ModelKind::Gcn, 2, 8, 2, 2, Loss::SoftmaxCrossEntropy));
        let r = job.train_distributed(&mut model, &flat.examples, None, 2);
        assert_eq!(r.val_curve.len(), 0);
        job.graph_infer(&model, &nodes, &edges).unwrap();

        let trace = obs.trace().unwrap();
        let spans = trace.events();
        let has = |n: &str| spans.iter().any(|s| s.name == n);
        assert!(has("graphflat") && has("mapreduce.round0"), "GraphFlat rounds traced");
        assert!(has("train.epoch"), "trainer epochs traced");
        assert!(has("ps.pull") && has("ps.apply"), "PS traffic traced");
        assert!(has("graphinfer"), "GraphInfer traced");
        let m = obs.metrics().unwrap().to_json();
        assert!(m.contains("\"trainer.epochs\":"), "{m}");
        assert!(m.contains("\"ps.pushes\":"), "{m}");
    }

    #[test]
    fn job_trains_distributed_under_ssp() {
        let (nodes, edges) = toy();
        let job =
            AglJob::new().hops(2).seed(5).consistency(Consistency::Ssp { slack: 2 }).train_options(TrainOptions {
                epochs: 6,
                lr: 0.05,
                batch_size: 10,
                consistency: Consistency::Ssp { slack: 2 },
                ..TrainOptions::default()
            });
        let flat = job.graph_flat(&nodes, &edges, &TargetSpec::All).unwrap();
        let mut model = GnnModel::new(ModelConfig::new(ModelKind::Gcn, 2, 8, 2, 2, Loss::SoftmaxCrossEntropy));
        let r = job.train_distributed(&mut model, &flat.examples, Some(&flat.examples), 2);
        assert!(r.max_staleness <= 2, "SSP bound through the job API: {}", r.max_staleness);
        assert_eq!(r.val_curve.len(), 6);
    }
}
