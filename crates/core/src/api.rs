//! The high-level job API (paper §3.5).

use agl_flat::{FlatConfig, FlatOutput, GraphFlat, SamplingStrategy, TargetSpec};
use agl_graph::{EdgeTable, NodeTable};
use agl_infer::{GraphInfer, InferConfig, InferOutput, StreamInfer};
use agl_mapreduce::{DistOptions, Endpoint, EngineConfig, JobError};
use agl_nn::GnnModel;
use agl_trainer::metrics::Metrics;
use agl_trainer::{Consistency, DistTrainer, LocalTrainer, TrainOptions};

/// Builder for GraphFlat / GraphInfer / GraphTrainer / serving runs with
/// shared knobs — the command-line surface of §3.5 as a typed API.
///
/// The shared execution knobs live in exactly one [`EngineConfig`]:
/// [`seed`](Self::seed), [`obs`](Self::obs) and [`engine`](Self::engine)
/// write it once, and the per-stage accessors overlay it onto the stage
/// configs when a stage actually runs. Stage-specific knobs
/// ([`hops`](Self::hops), [`train_options`](Self::train_options), ...) and
/// the shared ones may therefore be chained in any order.
#[derive(Debug, Clone, Default)]
pub struct AglJob {
    engine: EngineConfig,
    flat: FlatConfig,
    infer: InferConfig,
    train: TrainOptions,
    /// Set by [`consistency`](Self::consistency); overlays
    /// `train.consistency` so it survives a later
    /// [`train_options`](Self::train_options) (merge, not clobber).
    consistency: Option<Consistency>,
    /// Set by [`combine_threshold`](Self::combine_threshold); `None` keeps
    /// [`StreamInfer`]'s default, `Some(t)` overrides it (with
    /// `Some(None)` disabling the combiner).
    combine_threshold: Option<Option<usize>>,
    serve: agl_serve::ServeConfig,
}

impl AglJob {
    pub fn new() -> Self {
        Self::default()
    }

    /// `-h hops`: neighborhood depth K.
    pub fn hops(mut self, k: usize) -> Self {
        self.flat.k_hops = k;
        self
    }

    /// `-s sampling_strategy`, applied to both GraphFlat and GraphInfer so
    /// inference stays consistent with training data (§3.4).
    pub fn sampling(mut self, s: SamplingStrategy) -> Self {
        self.flat.sampling = s;
        self.infer.sampling = s;
        self
    }

    /// Hub re-indexing threshold + fanout (§3.2.2).
    pub fn reindex(mut self, threshold: usize, fanout: u32) -> Self {
        self.flat.hub_threshold = threshold;
        self.flat.reindex_fanout = fanout;
        self
    }

    /// Seed for everything sampled or shuffled under this job — written to
    /// the shared [`EngineConfig`] exactly once.
    pub fn seed(mut self, seed: u64) -> Self {
        self.engine.seed = seed;
        self
    }

    /// Engine sizing (map tasks, reduce tasks, thread parallelism) —
    /// written to the shared [`EngineConfig`] exactly once.
    pub fn engine(mut self, map_tasks: usize, reduce_tasks: usize, parallelism: usize) -> Self {
        self.engine.map_tasks = map_tasks;
        self.engine.reduce_tasks = reduce_tasks;
        self.engine.parallelism = parallelism;
        self
    }

    /// Replace the whole shared [`EngineConfig`] at once.
    pub fn engine_config(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Worker-coordination mode for distributed training: `Sync`, `Async`,
    /// or `Ssp { slack }` — the one place a job picks it. Survives a later
    /// [`train_options`](Self::train_options) call (order-independent).
    pub fn consistency(mut self, c: Consistency) -> Self {
        self.consistency = Some(c);
        self
    }

    /// Training hyper-parameters (batch size, epochs, lr, ablation axes).
    /// Merges with the shared knobs instead of clobbering them: an earlier
    /// [`consistency`](Self::consistency), [`seed`](Self::seed) or
    /// [`obs`](Self::obs) still applies.
    pub fn train_options(mut self, opts: TrainOptions) -> Self {
        self.train = opts;
        self
    }

    /// Serving configuration (shard count, top-k defaults, load-generator
    /// shape) — the read path joins the same builder.
    pub fn serve(mut self, cfg: agl_serve::ServeConfig) -> Self {
        self.serve = cfg;
        self
    }

    /// Attach one observability handle to every stage this job runs:
    /// GraphFlat, GraphInfer, the trainer (parameter server included) and
    /// the serving store — written to the shared [`EngineConfig`] exactly
    /// once. Spans land in the handle's trace sink, counters in its metrics
    /// registry. May be chained in any order with the other setters.
    pub fn obs(mut self, obs: agl_obs::Obs) -> Self {
        self.engine.obs = obs;
        self
    }

    /// The full training configuration: the chained options with the
    /// job-wide engine knobs (and any explicit consistency) overlaid.
    pub fn train_config(&self) -> TrainOptions {
        let mut t = self.train.clone().with_engine(self.engine.clone());
        if let Some(c) = self.consistency {
            t.consistency = c;
        }
        t
    }

    /// The full GraphFlat configuration (job-wide engine knobs overlaid).
    pub fn flat_config(&self) -> FlatConfig {
        self.flat.clone().with_engine(self.engine.clone())
    }

    /// The full GraphInfer configuration (job-wide engine knobs overlaid).
    pub fn infer_config(&self) -> InferConfig {
        self.infer.clone().with_engine(self.engine.clone())
    }

    /// The full serving configuration (job-wide engine knobs overlaid).
    pub fn serve_config(&self) -> agl_serve::ServeConfig {
        self.serve.clone().with_engine(self.engine.clone())
    }

    /// **GraphFlat**: generate `<TargetedNodeId, Label, GraphFeature>`
    /// triples (§3.2).
    pub fn graph_flat(
        &self,
        nodes: &NodeTable,
        edges: &EdgeTable,
        targets: &TargetSpec,
    ) -> Result<FlatOutput, JobError> {
        GraphFlat::new(self.flat_config()).run(nodes, edges, targets)
    }

    /// **GraphInfer**: score every node with a trained model via the
    /// K+1-slice MapReduce pipeline (§3.4).
    pub fn graph_infer(&self, model: &GnnModel, nodes: &NodeTable, edges: &EdgeTable) -> Result<InferOutput, JobError> {
        GraphInfer::new(self.infer_config()).run(model, nodes, edges)
    }

    /// The [`StreamInfer`] driver under this job's configuration — the
    /// entry point behind [`graph_infer_stream`](Self::graph_infer_stream)
    /// and the `agl-cli infer-stream` subcommand.
    pub fn stream_infer(&self) -> StreamInfer {
        let si = StreamInfer::new(self.infer_config());
        match self.combine_threshold {
            None => si,
            Some(t) => si.with_degree_threshold(t),
        }
    }

    /// Combiner degree threshold for streaming inference: `Some(t)` folds
    /// shuffle groups of at least `t` messages, `None` disables the
    /// combiner. Either way the output stays bit-identical — see the
    /// `agl_infer::combine` docs.
    pub fn combine_threshold(mut self, t: Option<usize>) -> Self {
        self.combine_threshold = Some(t);
        self
    }

    /// **Streaming GraphInfer**: the same scores as
    /// [`graph_infer`](Self::graph_infer) computed by the bounded-memory
    /// GAS pipeline with shuffle combining (the InferTurbo-style path).
    pub fn graph_infer_stream(
        &self,
        model: &GnnModel,
        nodes: &NodeTable,
        edges: &EdgeTable,
    ) -> Result<InferOutput, JobError> {
        self.stream_infer().run(model, nodes, edges)
    }

    /// Streaming GraphInfer with the reduce work farmed out to shuffle
    /// worker processes (each running
    /// `agl_mapreduce::serve_shuffle_combining` with the
    /// `agl_infer::dist` factories). Bit-identical to
    /// [`graph_infer_stream`](Self::graph_infer_stream).
    pub fn graph_infer_stream_distributed(
        &self,
        model: &GnnModel,
        nodes: &NodeTable,
        edges: &EdgeTable,
        endpoints: &[Endpoint],
        opts: &DistOptions,
    ) -> Result<InferOutput, JobError> {
        self.stream_infer().run_distributed(model, nodes, edges, endpoints, opts)
    }

    /// **GraphTrainer**, distributed: data-parallel workers against an
    /// in-process parameter server under this job's training options —
    /// including the [`consistency`](Self::consistency) mode.
    pub fn train_distributed(
        &self,
        model: &mut GnnModel,
        train: &[agl_flat::TrainingExample],
        val: Option<&[agl_flat::TrainingExample]>,
        n_workers: usize,
    ) -> agl_trainer::DistTrainResult {
        DistTrainer::new(n_workers, self.train_config()).train(model, train, val)
    }

    /// **Serving**: build the sharded read-path store from a GraphInfer
    /// output under this job's serve configuration.
    pub fn build_serving(&self, output: &InferOutput) -> agl_serve::EmbeddingStore {
        agl_serve::EmbeddingStore::build(output, &self.serve_config())
    }
}

/// **GraphTrainer** in one call: train on triples, evaluate on a held-out
/// triple set, return the validation metrics (§3.3).
pub fn train_and_evaluate(
    model: &mut GnnModel,
    train: &[agl_flat::TrainingExample],
    eval: &[agl_flat::TrainingExample],
    opts: &TrainOptions,
) -> Metrics {
    LocalTrainer::new(opts.clone()).train(model, train);
    LocalTrainer::evaluate(model, eval, opts)
}

/// Distributed **GraphTrainer**: data-parallel workers against an
/// in-process parameter server (`-t train_strategy -c dist_configs`). The
/// coordination mode is `opts.consistency`.
pub fn train_distributed(
    model: &mut GnnModel,
    train: &[agl_flat::TrainingExample],
    val: Option<&[agl_flat::TrainingExample]>,
    n_workers: usize,
    opts: &TrainOptions,
) -> agl_trainer::DistTrainResult {
    DistTrainer::new(n_workers, opts.clone()).train(model, train, val)
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_graph::NodeId;
    use agl_nn::{Loss, ModelConfig, ModelKind};
    use agl_tensor::Matrix;

    fn toy() -> (NodeTable, EdgeTable) {
        let n = 20u64;
        let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut feats = Matrix::zeros(n as usize, 2);
        let mut labels = Matrix::zeros(n as usize, 2);
        for i in 0..n as usize {
            let c = i % 2;
            labels[(i, c)] = 1.0;
            feats[(i, 0)] = if c == 0 { 1.0 } else { -1.0 };
            feats[(i, 1)] = 0.1;
        }
        let nodes = NodeTable::new(ids, feats, Some(labels));
        let edges = EdgeTable::from_pairs((0..n - 2).map(|i| (i, i + 2)));
        (nodes, edges)
    }

    #[test]
    fn end_to_end_flat_train_infer() {
        let (nodes, edges) = toy();
        let job = AglJob::new().hops(2).seed(5);
        let flat = job.graph_flat(&nodes, &edges, &TargetSpec::All).unwrap();
        assert_eq!(flat.examples.len(), 20);

        let mut model = GnnModel::new(ModelConfig::new(ModelKind::Gcn, 2, 8, 2, 2, Loss::SoftmaxCrossEntropy));
        let opts = TrainOptions { epochs: 15, lr: 0.05, ..TrainOptions::default() };
        let metrics = train_and_evaluate(&mut model, &flat.examples, &flat.examples, &opts);
        assert!(metrics.accuracy.unwrap() > 0.9, "{:?}", metrics.accuracy);

        let scores = job.graph_infer(&model, &nodes, &edges).unwrap();
        assert_eq!(scores.scores.len(), 20);
    }

    #[test]
    fn builder_knobs_propagate() {
        let job = AglJob::new()
            .hops(3)
            .sampling(SamplingStrategy::TopK { max_degree: 7 })
            .reindex(100, 8)
            .engine(2, 3, 5)
            .seed(9)
            .consistency(Consistency::Ssp { slack: 4 });
        assert_eq!(job.flat_config().k_hops, 3);
        assert_eq!(job.flat_config().hub_threshold, 100);
        assert_eq!(job.flat_config().reindex_fanout, 8);
        assert_eq!(job.flat_config().engine.reduce_tasks, 3);
        assert_eq!(job.infer_config().engine.parallelism, 5);
        assert_eq!(job.infer_config().sampling, SamplingStrategy::TopK { max_degree: 7 });
        assert_eq!(job.infer_config().engine.seed, 9);
        assert_eq!(job.train_config().consistency, Consistency::Ssp { slack: 4 });
        // The one shared EngineConfig reaches every stage, training and
        // serving included.
        assert_eq!(job.train_config().engine.seed, 9);
        assert_eq!(job.serve_config().engine.seed, 9);
        assert_eq!(job.serve_config().engine.map_tasks, 2);
        // Defaults elsewhere stay intact.
        assert_eq!(job.train_config().batch_size, TrainOptions::default().batch_size);
    }

    /// Regression: `train_options(...)` used to clobber a previously
    /// chained `consistency(...)` ("explicit options win wholesale").
    /// The builder now merges — chain order must not matter.
    #[test]
    fn consistency_survives_train_options_in_either_order() {
        let opts = TrainOptions { epochs: 3, batch_size: 5, ..TrainOptions::default() };
        let a = AglJob::new().consistency(Consistency::Ssp { slack: 2 }).train_options(opts.clone());
        let b = AglJob::new().train_options(opts).consistency(Consistency::Ssp { slack: 2 });
        for job in [&a, &b] {
            let t = job.train_config();
            assert_eq!(t.consistency, Consistency::Ssp { slack: 2 });
            assert_eq!((t.epochs, t.batch_size), (3, 5));
        }
        // Same for the other shared knobs: obs and seed survive a later
        // train_options(...) because they live on the job's EngineConfig.
        let obs = agl_obs::Obs::enabled_logical();
        let job = AglJob::new()
            .obs(obs.clone())
            .seed(77)
            .train_options(TrainOptions { epochs: 2, ..TrainOptions::default() });
        assert!(job.train_config().engine.obs.is_enabled());
        assert_eq!(job.train_config().engine.seed, 77);
    }

    #[test]
    fn serving_joins_the_builder() {
        let (nodes, edges) = toy();
        let job = AglJob::new().hops(1).seed(3).serve(agl_serve::ServeConfig::default().with_shards(2));
        let mut model = GnnModel::new(ModelConfig::new(ModelKind::Gcn, 2, 4, 2, 1, Loss::SoftmaxCrossEntropy));
        let flat = job.graph_flat(&nodes, &edges, &TargetSpec::All).unwrap();
        let opts = TrainOptions { epochs: 2, ..TrainOptions::default() };
        train_and_evaluate(&mut model, &flat.examples, &flat.examples, &opts);
        let output = job.graph_infer(&model, &nodes, &edges).unwrap();
        let store = job.build_serving(&output);
        assert_eq!(store.n_shards(), 2);
        assert_eq!(store.len(), 20);
        let emb = store.get(agl_graph::NodeId(0)).unwrap();
        assert_eq!(emb.len(), 2, "stored vector is the score vector");
        assert_eq!(store.topk(&[1.0, 0.0], 3).len(), 3);
    }

    #[test]
    fn obs_handle_reaches_all_three_stages() {
        let (nodes, edges) = toy();
        let obs = agl_obs::Obs::enabled_logical();
        let job = AglJob::new().hops(2).seed(5).obs(obs.clone());

        let flat = job.graph_flat(&nodes, &edges, &TargetSpec::All).unwrap();
        let mut model = GnnModel::new(ModelConfig::new(ModelKind::Gcn, 2, 8, 2, 2, Loss::SoftmaxCrossEntropy));
        let r = job.train_distributed(&mut model, &flat.examples, None, 2);
        assert_eq!(r.val_curve.len(), 0);
        job.graph_infer(&model, &nodes, &edges).unwrap();

        let trace = obs.trace().unwrap();
        let spans = trace.events();
        let has = |n: &str| spans.iter().any(|s| s.name == n);
        assert!(has("graphflat") && has("mapreduce.round0"), "GraphFlat rounds traced");
        assert!(has("train.epoch"), "trainer epochs traced");
        assert!(has("ps.pull") && has("ps.apply"), "PS traffic traced");
        assert!(has("graphinfer"), "GraphInfer traced");
        let m = obs.metrics().unwrap().to_json();
        assert!(m.contains("\"trainer.epochs\":"), "{m}");
        assert!(m.contains("\"ps.pushes\":"), "{m}");
    }

    #[test]
    fn job_trains_distributed_under_ssp() {
        let (nodes, edges) = toy();
        let job =
            AglJob::new().hops(2).seed(5).consistency(Consistency::Ssp { slack: 2 }).train_options(TrainOptions {
                epochs: 6,
                lr: 0.05,
                batch_size: 10,
                consistency: Consistency::Ssp { slack: 2 },
                ..TrainOptions::default()
            });
        let flat = job.graph_flat(&nodes, &edges, &TargetSpec::All).unwrap();
        let mut model = GnnModel::new(ModelConfig::new(ModelKind::Gcn, 2, 8, 2, 2, Loss::SoftmaxCrossEntropy));
        let r = job.train_distributed(&mut model, &flat.examples, Some(&flat.examples), 2);
        assert!(r.max_staleness <= 2, "SSP bound through the job API: {}", r.max_staleness);
        assert_eq!(r.val_curve.len(), 6);
    }
}
