//! Workspace-level integration tests: the full AGL story across crates.

use agl::prelude::*;
use agl_flat::SamplingStrategy as S;

/// A small UUG-like world shared by the tests.
fn world() -> (Dataset, NodeTable, EdgeTable) {
    let ds = uug_like(UugConfig {
        n_nodes: 800,
        avg_degree: 6.0,
        feature_dim: 8,
        train_frac: 0.2,
        val_frac: 0.1,
        test_frac: 0.1,
        ..UugConfig::default()
    });
    let (nodes, edges) = ds.graph().to_tables();
    (ds, nodes, edges)
}

fn flat_for(job: &AglJob, nodes: &NodeTable, edges: &EdgeTable, ids: &[NodeId]) -> Vec<TrainingExample> {
    job.graph_flat(nodes, edges, &TargetSpec::Ids(ids.to_vec())).unwrap().examples
}

#[test]
fn agl_and_full_graph_training_reach_similar_quality() {
    // Mini Table 3: the AGL path (GraphFlat triples + mini-batch trainer)
    // and the in-memory full-graph baseline must land in the same quality
    // neighbourhood on the same task.
    let (ds, nodes, edges) = world();
    let job = AglJob::new().hops(2).seed(5);
    let train = flat_for(&job, &nodes, &edges, ds.train.node_ids());
    let test = flat_for(&job, &nodes, &edges, ds.test.node_ids());

    let cfg = ModelConfig::new(ModelKind::Sage, ds.feature_dim(), 8, 1, 2, Loss::BceWithLogits);
    let mut agl_model = GnnModel::new(cfg.clone());
    let opts = TrainOptions { epochs: 10, lr: 0.02, batch_size: 32, pruning: true, ..TrainOptions::default() };
    LocalTrainer::new(opts.clone()).train(&mut agl_model, &train);
    let agl_auc = LocalTrainer::evaluate(&agl_model, &test, &opts).auc.unwrap();

    let mut base_model = GnnModel::new(cfg);
    let engine = FullGraphEngine { epochs: 30, lr: 0.02, ..Default::default() };
    engine.train_transductive(&mut base_model, ds.graph(), ds.train.node_ids());
    let base_auc = engine.evaluate(&base_model, ds.graph(), ds.test.node_ids()).auc.unwrap();

    assert!(agl_auc > 0.85, "AGL AUC {agl_auc}");
    assert!(base_auc > 0.85, "baseline AUC {base_auc}");
    assert!((agl_auc - base_auc).abs() < 0.1, "AGL {agl_auc} vs baseline {base_auc}");
}

#[test]
fn trained_model_scores_identically_through_graphinfer_and_full_forward() {
    // Train via AGL, then score the whole graph twice: GraphInfer (MapReduce
    // slices) vs the in-memory full forward. Must agree to fp tolerance.
    let (ds, nodes, edges) = world();
    let job = AglJob::new().hops(2).seed(6);
    let train = flat_for(&job, &nodes, &edges, ds.train.node_ids());
    let cfg = ModelConfig::new(ModelKind::Gcn, ds.feature_dim(), 8, 1, 2, Loss::BceWithLogits);
    let mut model = GnnModel::new(cfg);
    let opts = TrainOptions { epochs: 5, lr: 0.02, ..TrainOptions::default() };
    LocalTrainer::new(opts).train(&mut model, &train);

    let infer_scores = job.graph_infer(&model, &nodes, &edges).unwrap();
    let full = FullGraphEngine::default().infer_all(&model, ds.graph());
    let probs = model.config().loss.probabilities(&full);
    for s in &infer_scores.scores {
        let local = ds.graph().local(s.node).unwrap() as usize;
        assert!(
            (s.probs[0] - probs[(local, 0)]).abs() < 1e-4,
            "node {}: {} vs {}",
            s.node,
            s.probs[0],
            probs[(local, 0)]
        );
    }
}

#[test]
fn distributed_and_standalone_training_converge_to_similar_auc() {
    // Mini Fig 7: 1 worker vs 4 workers end at the same quality level.
    let (ds, nodes, edges) = world();
    let job = AglJob::new().hops(2).seed(7);
    let train = flat_for(&job, &nodes, &edges, ds.train.node_ids());
    let val = flat_for(&job, &nodes, &edges, ds.val.node_ids());

    let mut aucs = Vec::new();
    for workers in [1usize, 4] {
        let cfg = ModelConfig::new(ModelKind::Sage, ds.feature_dim(), 8, 1, 2, Loss::BceWithLogits);
        let mut model = GnnModel::new(cfg);
        let opts = TrainOptions { epochs: 8, lr: 0.02, batch_size: 16, ..TrainOptions::default() };
        let result = train_distributed(&mut model, &train, Some(&val), workers, &opts);
        aucs.push(result.val_curve.last().unwrap().auc.unwrap());
    }
    assert!(aucs[0] > 0.85, "1 worker AUC {}", aucs[0]);
    assert!(aucs[1] > 0.85, "4 workers AUC {}", aucs[1]);
    assert!((aucs[0] - aucs[1]).abs() < 0.08, "{aucs:?}");
}

#[test]
fn sampling_consistency_between_flat_and_infer() {
    // §3.4: GraphInfer applies the same sampling as GraphFlat so inference
    // matches the data distribution the model was trained on. Check the
    // plumbing: the same seed+strategy through AglJob gives deterministic,
    // matching knobs on both configs.
    let job = AglJob::new().hops(2).sampling(S::Weighted { max_degree: 9 }).seed(123);
    assert_eq!(job.flat_config().sampling, S::Weighted { max_degree: 9 });
    assert_eq!(job.infer_config().sampling, S::Weighted { max_degree: 9 });
    assert_eq!(job.flat_config().engine.seed, job.infer_config().engine.seed);
    assert_eq!(job.flat_config().engine.seed, 123);

    // And end-to-end: two sampled GraphInfer runs agree bit-for-bit.
    let (_, nodes, edges) = world();
    let model = GnnModel::new(ModelConfig::new(ModelKind::Gcn, 8, 4, 1, 2, Loss::BceWithLogits));
    let a = job.graph_infer(&model, &nodes, &edges).unwrap();
    let b = job.graph_infer(&model, &nodes, &edges).unwrap();
    assert_eq!(a.scores, b.scores);
}

#[test]
fn workers_train_from_their_own_store_shards() {
    // The deployment story end-to-end: GraphFlat → sharded FeatureStore on
    // "DFS" → each distributed worker reads only its own shards → PS
    // training converges. No worker ever touches another's partition.
    use agl::flat::FeatureStore;
    let (ds, nodes, edges) = world();
    let job = AglJob::new().hops(2).seed(41);
    let train = flat_for(&job, &nodes, &edges, ds.train.node_ids());
    let dir = std::env::temp_dir().join(format!("agl-store-e2e-{}", std::process::id()));
    let store = FeatureStore::create(&dir, 8, &train).unwrap();

    // Reassemble per-worker partitions exactly as workers would.
    let n_workers = 4;
    let mut union = Vec::new();
    for w in 0..n_workers {
        let shards = store.worker_shards(w, n_workers);
        assert!(!shards.is_empty());
        for s in shards {
            union.extend(store.read_shard(s).unwrap());
        }
    }
    assert_eq!(union.len(), train.len(), "shard partition covers all triples");

    let cfg = ModelConfig::new(ModelKind::Gcn, ds.feature_dim(), 8, 1, 2, Loss::BceWithLogits);
    let mut model = GnnModel::new(cfg);
    let opts = TrainOptions { epochs: 6, lr: 0.02, batch_size: 16, ..TrainOptions::default() };
    let result = train_distributed(&mut model, &union, None, n_workers, &opts);
    assert!(result.epochs.last().unwrap().loss < result.epochs[0].loss);
    store.remove().unwrap();
}

#[test]
fn graphfeatures_survive_serialization_to_simulated_dfs() {
    // GraphFlat output is a flat byte string per target; write them all to
    // disk, read back, train from the files — the storage path of §3.2.1.
    let (ds, nodes, edges) = world();
    let job = AglJob::new().hops(2).seed(8);
    let train = flat_for(&job, &nodes, &edges, ds.train.node_ids());

    let dir = std::env::temp_dir().join(format!("agl-dfs-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for ex in &train {
        std::fs::write(dir.join(format!("{}.gf", ex.target.0)), &ex.graph_feature).unwrap();
    }
    let mut reloaded = Vec::new();
    for ex in &train {
        let bytes = std::fs::read(dir.join(format!("{}.gf", ex.target.0))).unwrap();
        assert!(decode_graph_feature(&bytes).is_ok());
        reloaded.push(TrainingExample { target: ex.target, label: ex.label.clone(), graph_feature: bytes });
    }
    std::fs::remove_dir_all(&dir).ok();

    let cfg = ModelConfig::new(ModelKind::Gcn, ds.feature_dim(), 4, 1, 2, Loss::BceWithLogits);
    let mut model = GnnModel::new(cfg);
    let opts = TrainOptions { epochs: 2, ..TrainOptions::default() };
    let result = LocalTrainer::new(opts).train(&mut model, &reloaded);
    assert_eq!(result.epochs.len(), 2);
}
