//! System-property integration tests: the fault-tolerance, determinism and
//! hub-handling guarantees the paper attributes to building on MapReduce +
//! parameter servers.

use agl::flat::FlatConfig;
use agl::mapreduce::{FaultPlan, TaskId};
use agl::prelude::*;

fn hubby_world() -> (Dataset, NodeTable, EdgeTable) {
    // Strong power law so real hubs exist.
    let ds = uug_like(UugConfig { n_nodes: 600, avg_degree: 10.0, gamma: 1.9, feature_dim: 6, ..UugConfig::default() });
    let (nodes, edges) = ds.graph().to_tables();
    (ds, nodes, edges)
}

#[test]
fn whole_training_pipeline_is_fault_tolerant() {
    // Crash tasks in GraphFlat, train on the output, and compare the final
    // model against a crash-free run: parameters must be identical because
    // every stage is deterministic and MapReduce re-execution is exact.
    let (ds, nodes, edges) = hubby_world();
    let targets = TargetSpec::Ids(ds.train.node_ids().to_vec());
    let clean_flat =
        GraphFlat::new(FlatConfig { k_hops: 2, ..FlatConfig::default() }).run(&nodes, &edges, &targets).unwrap();
    let chaos = FlatConfig {
        k_hops: 2,
        fault_plan: FaultPlan::none()
            .fail_first(TaskId::map(3), 2)
            .fail_first(TaskId::reduce(0, 0), 1)
            .fail_first(TaskId::reduce(2, 1), 3),
        ..FlatConfig::default()
    };
    let faulty_flat = GraphFlat::new(chaos).run(&nodes, &edges, &targets).unwrap();

    let train = |examples: &[TrainingExample]| {
        let cfg = ModelConfig::new(ModelKind::Gcn, ds.feature_dim(), 4, 1, 2, Loss::BceWithLogits);
        let mut model = GnnModel::new(cfg);
        let opts = TrainOptions { epochs: 3, pipeline: false, ..TrainOptions::default() };
        LocalTrainer::new(opts).train(&mut model, examples);
        model.param_vector()
    };
    assert_eq!(train(&clean_flat.examples), train(&faulty_flat.examples));
}

#[test]
fn hub_reindexing_balances_groups_and_preserves_training() {
    let (ds, nodes, edges) = hubby_world();
    let stats = agl::graph::stats::in_degree_stats(ds.graph()).unwrap();
    assert!(stats.max > 50, "need a real hub, got max degree {}", stats.max);

    let targets = TargetSpec::Ids(ds.train.node_ids().to_vec());
    let base_cfg =
        FlatConfig { k_hops: 2, sampling: SamplingStrategy::Uniform { max_degree: 10 }, ..FlatConfig::default() };
    let plain = GraphFlat::new(base_cfg.clone()).run(&nodes, &edges, &targets).unwrap();
    let reindexed = GraphFlat::new(FlatConfig { hub_threshold: 30, reindex_fanout: 4, ..base_cfg })
        .run(&nodes, &edges, &targets)
        .unwrap();
    assert_eq!(plain.examples.len(), reindexed.examples.len());

    // Both variants train to a usable model.
    for examples in [&plain.examples, &reindexed.examples] {
        let cfg = ModelConfig::new(ModelKind::Sage, ds.feature_dim(), 8, 1, 2, Loss::BceWithLogits);
        let mut model = GnnModel::new(cfg);
        let opts = TrainOptions { epochs: 8, lr: 0.02, ..TrainOptions::default() };
        LocalTrainer::new(opts.clone()).train(&mut model, examples);
        let auc = LocalTrainer::evaluate(&model, examples, &opts).auc.unwrap();
        assert!(auc > 0.8, "AUC {auc}");
    }
}

#[test]
fn sampled_neighborhood_sizes_are_bounded() {
    // Hub neighborhoods must be capped: max nodes in any 2-hop GraphFeature
    // is bounded by 1 + d + d² with the sampling cap d (plus re-index
    // fanout when splitting is on).
    let (_ds, nodes, edges) = hubby_world();
    let d = 5usize;
    let flat = GraphFlat::new(FlatConfig {
        k_hops: 2,
        sampling: SamplingStrategy::Uniform { max_degree: d },
        ..FlatConfig::default()
    })
    .run(&nodes, &edges, &TargetSpec::All)
    .unwrap();
    let bound = 1 + d + d * d;
    for ex in &flat.examples {
        let sub = decode_graph_feature(&ex.graph_feature).unwrap();
        assert!(sub.n_nodes() <= bound, "target {} has {} nodes > bound {bound}", ex.target, sub.n_nodes());
    }
}

#[test]
fn end_to_end_determinism_across_runs() {
    // Same seeds ⇒ same GraphFeatures, same trained parameters, same scores.
    let (ds, nodes, edges) = hubby_world();
    let run = || {
        let job = AglJob::new().hops(2).sampling(SamplingStrategy::Weighted { max_degree: 8 }).seed(99);
        let train = job.graph_flat(&nodes, &edges, &TargetSpec::Ids(ds.train.node_ids().to_vec())).unwrap().examples;
        let cfg = ModelConfig::new(ModelKind::Gat { heads: 2 }, ds.feature_dim(), 4, 1, 2, Loss::BceWithLogits);
        let mut model = GnnModel::new(cfg);
        let opts = TrainOptions { epochs: 2, pipeline: true, ..TrainOptions::default() };
        LocalTrainer::new(opts).train(&mut model, &train);
        let scores = job.graph_infer(&model, &nodes, &edges).unwrap();
        (model.param_vector(), scores.scores)
    };
    let (p1, s1) = run();
    let (p2, s2) = run();
    assert_eq!(p1, p2, "training is bit-deterministic");
    assert_eq!(s1, s2, "inference is bit-deterministic");
}

#[test]
fn mapreduce_counters_account_for_the_pipeline() {
    let (ds, nodes, edges) = hubby_world();
    let flat = GraphFlat::new(FlatConfig { k_hops: 2, ..FlatConfig::default() })
        .run(&nodes, &edges, &TargetSpec::Ids(ds.train.node_ids().to_vec()))
        .unwrap();
    let c = &flat.counters;
    assert_eq!(c.get("map.input_records"), (ds.n_nodes() + ds.n_edges()) as u64);
    assert!(c.get("shuffle.bytes") > 0);
    assert_eq!(c.get("flat.examples"), ds.train.len() as u64);
    // Every record the mapper emitted went through round 0.
    assert_eq!(c.get("map.output_records"), c.get("reduce.r0.input_records"));
}
