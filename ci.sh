#!/usr/bin/env bash
# Tier-1 verification entry point. Everything here must pass before a PR
# lands; the workspace lint test in crates/analysis re-runs the linter
# from `cargo test`, so CI failures reproduce locally either way.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> agl-lint --workspace"
cargo run -q --release -p agl-analysis --bin agl-lint -- --workspace

echo "ci.sh: all green"
