#!/usr/bin/env bash
# Tier-1 verification entry point. Everything here must pass before a PR
# lands; the workspace lint test in crates/analysis re-runs the linter
# from `cargo test`, so CI failures reproduce locally either way.
#
# Modes:
#   ./ci.sh            tier-1: fmt, build, test, workspace lint
#   ./ci.sh --bench    bench smoke: micro benches at 3 iters, medians
#                      written to results/BENCH_pr2.json
set -euo pipefail
cd "$(dirname "$0")"

# Run one labelled step, timing it and failing fast with a [FAIL] marker.
step() {
  local label="$1"
  shift
  local t0=$SECONDS
  echo "==> $label"
  if "$@"; then
    echo "[ok] $label ($((SECONDS - t0))s)"
  else
    local rc=$?
    echo "[FAIL] $label ($((SECONDS - t0))s)" >&2
    exit "$rc"
  fi
}

if [[ "${1:-}" == "--bench" ]]; then
  mkdir -p results
  # Absolute path: cargo runs bench binaries from the package directory.
  step "bench smoke (micro, 3 iters)" \
    cargo bench -q -p agl-bench --bench micro -- --smoke --json "$PWD/results/BENCH_pr2.json"
  echo "ci.sh: bench smoke green -> results/BENCH_pr2.json"
  exit 0
fi

step "cargo fmt --check" cargo fmt --check
step "cargo build --release" cargo build --release
step "cargo test -q" cargo test -q
step "agl-lint --workspace" cargo run -q --release -p agl-analysis --bin agl-lint -- --workspace
echo "ci.sh: all green"
