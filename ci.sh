#!/usr/bin/env bash
# Tier-1 verification entry point. Everything here must pass before a PR
# lands; the workspace lint test in crates/analysis re-runs the linter
# from `cargo test`, so CI failures reproduce locally either way.
#
# Modes:
#   ./ci.sh            tier-1: fmt, build, test, workspace lint, doc gate
#   ./ci.sh --bench    bench smoke: micro benches at 3 iters, medians
#                      written to results/BENCH_pr<N>.json (N auto-numbers
#                      from the existing snapshots, override with
#                      AGL_BENCH_PR=<n>), then gated against the previous
#                      snapshot: any median >20% slower fails.
#   ./ci.sh --sanitize opt-in (not tier-1): run the ps + trainer
#                      concurrency tests under ThreadSanitizer. Needs a
#                      nightly toolchain with the rust-src component;
#                      skips with a message when one is not installed.
#                      Division of labor: the agl-lint atomics rule and the
#                      debug-mode vector-clock tracker cover the orderings
#                      the workspace's own abstractions mediate, every run;
#                      TSan additionally checks raw std::sync usage and the
#                      code paths the lexical analysis cannot see, at ~10x
#                      runtime cost — hence opt-in rather than tier-1.
set -euo pipefail
cd "$(dirname "$0")"

# Run one labelled step, timing it and failing fast with a [FAIL] marker.
step() {
  local label="$1"
  shift
  local t0=$SECONDS
  echo "==> $label"
  if "$@"; then
    echo "[ok] $label ($((SECONDS - t0))s)"
  else
    local rc=$?
    echo "[FAIL] $label ($((SECONDS - t0))s)" >&2
    exit "$rc"
  fi
}

if [[ "${1:-}" == "--bench" ]]; then
  mkdir -p results
  # Bench history: snapshots are numbered BENCH_pr<N>.json; the new run
  # lands at prev+1 (or AGL_BENCH_PR) and is gated against the previous.
  prev=$(ls results/BENCH_pr*.json 2>/dev/null \
    | sed -E 's/.*BENCH_pr([0-9]+)\.json/\1/' | sort -n | tail -1)
  n="${AGL_BENCH_PR:-$(( ${prev:-0} + 1 ))}"
  # Absolute path: cargo runs bench binaries from the package directory.
  # The same run also writes TRACE_pr<N>.json: per-stage medians from an
  # instrumented end-to-end pipeline, diffed informationally below.
  step "bench smoke (micro, 3 iters)" \
    cargo bench -q -p agl-bench --bench micro -- --smoke \
      --json "$PWD/results/BENCH_pr${n}.json" \
      --trace-json "$PWD/results/TRACE_pr${n}.json"
  if [[ -n "${prev:-}" && "results/BENCH_pr${prev}.json" != "results/BENCH_pr${n}.json" ]]; then
    trace_args=()
    if [[ -f "results/TRACE_pr${prev}.json" ]]; then
      trace_args=(--trace-baseline "results/TRACE_pr${prev}.json" \
                  --trace-current "results/TRACE_pr${n}.json")
    fi
    step "bench regression gate (vs BENCH_pr${prev}.json)" \
      cargo run -q --release -p agl-bench --bin bench_compare -- \
        --baseline "results/BENCH_pr${prev}.json" --current "results/BENCH_pr${n}.json" \
        ${trace_args[@]+"${trace_args[@]}"}
  else
    echo "==> bench regression gate: no previous snapshot, nothing to compare"
  fi
  echo "ci.sh: bench smoke green -> results/BENCH_pr${n}.json + TRACE_pr${n}.json"
  exit 0
fi

if [[ "${1:-}" == "--sanitize" ]]; then
  # ThreadSanitizer needs -Zsanitizer=thread and a rebuilt std, both
  # nightly-only. Probe for a usable toolchain and skip gracefully so the
  # mode is safe to wire into any environment.
  if ! rustup run nightly rustc --version >/dev/null 2>&1; then
    echo "==> sanitize: no nightly toolchain installed; skipping (rustup toolchain install nightly)"
    exit 0
  fi
  if ! rustup component list --toolchain nightly 2>/dev/null | grep -q 'rust-src.*(installed)'; then
    echo "==> sanitize: nightly lacks rust-src (needed for -Zbuild-std); skipping (rustup component add rust-src --toolchain nightly)"
    exit 0
  fi
  host=$(rustc -vV | sed -n 's/^host: //p')
  step "tsan: ps concurrency tests" \
    env RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
      cargo +nightly test -q -p agl-ps -Zbuild-std --target "$host"
  step "tsan: trainer concurrency tests" \
    env RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
      cargo +nightly test -q -p agl-trainer -Zbuild-std --target "$host"
  echo "ci.sh: sanitize green"
  exit 0
fi

# Multi-process smoke: 2 shuffle workers + 2 PS shards as real OS
# processes over Unix-domain sockets, output verified byte-identical
# against the in-process engines. The trap guarantees no worker process
# or socket file survives the step, pass or fail; the explicit checks
# before the trap runs make a leak a hard failure rather than silent
# cleanup. (The pgrep pattern's [-] guards against matching this step's
# own shell.)
dist_smoke() {
  local dir
  dir=$(mktemp -d -t agl-dist-smoke.XXXXXX)
  # pkill exits 1 when there is nothing to kill (the healthy case) — don't
  # let errexit turn that into a step failure.
  trap 'pkill -f "dist-worker -[-]role" 2>/dev/null || true; rm -rf "'"$dir"'"' RETURN
  ./target/release/agl-cli dist-run --dir "$dir" \
    --nodes 300 --hops 2 --epochs 2 \
    --shuffle-workers 2 --ps-shards 2 --train-workers 2 \
    --verify true || return 1
  if pgrep -f "dist-worker -[-]role" >/dev/null; then
    echo "dist smoke: leaked worker processes" >&2
    return 1
  fi
  if compgen -G "$dir/*.sock" >/dev/null; then
    echo "dist smoke: leaked socket files in $dir" >&2
    return 1
  fi
}

# Observability smoke: two same-seed traced dist-runs under the logical
# clock must write byte-identical merged trace + metrics artifacts; the
# obs-report analyzer must parse them (schema gate), see every worker
# span causally parented under a driver RPC span, nonzero RPC telemetry,
# and itself render byte-identically across the two runs.
obs_smoke() {
  local dir out
  dir=$(mktemp -d -t agl-obs-smoke.XXXXXX)
  trap 'pkill -f "dist-worker -[-]role" 2>/dev/null || true; rm -rf "'"$dir"'"' RETURN
  local i
  for i in 1 2; do
    ./target/release/agl-cli dist-run --dir "$dir/run$i" \
      --nodes 300 --hops 2 --epochs 2 \
      --shuffle-workers 2 --ps-shards 2 --train-workers 2 \
      --clock logical --trace-out "$dir/trace$i.json" \
      --metrics-out "$dir/metrics$i.json" >/dev/null || return 1
  done
  cmp -s "$dir/trace1.json" "$dir/trace2.json" \
    || { echo "obs smoke: merged traces differ between same-seed runs" >&2; return 1; }
  cmp -s "$dir/metrics1.json" "$dir/metrics2.json" \
    || { echo "obs smoke: metrics dumps differ between same-seed runs" >&2; return 1; }
  out=$(./target/release/agl-cli obs-report --trace "$dir/trace1.json" \
    --metrics "$dir/metrics1.json") || return 1
  echo "$out" | grep -qE "^obs-report: [1-9][0-9]* spans" \
    || { echo "obs smoke: report parsed no spans" >&2; return 1; }
  echo "$out" | grep -qE "^parented_worker_spans=[1-9]" \
    || { echo "obs smoke: no worker spans parented under driver RPCs" >&2; return 1; }
  echo "$out" | grep -qE "^rpc_histograms=[1-9]" \
    || { echo "obs smoke: no RPC histograms recorded" >&2; return 1; }
  [ "$out" = "$(./target/release/agl-cli obs-report --trace "$dir/trace2.json" \
      --metrics "$dir/metrics2.json")" ] \
    || { echo "obs smoke: obs-report not byte-identical across runs" >&2; return 1; }
}

# Online read-path smoke: build a store from a small InferOutput, drive
# the seeded power-law load generator in-process, then the sharded
# multi-process mode (2 serve-worker processes, answers verified against
# the in-process store). Asserts point + top-k queries happened and a
# nonzero p99 was reported.
serve_smoke() {
  local dir out
  dir=$(mktemp -d -t agl-serve-smoke.XXXXXX)
  trap 'pkill -f "agl-cli serve[-]worker" 2>/dev/null || true; rm -rf "'"$dir"'"' RETURN
  out=$(./target/release/agl-cli serve-bench --synthetic-nodes 400 --shards 4 \
    --load-workers 2 --batches 50 --batch-size 8) || return 1
  echo "$out" | grep -qE "^qps=[1-9]" || { echo "serve smoke: no qps reported" >&2; return 1; }
  echo "$out" | grep -qE "^lookup_p99_ns=[1-9]" || { echo "serve smoke: p99 is zero" >&2; return 1; }
  echo "$out" | grep -qE "^topk_p99_ns=[1-9]" || { echo "serve smoke: top-k p99 is zero" >&2; return 1; }
  out=$(./target/release/agl-cli serve --synthetic-nodes 300 --workers 2 --dir "$dir") || return 1
  echo "$out" | grep -q "verified=true" || { echo "serve smoke: remote answers diverged" >&2; return 1; }
  if pgrep -f "agl-cli serve[-]worker" >/dev/null; then
    echo "serve smoke: leaked worker processes" >&2
    return 1
  fi
}

# Streaming-inference smoke: (1) single-process streamed run verified
# bit-identical to the materialized baseline, with a nonzero peak-memory
# gauge and combiner savings; (2) the same job across 2 infer-shuffle
# worker processes, verified and leak-checked; (3) two same-seed runs
# under the logical clock must write byte-identical traces (the obs smoke
# harness applied to the inference path).
infer_stream_smoke() {
  local dir out
  dir=$(mktemp -d -t agl-infer-smoke.XXXXXX)
  trap 'pkill -f "dist-worker -[-]role" 2>/dev/null || true; rm -rf "'"$dir"'"' RETURN
  out=$(./target/release/agl-cli infer-stream --synthetic-nodes 300 --verify true) || return 1
  echo "$out" | grep -q "verified=true" \
    || { echo "infer-stream smoke: streamed output diverged from materialized" >&2; return 1; }
  echo "$out" | grep -qE "^peak_resident_bytes=[1-9]" \
    || { echo "infer-stream smoke: peak-memory gauge is zero" >&2; return 1; }
  echo "$out" | grep -qE "combine_bytes_saved=[1-9]" \
    || { echo "infer-stream smoke: combiner saved no shuffle bytes" >&2; return 1; }
  out=$(./target/release/agl-cli infer-stream --synthetic-nodes 300 --verify true \
    --workers 2 --dir "$dir/sock") || return 1
  echo "$out" | grep -q "verified=true" \
    || { echo "infer-stream smoke: dist output diverged from materialized" >&2; return 1; }
  if pgrep -f "dist-worker -[-]role" >/dev/null; then
    echo "infer-stream smoke: leaked worker processes" >&2
    return 1
  fi
  if compgen -G "$dir/sock/*.sock" >/dev/null; then
    echo "infer-stream smoke: leaked socket files in $dir/sock" >&2
    return 1
  fi
  local i
  for i in 1 2; do
    ./target/release/agl-cli infer-stream --synthetic-nodes 300 \
      --clock logical --trace-out "$dir/trace$i.json" >/dev/null || return 1
  done
  cmp -s "$dir/trace1.json" "$dir/trace2.json" \
    || { echo "infer-stream smoke: traces differ between same-seed runs" >&2; return 1; }
}

# SIGKILL a shuffle worker after its first reduce dispatch: the job must
# recover (surviving worker re-runs the lost partitions), still verify
# byte-identical, and record the retry. Bounded by the transport
# deadlines — a hang here is a bug, and the step would time out in CI.
dist_kill() {
  local dir
  dir=$(mktemp -d -t agl-dist-kill.XXXXXX)
  # pkill exits 1 when there is nothing to kill (the healthy case) — don't
  # let errexit turn that into a step failure.
  trap 'pkill -f "dist-worker -[-]role" 2>/dev/null || true; rm -rf "'"$dir"'"' RETURN
  local out
  out=$(./target/release/agl-cli dist-run --dir "$dir" \
    --nodes 300 --hops 2 --epochs 2 \
    --shuffle-workers 2 --ps-shards 2 --train-workers 2 \
    --verify true --kill-shuffle-after 1) || return 1
  echo "$out" | grep -q "verified=true" || { echo "kill test: output not verified" >&2; return 1; }
  echo "$out" | grep -qE "task_retries=[1-9]" || { echo "kill test: no retries recorded" >&2; return 1; }
}

step "cargo fmt --check" cargo fmt --check
step "cargo build --release" cargo build --release
step "cargo test -q" cargo test -q
step "dist smoke (2 shuffle + 2 ps processes, byte-identical)" dist_smoke
step "dist kill-a-worker (SIGKILL mid-job, deterministic re-run)" dist_kill
step "obs smoke (traced dist-run, deterministic merged trace + obs-report)" obs_smoke
step "serve smoke (load generator + 2 serve-worker processes, verified)" serve_smoke
step "infer-stream smoke (streamed == materialized, 2-worker dist, deterministic)" infer_stream_smoke
step "agl-lint --workspace" cargo run -q --release -p agl-analysis --bin agl-lint -- --workspace
# Rustdoc is part of the contract: broken intra-doc links or missing docs
# on public items (crates with #![warn(missing_docs)]) fail the build.
step "cargo doc (rustdoc gate)" env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
echo "ci.sh: all green"
