//! Citation-network node classification (the Cora protocol of §4.1): train
//! GCN / GraphSAGE / GAT with AGL and with the in-memory full-graph
//! baseline, and compare test accuracy.
//!
//! ```text
//! cargo run --example citation_classification --release
//! ```

use agl::prelude::*;

fn main() {
    let ds = cora_like(1);
    let s = ds.summary();
    println!("{s}\n");
    let graph = ds.graph();
    let (nodes, edges) = graph.to_tables();

    // GraphFlat once for all three splits (labeled nodes only — the paper's
    // point that limited labels make GraphFeature storage cheap).
    let job = AglJob::new().hops(2).sampling(SamplingStrategy::Uniform { max_degree: 20 }).seed(3);
    let train = job.graph_flat(&nodes, &edges, &TargetSpec::Ids(ds.train.node_ids().to_vec())).unwrap().examples;
    let test = job.graph_flat(&nodes, &edges, &TargetSpec::Ids(ds.test.node_ids().to_vec())).unwrap().examples;
    let stored: usize = train.iter().chain(&test).map(|e| e.graph_feature.len()).sum();
    println!(
        "stored GraphFeatures: {} triples, {:.1} MB on the (simulated) DFS\n",
        train.len() + test.len(),
        stored as f64 / 1e6
    );

    for (name, kind) in [("GCN", ModelKind::Gcn), ("GraphSAGE", ModelKind::Sage), ("GAT", ModelKind::Gat { heads: 2 })]
    {
        // AGL path: mini-batch over independent GraphFeatures.
        let cfg =
            ModelConfig::new(kind, ds.feature_dim(), 16, ds.label_dim, 2, Loss::SoftmaxCrossEntropy).with_dropout(0.1);
        let mut model = GnnModel::new(cfg.clone());
        let opts = TrainOptions { epochs: 30, lr: 0.01, batch_size: 32, pruning: true, ..TrainOptions::default() };
        LocalTrainer::new(opts.clone()).train(&mut model, &train);
        let agl_acc = LocalTrainer::evaluate(&model, &test, &opts).accuracy.unwrap();

        // Baseline path: full-graph in-memory training (DGL/PyG style).
        let mut base_model = GnnModel::new(cfg);
        let engine = FullGraphEngine { epochs: 100, lr: 0.02, ..Default::default() };
        engine.train_transductive(&mut base_model, graph, ds.train.node_ids());
        let base_acc = engine.evaluate(&base_model, graph, ds.test.node_ids()).accuracy.unwrap();

        println!("{name:<10} test accuracy: AGL {agl_acc:.3} | full-graph baseline {base_acc:.3}");
    }
    println!(
        "\n(paper Table 3, real Cora: GCN 0.811 / GraphSAGE 0.827 / GAT 0.830 — deviations < 0.01 across systems)"
    );
}
