//! Fraud detection on an industrial-style social graph — the scenario that
//! motivates AGL (Ant Financial's User-User Graph, §1/§4.2.2).
//!
//! ```text
//! cargo run --example fraud_detection --release
//! ```
//!
//! The graph is power-law (hub users!), classes are "fraudulent" vs
//! "legitimate", and only a small fraction of users carry labels. The
//! pipeline exercises everything the paper deploys:
//!
//! 1. hub detection → GraphFlat with re-indexing + weighted sampling;
//! 2. distributed GraphTrainer (GAT, synchronous parameter server);
//! 3. GraphInfer over the *entire* graph, surfacing the riskiest users.

use agl::prelude::*;

fn main() {
    // An industrial-ish graph: heavy-tailed degrees, 2% labeled.
    let ds = uug_like(UugConfig { n_nodes: 4_000, avg_degree: 8.0, feature_dim: 16, ..UugConfig::default() });
    let graph = ds.graph();
    let stats = agl::graph::stats::in_degree_stats(graph).unwrap();
    println!(
        "user-user graph: {} users, {} interactions; in-degree p50={} p99={} max={}",
        graph.n_nodes(),
        graph.n_edges(),
        stats.p50,
        stats.p99,
        stats.max
    );

    // 1. GraphFlat with the paper's hub handling: re-index keys above the
    //    99th-percentile degree, sample heavy neighborhoods by edge weight.
    let job = AglJob::new()
        .hops(2)
        .sampling(SamplingStrategy::Weighted { max_degree: 12 })
        .reindex(stats.p99.max(16), 4)
        .seed(11);
    let (nodes, edges) = graph.to_tables();
    let train_flat =
        job.graph_flat(&nodes, &edges, &TargetSpec::Ids(ds.train.node_ids().to_vec())).expect("GraphFlat train");
    let val_flat = job.graph_flat(&nodes, &edges, &TargetSpec::Ids(ds.val.node_ids().to_vec())).expect("GraphFlat val");
    println!(
        "GraphFlat: {} labeled users flattened ({} in-edges sampled away, {} hub partials merged)",
        train_flat.examples.len(),
        train_flat.counters.get("flat.sampled_out_in_edges"),
        train_flat.counters.get("flat.hub_partials_merged"),
    );

    // 2. Distributed GraphTrainer: GAT (the model the paper found strongest
    //    on UUG — different neighbors deserve different attention), 4 sync
    //    workers against the in-process parameter server.
    let cfg = ModelConfig::new(ModelKind::Gat { heads: 2 }, ds.feature_dim(), 8, 1, 2, Loss::BceWithLogits);
    let mut model = GnnModel::new(cfg);
    let opts = TrainOptions { epochs: 6, lr: 0.02, batch_size: 16, pruning: true, ..TrainOptions::default() };
    let result = train_distributed(&mut model, &train_flat.examples, Some(&val_flat.examples), 4, &opts);
    for (e, m) in result.val_curve.iter().enumerate() {
        println!("epoch {}: val AUC {:.4}", e + 1, m.auc.unwrap());
    }
    println!(
        "parameter server: {} pulls, {} pushes, {:.1} MB moved",
        result.ps_stats.pulls,
        result.ps_stats.pushes,
        result.ps_stats.bytes_transferred as f64 / 1e6
    );

    // 3. GraphInfer over every user (labels are scarce; scores are not).
    let scores = job.graph_infer(&model, &nodes, &edges).expect("GraphInfer");
    let mut ranked: Vec<(&NodeScore, f32)> = scores.scores.iter().map(|s| (s, s.probs[0])).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nhighest-risk users (score = P(fraud)):");
    for (s, p) in ranked.iter().take(5) {
        println!("  user {} -> {:.3}", s.node, p);
    }
    // Sanity: ranking should correlate with the planted ground truth.
    let labels = graph.labels().unwrap();
    let truth: Vec<f32> = scores.scores.iter().map(|s| labels[(graph.local(s.node).unwrap() as usize, 0)]).collect();
    let all_scores: Vec<f32> = scores.scores.iter().map(|s| s.probs[0]).collect();
    println!("\nwhole-graph AUC vs planted labels: {:.4}", auc(&all_scores, &truth));
}
