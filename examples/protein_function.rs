//! Multi-label protein-function prediction (the PPI protocol of §4.1):
//! inductive learning over 24 independent graphs with GraphSAGE.
//!
//! ```text
//! cargo run --example protein_function --release
//! ```
//!
//! 20 graphs train, 2 validate, 2 test — the test graphs are *never seen*
//! during training, so the model must generalise its aggregation rule
//! rather than memorise embeddings. AGL handles this naturally: each
//! GraphFeature is self-contained whichever graph it came from.

use agl::flat::FlatConfig;
use agl::prelude::*;

fn main() {
    let ds = ppi_like(PpiConfig { seed: 17, scale: 0.05 });
    println!("{}\n", ds.summary());

    // GraphFlat every node of every graph, per split.
    let cfg = FlatConfig { k_hops: 2, sampling: SamplingStrategy::Uniform { max_degree: 15 }, ..FlatConfig::default() };
    let collect = |indices: &[usize]| -> Vec<TrainingExample> {
        let mut all = Vec::new();
        for &gi in indices {
            let (nodes, edges) = ds.graphs[gi].to_tables();
            all.extend(GraphFlat::new(cfg.clone()).run(&nodes, &edges, &TargetSpec::All).unwrap().examples);
        }
        all
    };
    let train = collect(ds.train.graph_indices());
    let val = collect(ds.val.graph_indices());
    let test = collect(ds.test.graph_indices());
    println!("flattened: {} train / {} val / {} test protein neighborhoods", train.len(), val.len(), test.len());

    // GraphSAGE with the add-combine (§4.2.1 notes all three systems use
    // "add" where the original paper used "concat").
    let cfg = ModelConfig::new(ModelKind::Sage, ds.feature_dim(), 64, ds.label_dim, 2, Loss::BceWithLogits);
    let mut model = GnnModel::new(cfg);
    let opts = TrainOptions { epochs: 10, lr: 0.01, batch_size: 64, pruning: true, ..TrainOptions::default() };
    let trainer = LocalTrainer::new(opts.clone());
    let history = trainer.train_with_callback(&mut model, &train, |epoch, m| {
        if (epoch + 1) % 2 == 0 {
            let v = LocalTrainer::evaluate(m, &val, &opts);
            println!("epoch {:>2}: val micro-F1 {:.4}", epoch + 1, v.micro_f1.unwrap());
        }
    });
    println!("final train loss {:.4}", history.final_loss());

    let metrics = LocalTrainer::evaluate(&model, &test, &opts);
    println!("\nheld-out-graph test micro-F1: {:.4}", metrics.micro_f1.unwrap());
    println!("(paper Table 3, real PPI with AGL: GCN 0.567 / GraphSAGE 0.635 / GAT 0.977)");

    // Persist the trained model the way a production run would.
    let bytes = model_to_bytes(&model);
    let restored = model_from_bytes(&bytes).expect("model round-trip");
    assert_eq!(restored.param_vector(), model.param_vector());
    println!("model serialised to {} bytes and restored bit-identically", bytes.len());
}
