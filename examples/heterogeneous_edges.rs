//! Typed interactions on a financial graph — using the `E_B` edge-feature
//! matrix that GraphFlat carries and §3.3.1's vectorization exposes.
//!
//! ```text
//! cargo run --example heterogeneous_edges --release
//! ```
//!
//! The paper's User-User Graph is heterogeneous: edges are *"various kinds
//! of interactions"* (transfers, messages, shared devices, ...). Here each
//! edge carries a one-hot relation type, GraphFlat propagates the edge
//! features into every GraphFeature, and an edge-conditioned R-GCN layer
//! learns **relation-dependent** aggregation: the node's class is revealed
//! only by neighbors connected through relation 0 — relation-1 neighbors
//! are noise. A plain GCN cannot tell the two apart; the R-GCN can.

use agl::flat::FlatConfig;
use agl::nn::param::{flatten_grads, flatten_values, load_values};
use agl::nn::rgcn::RelationalGcnLayer;
use agl::prelude::*;
use agl::tensor::ops::Activation;
use agl::tensor::seeded_rng;
use agl_tensor::rng::Rng;

fn main() {
    // Build the typed graph: 400 users, two classes. Relation 0 edges are
    // homophilous (connect same-class users); relation 1 edges are random.
    let n: u64 = 400;
    let mut rng = seeded_rng(5);
    let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
    let class: Vec<usize> = (0..n as usize).map(|i| i % 2).collect();
    // Features are nearly uninformative on their own: the class signal only
    // arrives through relation-0 neighbors' features.
    let mut feats = Matrix::zeros(n as usize, 4);
    for i in 0..n as usize {
        let sign = if class[i] == 0 { 1.0 } else { -1.0 };
        for d in 0..4 {
            feats[(i, d)] = sign * 0.4 + 1.0 * rng.gen_range(-1.0f32..1.0);
        }
    }
    let mut labels = Matrix::zeros(n as usize, 2);
    for i in 0..n as usize {
        labels[(i, class[i])] = 1.0;
    }
    let nodes = NodeTable::new(ids, feats, Some(labels.clone()));
    let mut rows = Vec::new();
    let mut efeat_rows: Vec<[f32; 2]> = Vec::new();
    for i in 0..n {
        for _ in 0..4 {
            // relation 0: same class; relation 1: uniformly random.
            let j = loop {
                let j = rng.gen_range(0..n);
                if j != i && class[j as usize] == class[i as usize] {
                    break j;
                }
            };
            rows.push(agl::graph::tables::EdgeRow { src: NodeId(j), dst: NodeId(i), weight: 1.0 });
            efeat_rows.push([1.0, 0.0]);
            let k = loop {
                let k = rng.gen_range(0..n);
                if k != i {
                    break k;
                }
            };
            rows.push(agl::graph::tables::EdgeRow { src: NodeId(k), dst: NodeId(i), weight: 1.0 });
            efeat_rows.push([0.0, 1.0]);
        }
    }
    let mut efeat = Matrix::zeros(efeat_rows.len(), 2);
    for (i, r) in efeat_rows.iter().enumerate() {
        efeat.row_mut(i).copy_from_slice(r);
    }
    let edges = EdgeTable::new(rows, Some(efeat));
    println!("typed graph: {n} users, {} edges (half relation-0, half relation-1)", edges.len());

    // GraphFlat: 1-hop neighborhoods (edge features ride along).
    let flat = GraphFlat::new(FlatConfig { k_hops: 1, ..FlatConfig::default() })
        .run(&nodes, &edges, &TargetSpec::All)
        .expect("GraphFlat");
    let sample = decode_graph_feature(&flat.examples[0].graph_feature).unwrap();
    assert!(sample.edge_features.is_some(), "E_B present in GraphFeatures");

    // Train: one R-GCN layer + softmax over the aggregated output, full
    // batch over the merged subgraph (small graph; keeps the example short).
    let batch = agl::trainer::vectorize(&flat.examples, 2);
    let merged_edges: Vec<agl::graph::SubEdge> = {
        // vectorize built the adjacency; rebuild the edge list + features in
        // the merged subgraph's canonical order via a fresh decode-merge.
        let mut b = agl::flat::builder::SubgraphBuilder::new();
        for ex in &flat.examples {
            b.absorb(&decode_graph_feature(&ex.graph_feature).unwrap());
        }
        let merged = b.build(&batch.target_ids);
        assert_eq!(merged.n_nodes(), batch.n_nodes());
        merged.edges.clone()
    };
    let merged_ef = {
        let mut b = agl::flat::builder::SubgraphBuilder::new();
        for ex in &flat.examples {
            b.absorb(&decode_graph_feature(&ex.graph_feature).unwrap());
        }
        b.build(&batch.target_ids).edge_features.clone().expect("merged E_B")
    };

    let mut rgcn = RelationalGcnLayer::new(4, 2, 2, Activation::Linear, "rgcn", &mut seeded_rng(7));
    let mut plain = RelationalGcnLayer::new(4, 2, 0, Activation::Linear, "gcn", &mut seeded_rng(7));
    let loss_fn = Loss::SoftmaxCrossEntropy;
    let train = |layer: &mut RelationalGcnLayer, use_ef: bool| -> f64 {
        let mut opt = Adam::new(0.05);
        for _ in 0..80 {
            let ef = if use_ef { Some(&merged_ef) } else { None };
            let (out, cache) = layer.forward(batch.n_nodes(), &merged_edges, ef, &batch.features);
            let logits = out.gather_rows(&batch.targets);
            let (_, grad_t) = loss_fn.forward_backward(&logits, &batch.labels);
            let mut grad = Matrix::zeros(out.rows(), out.cols());
            grad.scatter_add_rows(&batch.targets, &grad_t);
            layer.params_mut().into_iter().for_each(|p| p.zero_grad());
            layer.backward(&merged_edges, ef, &cache, &grad);
            let mut p = flatten_values(layer.params().into_iter());
            let g = flatten_grads(layer.params().into_iter());
            opt.step(&mut p, &g);
            load_values(layer.params_mut().into_iter(), &p);
        }
        let ef = if use_ef { Some(&merged_ef) } else { None };
        let (out, _) = layer.forward(batch.n_nodes(), &merged_edges, ef, &batch.features);
        let logits = out.gather_rows(&batch.targets);
        accuracy(&logits, &batch.labels)
    };
    let acc_typed = train(&mut rgcn, true);
    let acc_plain = train(&mut plain, false);
    println!("R-GCN with relation channels: accuracy {acc_typed:.3}");
    println!("plain mean aggregation:       accuracy {acc_plain:.3}");
    println!("\nrelation-aware aggregation lifts accuracy by {:.1} points", 100.0 * (acc_typed - acc_plain));
    assert!(acc_typed > acc_plain, "edge types must help on this task");
}
