//! Link prediction over GraphFeatures — predicting which interactions are
//! real in a two-community social graph.
//!
//! ```text
//! cargo run --example link_prediction --release
//! ```
//!
//! An extension beyond the paper's node-classification evaluation: the pair
//! example for a candidate edge `(u, v)` is the union of the endpoints'
//! k-hop GraphFeatures (both information-complete ⇒ so is the union), and
//! the score is the sigmoid dot product of the GNN embeddings — the same
//! GraphFlat pipeline, a different downstream task.

use agl::prelude::*;
use agl::trainer::linkpred::{build_link_examples, LinkPredictor};
use agl_tensor::rng::SliceRandom;

fn main() {
    // A homophilous social graph: most interactions stay inside a community.
    let ds = uug_like(UugConfig { n_nodes: 1_200, avg_degree: 8.0, feature_dim: 8, ..UugConfig::default() });
    let graph = ds.graph();
    let (nodes, edges) = graph.to_tables();
    println!("graph: {} nodes / {} edges", graph.n_nodes(), graph.n_edges());

    // GraphFlat once, per-node 2-hop neighborhoods for everyone.
    let flat = GraphFlat::new(FlatConfig {
        k_hops: 2,
        sampling: SamplingStrategy::Uniform { max_degree: 10 },
        ..FlatConfig::default()
    })
    .run(&nodes, &edges, &TargetSpec::All)
    .expect("GraphFlat");

    // Pair examples: 300 real edges + 300 sampled non-edges.
    let mut examples = build_link_examples(graph, &flat.examples, 300, 300, 11);
    examples.shuffle(&mut agl_tensor::rng::SmallRng::seed_from_u64(3));
    let (train, test) = examples.split_at(examples.len() * 4 / 5);
    println!("{} train pairs / {} test pairs", train.len(), test.len());

    // A GraphSAGE encoder whose head projects into an 8-dim edge-embedding
    // space; score(u,v) = sigmoid(e_u . e_v).
    let cfg = ModelConfig::new(ModelKind::Sage, ds.feature_dim(), 16, 8, 2, Loss::BceWithLogits);
    let mut lp = LinkPredictor::new(GnnModel::new(cfg));
    lp.epochs = 10;
    lp.lr = 0.02;
    let before = lp.evaluate(test);
    let losses = lp.train(train);
    let after = lp.evaluate(test);
    for (e, l) in losses.iter().enumerate() {
        println!("epoch {:>2}: link BCE {l:.4}", e + 1);
    }
    println!("\nheld-out link AUC: {before:.3} -> {after:.3}");
}

// FlatConfig is not in the prelude; pull it from the flat module.
use agl::flat::FlatConfig;
