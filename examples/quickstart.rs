//! Quickstart: the full AGL loop on a toy graph in ~60 lines.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```
//!
//! Mirrors the demo of paper §3.5 — GraphFlat → GraphTrainer → GraphInfer —
//! then loads the scores into the online serving store.

use agl::prelude::*;

fn main() {
    // 1. An attributed directed graph as warehouse tables: a ring of 12
    //    nodes, two classes, features that leak the class.
    let n = 12u64;
    let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
    let mut features = Matrix::zeros(n as usize, 3);
    let mut labels = Matrix::zeros(n as usize, 2);
    for i in 0..n as usize {
        let class = i % 2;
        labels[(i, class)] = 1.0;
        features[(i, 0)] = if class == 0 { 1.0 } else { -1.0 };
        features[(i, 1)] = 0.3;
        features[(i, 2)] = (i as f32) * 0.01;
    }
    let nodes = NodeTable::new(ids, features, Some(labels));
    let edges = EdgeTable::from_pairs((0..n).map(|i| (i, (i + 2) % n)));

    // 2. GraphFlat: independent 2-hop GraphFeatures for every node.
    let job = AglJob::new().hops(2).seed(7);
    let flat = job.graph_flat(&nodes, &edges, &TargetSpec::All).expect("GraphFlat");
    println!("GraphFlat produced {} training triples", flat.examples.len());
    let sample = decode_graph_feature(&flat.examples[0].graph_feature).unwrap();
    println!(
        "  e.g. target {} -> {} nodes / {} edges, flattened to {} bytes",
        flat.examples[0].target,
        sample.n_nodes(),
        sample.n_edges(),
        flat.examples[0].graph_feature.len()
    );

    // 3. GraphTrainer: a 2-layer GCN over the triples (data-independent, so
    //    this is ordinary mini-batch training).
    let cfg = ModelConfig::new(ModelKind::Gcn, 3, 8, 2, 2, Loss::SoftmaxCrossEntropy);
    let mut model = GnnModel::new(cfg);
    let opts = TrainOptions { epochs: 20, lr: 0.05, batch_size: 4, pruning: true, ..TrainOptions::default() };
    let history = LocalTrainer::new(opts.clone()).train(&mut model, &flat.examples);
    println!(
        "trained {} epochs: loss {:.4} -> {:.4}",
        history.epochs.len(),
        history.epochs[0].loss,
        history.final_loss()
    );
    let metrics = LocalTrainer::evaluate(&model, &flat.examples, &opts);
    println!("train accuracy: {:.3}", metrics.accuracy.unwrap());

    // 4. GraphInfer: slice the model and score every node via MapReduce.
    let scores = job.graph_infer(&model, &nodes, &edges).expect("GraphInfer");
    for s in scores.scores.iter().take(4) {
        println!("node {} -> class probabilities {:?}", s.node, s.probs);
    }
    println!(
        "GraphInfer computed {} embeddings = {} nodes x 2 layers (each exactly once)",
        scores.counters.get("infer.embeddings_computed"),
        n
    );

    // 5. Serving: load the scores into the sharded read-optimized store and
    //    answer a point lookup plus an exact top-k-neighbor query.
    let job = job.serve(ServeConfig { shards: 2, topk: 3, ..ServeConfig::default() });
    let store = job.build_serving(&scores);
    let probe = NodeId(0);
    println!("serving {} vectors from {} shards", store.len(), store.n_shards());
    println!("  lookup {probe} -> {:?}", store.get(probe).map(|v| v.to_vec()));
    for nb in store.topk_neighbors(probe, 3).unwrap() {
        println!("  neighbor {} (score {:.4})", nb.node, nb.score);
    }
}
