//! The infrastructure tour: what "built on mature infrastructure" buys.
//!
//! ```text
//! cargo run --example distributed_pipeline --release
//! ```
//!
//! 1. GraphFlat with **fault injection** — tasks crash and are re-executed;
//!    the output is byte-identical (MapReduce's recovery contract).
//! 2. GraphFlat with **spill-to-disk** shuffles — every record round-trips
//!    through files, like the DFS hop between rounds in production.
//! 3. **Parameter-server** training under SSP (bounded staleness) with
//!    live traffic and staleness stats.
//! 4. The **cluster model** replaying the job at 1–100 workers (Fig. 8).

use agl::cluster_sim::{speedup_curve, ClusterConfig, TrainingWorkload};
use agl::flat::FlatConfig;
use agl::mapreduce::{FaultPlan, SpillMode, TaskId};
use agl::prelude::*;

fn main() {
    let ds = uug_like(UugConfig { n_nodes: 1_500, avg_degree: 6.0, feature_dim: 8, ..UugConfig::default() });
    let (nodes, edges) = ds.graph().to_tables();
    let targets = TargetSpec::Ids(ds.train.node_ids().to_vec());

    // 1. Fault tolerance: kill the first attempts of a map task and two
    //    reduce tasks; the job retries them and the output is unchanged.
    let clean =
        GraphFlat::new(FlatConfig { k_hops: 2, ..FlatConfig::default() }).run(&nodes, &edges, &targets).unwrap();
    let chaos = FlatConfig {
        k_hops: 2,
        fault_plan: FaultPlan::none()
            .fail_first(TaskId::map(0), 1)
            .fail_first(TaskId::reduce(1, 2), 2)
            .fail_first(TaskId::reduce(2, 0), 1),
        ..FlatConfig::default()
    };
    let faulty = GraphFlat::new(chaos).run(&nodes, &edges, &targets).unwrap();
    let identical = clean.examples.iter().zip(&faulty.examples).all(|(a, b)| a.graph_feature == b.graph_feature);
    println!("fault injection: 4 task attempts crashed, output identical = {identical}");

    // 2. Spill-to-disk shuffle.
    let dir = std::env::temp_dir().join("agl-example-spill");
    let spilled =
        GraphFlat::new(FlatConfig { k_hops: 2, spill: SpillMode::Disk(dir.clone()), ..FlatConfig::default() })
            .run(&nodes, &edges, &targets)
            .unwrap();
    println!(
        "disk shuffle: {:.1} MB moved through files, output identical = {}",
        spilled.counters.get("shuffle.bytes") as f64 / 1e6,
        spilled.examples.iter().zip(&clean.examples).all(|(a, b)| a.graph_feature == b.graph_feature)
    );
    std::fs::remove_dir_all(&dir).ok();

    // 3. Parameter-server training, 4 workers under SSP: workers run ahead
    //    of each other by at most 2 model versions.
    let cfg = ModelConfig::new(ModelKind::Sage, ds.feature_dim(), 8, 1, 2, Loss::BceWithLogits);
    let mut model = GnnModel::new(cfg.clone());
    let opts = TrainOptions {
        epochs: 4,
        lr: 0.02,
        batch_size: 8,
        consistency: Consistency::Ssp { slack: 2 },
        ..TrainOptions::default()
    };
    let result = train_distributed(&mut model, &clean.examples, None, 4, &opts);
    println!(
        "parameter server ({}): {} steps, {} pulls / {} pushes, {:.1} MB transferred",
        opts.consistency,
        result.ps_stats.steps,
        result.ps_stats.pulls,
        result.ps_stats.pushes,
        result.ps_stats.bytes_transferred as f64 / 1e6
    );
    println!(
        "ssp: max staleness {} (bound 2), {} gate waits, {:.1} ms waited",
        result.max_staleness,
        result.ps_stats.ssp_waits,
        result.ps_stats.ssp_wait_nanos as f64 / 1e6
    );

    // 4. Replay at cluster scale.
    let wl = TrainingWorkload {
        examples: 1_200_000,
        secs_per_example: 1e-3,
        batch_size: 128,
        epochs: 1,
        param_bytes: 4 * GnnModel::new(cfg).param_count() as u64,
    };
    println!("\nsimulated speedup (Fig. 8 shape):");
    for (w, s) in speedup_curve(&ClusterConfig::default(), &wl, &[1, 10, 50, 100]) {
        println!("  {w:>3} workers -> {s:>5.1}x");
    }
}
