//! Umbrella package hosting the workspace-level integration tests and
//! runnable examples. The actual library surface lives in the `agl` crate.
pub use agl;
